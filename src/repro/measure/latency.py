"""Latency sampling around a planned path.

Separates the three noise processes the paper discusses:

- multiplicative path jitter (queueing along transit; sigma depends on
  interconnect class and distance -- computed at planning time);
- transient congestion episodes on public paths;
- ICMP deprioritisation / load-balancer effects, strongest in Africa
  (paper Fig. 15 and appendix A.2).
"""

from __future__ import annotations


import numpy as np

from repro.core.config import SimulationConfig
from repro.geo.continents import Continent
from repro.measure.path import PlannedPath
from repro.measure.results import Protocol


def congestion_cycle_multiplier(day: int, config: SimulationConfig) -> float:
    """Weekly congestion cycle: weekday rush vs quieter weekends."""
    path_config = config.path_model
    if day % 7 in (5, 6):
        return path_config.weekend_congestion_multiplier
    return path_config.weekday_congestion_multiplier


def sample_path_rtt(
    path: PlannedPath,
    protocol: Protocol,
    source_continent: Continent,
    config: SimulationConfig,
    rng: np.random.Generator,
    day: int = 0,
) -> float:
    """One RTT sample over the path core (excludes the last mile)."""
    rtt = path.base_path_rtt_ms * _jitter(path, rng)
    rtt = _apply_congestion(rtt, path, rng, day, config)
    if protocol is Protocol.ICMP:
        rtt = _apply_icmp_penalty(rtt, source_continent, config, rng)
    return rtt


def sample_hop_rtt(
    base_rtt_ms: float,
    path: PlannedPath,
    protocol: Protocol,
    source_continent: Continent,
    config: SimulationConfig,
    rng: np.random.Generator,
    day: int = 0,
) -> float:
    """One per-hop RTT sample for a traceroute probe packet.

    Each hop's probe packet experiences its own queueing draw, which is
    why raw traceroutes show non-monotone hop RTTs in practice.
    """
    rtt = base_rtt_ms * _jitter(path, rng)
    rtt = _apply_congestion(rtt, path, rng, day, config)
    if protocol is Protocol.ICMP:
        rtt = _apply_icmp_penalty(rtt, source_continent, config, rng)
    # Router control-plane processing of the expiring packet.
    rtt += float(rng.exponential(0.4))
    return rtt


def _jitter(path: PlannedPath, rng: np.random.Generator) -> float:
    return float(np.exp(path.jitter_sigma * rng.standard_normal()))


def _apply_congestion(
    rtt: float,
    path: PlannedPath,
    rng: np.random.Generator,
    day: int,
    config: SimulationConfig,
) -> float:
    probability = path.congestion_probability * congestion_cycle_multiplier(
        day, config
    )
    if rng.random() < probability:
        return rtt * _congestion_factor(rng)
    return rtt


def _congestion_factor(rng: np.random.Generator) -> float:
    # Congestion episodes inflate by 1.3x-2.5x.
    return 1.3 + 1.2 * float(rng.random())


def sample_path_rtt_block(
    base_rtt_ms: np.ndarray,
    jitter_sigma: np.ndarray,
    congestion_probability: np.ndarray,
    icmp_mask: np.ndarray,
    icmp_penalty_probability: np.ndarray,
    config: SimulationConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized :func:`sample_path_rtt` over per-sample parameter arrays.

    All inputs are aligned per-sample arrays (``congestion_probability``
    already includes the weekly cycle multiplier; see
    :func:`congestion_cycle_multiplier`).  Draw order is fixed -- jitter
    normals, congestion uniforms, congestion factors, ICMP uniforms -- so
    a given seed always produces the same block.  Distributionally the
    result matches per-sample scalar calls: the same lognormal jitter,
    the same congestion episode mixture, and the same ICMP penalty
    process, just drawn as whole arrays.
    """
    path_config = config.path_model
    z_jitter = rng.standard_normal(base_rtt_ms.shape[0])
    u_congestion = rng.random(base_rtt_ms.shape[0])
    u_factor = rng.random(base_rtt_ms.shape[0])
    u_icmp = rng.random(base_rtt_ms.shape[0])

    rtt = base_rtt_ms * np.exp(jitter_sigma * z_jitter)
    congested = u_congestion < congestion_probability
    rtt = np.where(congested, rtt * (1.3 + 1.2 * u_factor), rtt)
    rtt = np.where(icmp_mask, rtt * path_config.icmp_base_inflation, rtt)
    penalized = icmp_mask & (u_icmp < icmp_penalty_probability)
    return np.where(penalized, rtt * path_config.icmp_penalty_factor, rtt)


def sample_hop_rtt_block(
    base_rtt_ms: np.ndarray,
    jitter_sigma: np.ndarray,
    congestion_probability: np.ndarray,
    icmp_mask: np.ndarray,
    icmp_penalty_probability: np.ndarray,
    config: SimulationConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized :func:`sample_hop_rtt` over per-hop parameter arrays.

    The hop process is the path process plus the router's control-plane
    handling of the expiring probe packet; the draw order (path-block
    draws first, then one exponential array) is fixed so a given seed
    always produces the same block.
    """
    core = sample_path_rtt_block(
        base_rtt_ms,
        jitter_sigma,
        congestion_probability,
        icmp_mask,
        icmp_penalty_probability,
        config,
        rng,
    )
    return core + rng.exponential(0.4, base_rtt_ms.shape[0])


def icmp_penalty_probability_for(
    source_continent: Continent, config: SimulationConfig
) -> float:
    """The per-sample ICMP penalty probability for a source continent."""
    path_config = config.path_model
    probability = path_config.icmp_penalty_probability
    if source_continent is Continent.AF:
        probability *= path_config.icmp_africa_multiplier
    return probability


def _apply_icmp_penalty(
    rtt: float,
    source_continent: Continent,
    config: SimulationConfig,
    rng: np.random.Generator,
) -> float:
    path_config = config.path_model
    rtt *= path_config.icmp_base_inflation
    probability = icmp_penalty_probability_for(source_continent, config)
    if rng.random() < probability:
        return rtt * path_config.icmp_penalty_factor
    return rtt
