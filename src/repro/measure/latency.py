"""Latency sampling around a planned path.

Separates the three noise processes the paper discusses:

- multiplicative path jitter (queueing along transit; sigma depends on
  interconnect class and distance -- computed at planning time);
- transient congestion episodes on public paths;
- ICMP deprioritisation / load-balancer effects, strongest in Africa
  (paper Fig. 15 and appendix A.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import SimulationConfig
from repro.geo.continents import Continent
from repro.measure.path import PlannedPath
from repro.measure.results import Protocol


def congestion_cycle_multiplier(day: int, config: SimulationConfig) -> float:
    """Weekly congestion cycle: weekday rush vs quieter weekends."""
    path_config = config.path_model
    if day % 7 in (5, 6):
        return path_config.weekend_congestion_multiplier
    return path_config.weekday_congestion_multiplier


def sample_path_rtt(
    path: PlannedPath,
    protocol: Protocol,
    source_continent: Continent,
    config: SimulationConfig,
    rng: np.random.Generator,
    day: int = 0,
) -> float:
    """One RTT sample over the path core (excludes the last mile)."""
    rtt = path.base_path_rtt_ms * _jitter(path, rng)
    rtt = _apply_congestion(rtt, path, rng, day, config)
    if protocol is Protocol.ICMP:
        rtt = _apply_icmp_penalty(rtt, source_continent, config, rng)
    return rtt


def sample_hop_rtt(
    base_rtt_ms: float,
    path: PlannedPath,
    protocol: Protocol,
    source_continent: Continent,
    config: SimulationConfig,
    rng: np.random.Generator,
    day: int = 0,
) -> float:
    """One per-hop RTT sample for a traceroute probe packet.

    Each hop's probe packet experiences its own queueing draw, which is
    why raw traceroutes show non-monotone hop RTTs in practice.
    """
    rtt = base_rtt_ms * _jitter(path, rng)
    rtt = _apply_congestion(rtt, path, rng, day, config)
    if protocol is Protocol.ICMP:
        rtt = _apply_icmp_penalty(rtt, source_continent, config, rng)
    # Router control-plane processing of the expiring packet.
    rtt += float(rng.exponential(0.4))
    return rtt


def _jitter(path: PlannedPath, rng: np.random.Generator) -> float:
    return float(np.exp(path.jitter_sigma * rng.standard_normal()))


def _apply_congestion(
    rtt: float,
    path: PlannedPath,
    rng: np.random.Generator,
    day: int,
    config: SimulationConfig,
) -> float:
    probability = path.congestion_probability * congestion_cycle_multiplier(
        day, config
    )
    if rng.random() < probability:
        return rtt * _congestion_factor(rng)
    return rtt


def _congestion_factor(rng: np.random.Generator) -> float:
    # Congestion episodes inflate by 1.3x-2.5x.
    return 1.3 + 1.2 * float(rng.random())


def _apply_icmp_penalty(
    rtt: float,
    source_continent: Continent,
    config: SimulationConfig,
    rng: np.random.Generator,
) -> float:
    path_config = config.path_model
    rtt *= path_config.icmp_base_inflation
    probability = path_config.icmp_penalty_probability
    if source_continent is Continent.AF:
        probability *= path_config.icmp_africa_multiplier
    if rng.random() < probability:
        return rtt * path_config.icmp_penalty_factor
    return rtt
