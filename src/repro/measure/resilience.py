"""The resilient campaign executor: retries, breakers, degradation.

:func:`execute_plan` drives a checkpointed campaign's unit list through
an executor callback under a :class:`~repro.faults.config.RetryPolicy`:

- **Retry with virtual backoff.**  A unit that fails with an
  :class:`~repro.faults.errors.InjectedFault` (or post-write shard
  corruption) is retried up to ``max_attempts`` times.  Each retry
  re-draws the unit's faults from the next attempt's forked streams, so
  a transient timeout can succeed on retry.  Nothing ever sleeps: the
  exponential backoff that a live system would wait out is computed from
  seeded jitter streams and *accounted* in the journal instead
  (``backoff_ms``), keeping every unit a pure function of (seed, config,
  unit id).
- **Per-platform circuit breaker.**  ``breaker_threshold`` consecutive
  unit failures on one platform open its breaker; the next
  ``breaker_cooldown_units`` units of that platform are skipped outright
  (journaled, charged no attempts), then one probe unit is allowed
  through half-open.
- **Graceful degradation.**  A unit that completes with fewer
  measurements than scheduled (quota race, probe disconnect, reply
  loss) is journaled with ``"status": "partial"`` plus its scheduled
  counts; a unit that exhausts its retry budget is journaled as a
  ``skip`` entry with the terminal failure.  Either way the journal
  accounts for every planned unit -- :meth:`DatasetStore.coverage`
  reconciles exactly.

Only injected faults and shard corruption are retried.  Any other
exception is a genuine bug and propagates unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.faults.config import RetryPolicy
from repro.faults.errors import InjectedFault
from repro.faults.plan import AttemptFaults, FaultPlan
from repro.measure.results import PingBlock, TraceBlock
from repro.store.format import ShardFormatError
from repro.store.warehouse import DatasetStore

#: Executes one unit: ``(unit_id, day, faults) -> UnitResult``.  The
#: faults argument is ``None`` on the fault-free fast path.
UnitExecutor = Callable[[str, int, Optional[AttemptFaults]], "UnitResult"]


@dataclass
class UnitResult:
    """One executed unit's blocks plus its scheduled-work accounting."""

    ping_block: PingBlock
    trace_block: TraceBlock
    #: Ping requests the scheduler assembled (before degradation).
    scheduled_pings: int
    #: Traceroute requests the scheduler assembled.
    scheduled_traceroutes: int
    #: Network event effects recorded by an active
    #: :class:`~repro.netfaults.engine.NetfaultEngine` (empty on static
    #: topology runs).
    netfault_events: List[str] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        """Whether degradation lost some of the scheduled measurements."""
        return (
            len(self.ping_block) < self.scheduled_pings
            or len(self.trace_block) < self.scheduled_traceroutes
        )


class CircuitBreaker:
    """A consecutive-failure breaker for one platform.

    ``threshold`` consecutive failures open the breaker; while open,
    :meth:`allow` rejects ``cooldown`` units, then goes half-open and
    lets one unit probe the platform.  A half-open failure reopens
    immediately; any success closes and resets the count.
    """

    def __init__(self, threshold: int, cooldown: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self._threshold = threshold
        self._cooldown = cooldown
        self._failures = 0
        self._state = "closed"
        self._cooldown_left = 0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """Whether the next unit on this platform may execute."""
        if self._state != "open":
            return True
        self._cooldown_left -= 1
        if self._cooldown_left <= 0:
            self._state = "half-open"
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == "half-open" or self._failures >= self._threshold:
            self._state = "open"
            self._cooldown_left = self._cooldown


def _unit_extra(
    result: UnitResult,
    events: List[str],
    attempts: int,
    backoff_ms: float,
) -> Optional[Dict[str, object]]:
    """Resilience accounting to merge into a unit's journal entry.

    Returns ``None`` when there is nothing to record -- a clean
    first-attempt unit journals the exact entry a fault-free run writes,
    which is what keeps the all-rates-zero path byte-identical.
    """
    extra: Dict[str, object] = {}
    if result.partial:
        extra["status"] = "partial"
        extra["scheduled_pings"] = result.scheduled_pings
        extra["scheduled_traceroutes"] = result.scheduled_traceroutes
    if attempts > 1:
        extra["attempts"] = attempts
    if backoff_ms:
        extra["backoff_ms"] = round(backoff_ms, 3)
    if events:
        extra["faults"] = list(events)
    if result.netfault_events:
        extra["netfaults"] = list(result.netfault_events)
    return extra or None


#: Observes each committed journal entry (``unit`` or ``skip``) right
#: after it is durable, in commit order.  The measurement service uses
#: this to stream results to clients as units land; the hook sees the
#: exact journaled entry, so streamed events and the store can never
#: disagree.
CommitHook = Callable[[Dict[str, object]], None]


def run_unit(
    store: DatasetStore,
    unit: str,
    day: int,
    execute: UnitExecutor,
    plan: Optional[FaultPlan],
    policy: RetryPolicy,
    on_commit: Optional[CommitHook] = None,
) -> bool:
    """Execute one unit to completion, retrying injected faults.

    Returns ``True`` if the unit was journaled as complete (possibly
    partial), ``False`` if it exhausted its retry budget and was
    journaled as skipped.

    Retry, backoff and fault streams are keyed by ``unit``, never by
    the executing process, so the parallel runner
    (:func:`repro.exec.execute_plan_parallel`) calls this unchanged
    against per-worker staging stores -- circuit breakers are the only
    cross-unit state and are replayed by the parent at commit time.
    """
    if plan is None:
        clean = execute(unit, day, None)
        entry = store.write_unit_shards(
            unit, ping_block=clean.ping_block, trace_block=clean.trace_block
        )
        journaled = store.journal_unit(entry, extra=_unit_extra(clean, [], 1, 0.0))
        if on_commit is not None:
            on_commit(journaled)
        return True

    from repro.faults.injectors import FaultyFileOps

    events: List[str] = []
    total_backoff = 0.0
    result: Optional[UnitResult] = None
    failure = "unknown"
    for attempt in range(policy.max_attempts):
        faults = plan.attempt(unit, attempt)
        try:
            # A successful execution whose *write* then faulted is not
            # re-executed: the blocks are kept and only the storage step
            # is retried, like a real runner holding results in memory.
            if result is None:
                result = execute(unit, day, faults)
            fileops = (
                FaultyFileOps(faults) if faults.config.storage_active else None
            )
            entry = store.write_unit_shards(
                unit,
                ping_block=result.ping_block,
                trace_block=result.trace_block,
                fileops=fileops,
            )
            if fileops is not None:
                store.verify_unit_shards(entry)
        except (InjectedFault, ShardFormatError) as exc:
            failure = f"{type(exc).__name__}: {exc}"
            events.extend(faults.events)
            if attempt + 1 < policy.max_attempts:
                total_backoff += policy.backoff_ms(
                    attempt, plan.backoff_rng(unit, attempt)
                )
            continue
        events.extend(faults.events)
        journaled = store.journal_unit(
            entry,
            extra=_unit_extra(result, events, attempt + 1, total_backoff),
        )
        if on_commit is not None:
            on_commit(journaled)
        return True
    skipped = store.journal_skip(
        unit,
        reason=failure,
        attempts=policy.max_attempts,
        backoff_ms=total_backoff,
        faults=events,
    )
    if on_commit is not None:
        on_commit(skipped)
    return False


def execute_plan(
    store: DatasetStore,
    units: Iterable[str],
    completed: Set[str],
    execute: UnitExecutor,
    plan: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    max_units: Optional[int] = None,
    on_commit: Optional[CommitHook] = None,
) -> int:
    """Drive a unit list through the resilient executor.

    ``completed`` units are skipped silently (the resume path);
    ``max_units`` bounds the number of units *processed* this call
    (executed, degraded, or breaker-skipped), the interruption hook the
    crash-resume tests use.  ``on_commit`` observes each journaled
    entry -- unit, skip, or breaker-skip -- right after its durable
    append, in commit order.  Returns the processed count.
    """
    policy = retry if retry is not None else RetryPolicy()
    breakers: Dict[str, CircuitBreaker] = {}
    processed = 0
    for unit in units:
        if unit in completed:
            continue
        if max_units is not None and processed >= max_units:
            break
        platform = unit.split(":")[0]
        if plan is not None:
            breaker = breakers.setdefault(
                platform,
                CircuitBreaker(
                    policy.breaker_threshold, policy.breaker_cooldown_units
                ),
            )
            if not breaker.allow():
                skipped = store.journal_skip(
                    unit, reason="circuit-open", attempts=0
                )
                if on_commit is not None:
                    on_commit(skipped)
                processed += 1
                continue
            if run_unit(
                store,
                unit,
                int(unit.split(":")[1]),
                execute,
                plan,
                policy,
                on_commit=on_commit,
            ):
                breaker.record_success()
            else:
                breaker.record_failure()
        else:
            run_unit(
                store,
                unit,
                int(unit.split(":")[1]),
                execute,
                None,
                policy,
                on_commit=on_commit,
            )
        processed += 1
    return processed
