"""Dataset serialization.

The paper publishes its collected dataset (3.8M pings, 7M+ traceroutes)
for reproducibility; this module provides the equivalent for simulated
datasets: a line-delimited JSON format (one measurement per line) that
round-trips exactly and is stable across library versions.

Format: each line is an object with a ``kind`` tag (``"ping"`` or
``"traceroute"``), the measurement metadata, and the payload.  Files are
self-describing via a leading ``header`` line.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Union

from repro.geo.continents import Continent
from repro.lastmile.base import AccessKind
from repro.measure.results import (
    PROTOCOL_BY_CODE,
    MeasurementDataset,
    MeasurementMeta,
    PingBlock,
    PingMeasurement,
    Protocol,
    TraceBlock,
    TraceHop,
    TracerouteMeasurement,
)
from repro.platforms.probe import Probe, city_key_for

FORMAT_NAME = "repro-dataset"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _meta_to_dict(meta: MeasurementMeta) -> dict:
    return {
        "probe_id": meta.probe_id,
        "platform": meta.platform,
        "country": meta.country,
        "continent": meta.continent.value,
        "access": meta.access.value,
        "isp_asn": meta.isp_asn,
        "provider_code": meta.provider_code,
        "region_id": meta.region_id,
        "region_country": meta.region_country,
        "region_continent": meta.region_continent.value,
        "day": meta.day,
        "city_key": list(meta.city_key),
    }


def _meta_from_dict(payload: dict) -> MeasurementMeta:
    return MeasurementMeta(
        probe_id=payload["probe_id"],
        platform=payload["platform"],
        country=payload["country"],
        continent=Continent(payload["continent"]),
        access=AccessKind(payload["access"]),
        isp_asn=payload["isp_asn"],
        provider_code=payload["provider_code"],
        region_id=payload["region_id"],
        region_country=payload["region_country"],
        region_continent=Continent(payload["region_continent"]),
        day=payload["day"],
        city_key=tuple(payload["city_key"]),
    )


def _ping_to_dict(measurement: PingMeasurement) -> dict:
    return {
        "kind": "ping",
        "meta": _meta_to_dict(measurement.meta),
        "protocol": measurement.protocol.value,
        "samples": list(measurement.samples),
    }


def _trace_to_dict(measurement: TracerouteMeasurement) -> dict:
    return {
        "kind": "traceroute",
        "meta": _meta_to_dict(measurement.meta),
        "protocol": measurement.protocol.value,
        "source_address": measurement.source_address,
        "dest_address": measurement.dest_address,
        "hops": [[hop.address, hop.rtt_ms] for hop in measurement.hops],
    }


def _ping_from_dict(payload: dict) -> PingMeasurement:
    return PingMeasurement(
        meta=_meta_from_dict(payload["meta"]),
        protocol=Protocol(payload["protocol"]),
        samples=tuple(payload["samples"]),
    )


def _trace_from_dict(payload: dict) -> TracerouteMeasurement:
    return TracerouteMeasurement(
        meta=_meta_from_dict(payload["meta"]),
        protocol=Protocol(payload["protocol"]),
        source_address=payload["source_address"],
        dest_address=payload["dest_address"],
        hops=tuple(
            TraceHop(address=address, rtt_ms=rtt)
            for address, rtt in payload["hops"]
        ),
    )


def _open(path: PathLike, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


# -- columnar fast path ------------------------------------------------------
#
# Block-backed datasets hold tens of thousands of measurements per block;
# routing them through the record view would allocate one frozen
# MeasurementMeta + PingMeasurement per row just to tear them straight
# back down into dicts.  The writers below compose each line's meta dict
# from fragments cached per interned (probe, region) pair -- identical
# bytes, no per-record dataclass churn.


def _probe_meta_fragment(probe: Probe) -> dict:
    """The probe-derived prefix of a meta dict (key order matters)."""
    return {
        "probe_id": probe.probe_id,
        "platform": probe.platform,
        "country": probe.country,
        "continent": probe.continent.value,
        "access": probe.access.value,
        "isp_asn": probe.isp_asn,
    }


def _block_meta_cache(block) -> "tuple[list, list, list]":
    """Per-code meta fragments for one block's interned tables."""
    probe_fragments = [_probe_meta_fragment(probe) for probe in block.probes]
    city_keys = [list(city_key_for(probe)) for probe in block.probes]
    region_fragments = [
        {
            "provider_code": region.provider_code,
            "region_id": region.region_id,
            "region_country": region.country,
            "region_continent": region.continent.value,
        }
        for region in block.regions
    ]
    return probe_fragments, city_keys, region_fragments


def _write_ping_block(fh: IO, block: PingBlock) -> int:
    """Serialize one ping block without materializing record objects."""
    probe_fragments, city_keys, region_fragments = _block_meta_cache(block)
    protocol_values = [protocol.value for protocol in PROTOCOL_BY_CODE]
    probe_codes = block.probe_codes.tolist()
    region_codes = block.region_codes.tolist()
    days = block.days.tolist()
    protocol_codes = block.protocol_codes.tolist()
    offsets = block.sample_offsets.tolist()
    samples = block.sample_values.tolist()
    for i in range(len(probe_codes)):
        probe_code = probe_codes[i]
        meta = dict(probe_fragments[probe_code])
        meta.update(region_fragments[region_codes[i]])
        meta["day"] = days[i]
        meta["city_key"] = city_keys[probe_code]
        payload = {
            "kind": "ping",
            "meta": meta,
            "protocol": protocol_values[protocol_codes[i]],
            "samples": samples[offsets[i] : offsets[i + 1]],
        }
        fh.write(json.dumps(payload) + "\n")
    return len(probe_codes)


def _write_trace_block(fh: IO, block: TraceBlock) -> int:
    """Serialize one trace block without materializing record objects."""
    probe_fragments, city_keys, region_fragments = _block_meta_cache(block)
    protocol_values = [protocol.value for protocol in PROTOCOL_BY_CODE]
    probe_codes = block.probe_codes.tolist()
    region_codes = block.region_codes.tolist()
    days = block.days.tolist()
    protocol_codes = block.protocol_codes.tolist()
    sources = block.source_addresses.tolist()
    dests = block.dest_addresses.tolist()
    offsets = block.hop_offsets.tolist()
    hop_addresses = block.hop_addresses.tolist()
    hop_rtts = block.hop_rtts.tolist()
    no_address = TraceBlock.NO_ADDRESS
    for i in range(len(probe_codes)):
        probe_code = probe_codes[i]
        meta = dict(probe_fragments[probe_code])
        meta.update(region_fragments[region_codes[i]])
        meta["day"] = days[i]
        meta["city_key"] = city_keys[probe_code]
        hops = [
            [None, None]
            if hop_addresses[position] == no_address
            else [hop_addresses[position], hop_rtts[position]]
            for position in range(offsets[i], offsets[i + 1])
        ]
        payload = {
            "kind": "traceroute",
            "meta": meta,
            "protocol": protocol_values[protocol_codes[i]],
            "source_address": sources[i],
            "dest_address": dests[i],
            "hops": hops,
        }
        fh.write(json.dumps(payload) + "\n")
    return len(probe_codes)


def save_dataset(dataset: MeasurementDataset, path: PathLike) -> int:
    """Write a dataset as line-delimited JSON (gzip if path ends ``.gz``).

    Returns the number of measurement lines written.  Record order
    matches iteration order: scalar records first, then columnar blocks;
    block-backed measurements take the columnar fast path (no per-record
    object materialization).  Besides :class:`MeasurementDataset` this
    accepts any dataset exposing the same read API -- notably the lazy
    :class:`repro.store.view.StoredDataset`, which is streamed
    shard-at-a-time.
    """
    lines = 0
    with _open(path, "w") as fh:
        header = {
            "kind": "header",
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "pings": dataset.ping_count,
            "traceroutes": dataset.traceroute_count,
        }
        fh.write(json.dumps(header) + "\n")
        for ping in dataset.iter_scalar_pings():
            fh.write(json.dumps(_ping_to_dict(ping)) + "\n")
            lines += 1
        for ping_block in dataset.iter_ping_blocks():
            lines += _write_ping_block(fh, ping_block)
        for trace in dataset.iter_scalar_traceroutes():
            fh.write(json.dumps(_trace_to_dict(trace)) + "\n")
            lines += 1
        for trace_block in dataset.iter_trace_blocks():
            lines += _write_trace_block(fh, trace_block)
    return lines


def load_dataset(path: PathLike) -> MeasurementDataset:
    """Read a dataset written by :func:`save_dataset`."""
    dataset = MeasurementDataset()
    with _open(path, "r") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty dataset file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {header.get('version')}"
            )
        for line_number, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            payload = json.loads(line)
            kind = payload.get("kind")
            if kind == "ping":
                dataset.add_ping(_ping_from_dict(payload))
            elif kind == "traceroute":
                dataset.add_traceroute(_trace_from_dict(payload))
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record kind {kind!r}"
                )
    return dataset
