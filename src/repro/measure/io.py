"""Dataset serialization.

The paper publishes its collected dataset (3.8M pings, 7M+ traceroutes)
for reproducibility; this module provides the equivalent for simulated
datasets: a line-delimited JSON format (one measurement per line) that
round-trips exactly and is stable across library versions.

Format: each line is an object with a ``kind`` tag (``"ping"`` or
``"traceroute"``), the measurement metadata, and the payload.  Files are
self-describing via a leading ``header`` line.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Union

from repro.geo.continents import Continent
from repro.lastmile.base import AccessKind
from repro.measure.results import (
    MeasurementDataset,
    MeasurementMeta,
    PingMeasurement,
    Protocol,
    TraceHop,
    TracerouteMeasurement,
)

FORMAT_NAME = "repro-dataset"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _meta_to_dict(meta: MeasurementMeta) -> dict:
    return {
        "probe_id": meta.probe_id,
        "platform": meta.platform,
        "country": meta.country,
        "continent": meta.continent.value,
        "access": meta.access.value,
        "isp_asn": meta.isp_asn,
        "provider_code": meta.provider_code,
        "region_id": meta.region_id,
        "region_country": meta.region_country,
        "region_continent": meta.region_continent.value,
        "day": meta.day,
        "city_key": list(meta.city_key),
    }


def _meta_from_dict(payload: dict) -> MeasurementMeta:
    return MeasurementMeta(
        probe_id=payload["probe_id"],
        platform=payload["platform"],
        country=payload["country"],
        continent=Continent(payload["continent"]),
        access=AccessKind(payload["access"]),
        isp_asn=payload["isp_asn"],
        provider_code=payload["provider_code"],
        region_id=payload["region_id"],
        region_country=payload["region_country"],
        region_continent=Continent(payload["region_continent"]),
        day=payload["day"],
        city_key=tuple(payload["city_key"]),
    )


def _ping_to_dict(measurement: PingMeasurement) -> dict:
    return {
        "kind": "ping",
        "meta": _meta_to_dict(measurement.meta),
        "protocol": measurement.protocol.value,
        "samples": list(measurement.samples),
    }


def _trace_to_dict(measurement: TracerouteMeasurement) -> dict:
    return {
        "kind": "traceroute",
        "meta": _meta_to_dict(measurement.meta),
        "protocol": measurement.protocol.value,
        "source_address": measurement.source_address,
        "dest_address": measurement.dest_address,
        "hops": [[hop.address, hop.rtt_ms] for hop in measurement.hops],
    }


def _ping_from_dict(payload: dict) -> PingMeasurement:
    return PingMeasurement(
        meta=_meta_from_dict(payload["meta"]),
        protocol=Protocol(payload["protocol"]),
        samples=tuple(payload["samples"]),
    )


def _trace_from_dict(payload: dict) -> TracerouteMeasurement:
    return TracerouteMeasurement(
        meta=_meta_from_dict(payload["meta"]),
        protocol=Protocol(payload["protocol"]),
        source_address=payload["source_address"],
        dest_address=payload["dest_address"],
        hops=tuple(
            TraceHop(address=address, rtt_ms=rtt)
            for address, rtt in payload["hops"]
        ),
    )


def _open(path: PathLike, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_dataset(dataset: MeasurementDataset, path: PathLike) -> int:
    """Write a dataset as line-delimited JSON (gzip if path ends ``.gz``).

    Returns the number of measurement lines written.
    """
    lines = 0
    with _open(path, "w") as fh:
        header = {
            "kind": "header",
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "pings": dataset.ping_count,
            "traceroutes": dataset.traceroute_count,
        }
        fh.write(json.dumps(header) + "\n")
        for ping in dataset.pings():
            fh.write(json.dumps(_ping_to_dict(ping)) + "\n")
            lines += 1
        for trace in dataset.traceroutes():
            fh.write(json.dumps(_trace_to_dict(trace)) + "\n")
            lines += 1
    return lines


def load_dataset(path: PathLike) -> MeasurementDataset:
    """Read a dataset written by :func:`save_dataset`."""
    dataset = MeasurementDataset()
    with _open(path, "r") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty dataset file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {header.get('version')}"
            )
        for line_number, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            payload = json.loads(line)
            kind = payload.get("kind")
            if kind == "ping":
                dataset.add_ping(_ping_from_dict(payload))
            elif kind == "traceroute":
                dataset.add_traceroute(_trace_from_dict(payload))
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record kind {kind!r}"
                )
    return dataset
