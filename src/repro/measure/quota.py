"""Shared quota accounting and rate limiting.

Two consumers sit on this module:

- the parallel campaign runner's parent-side commit phase
  (:class:`repro.exec.scheduler.QuotaLedger` is the :class:`QuotaLedger`
  here, pinned to raise :class:`~repro.exec.scheduler.ExecError`), which
  re-checks every committed unit against its platform's per-unit issue
  budget so workers can never silently over-issue a daily quota;
- the measurement service (:mod:`repro.service`), which runs the same
  ledger per tenant plus a :class:`TokenBucket` request rate limiter and
  a :class:`TenantLedger` lifetime quota, mirroring how commercial probe
  platforms meter API consumers.

Nothing here reads the wall clock: the token bucket takes an explicit
``now`` callable, so the service can run it on its transport-edge clock
shim and tests (including the hypothesis limiter properties) can drive
it from a virtual clock.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type


class QuotaError(RuntimeError):
    """A quota or rate-limit invariant was violated."""


class QuotaLedger:
    """Per-platform issue accounting for committed units.

    ``budgets`` maps platform name to the maximum requests one unit may
    issue (``min(rate cap, daily quota)`` for Speedchecker; platforms
    without quota are simply absent).  :meth:`record` is called once per
    committed unit with the number of requests the unit actually
    issued; exceeding the per-unit budget, or committing a unit twice,
    raises ``error_type`` -- quota can never be over-issued across
    workers (or service jobs) without the commit phase noticing.

    ``error_type`` exists so the exec scheduler can keep raising its
    :class:`~repro.exec.scheduler.ExecError` contract unchanged while
    the service raises :class:`QuotaError`.
    """

    def __init__(
        self,
        budgets: Optional[Dict[str, int]] = None,
        error_type: Type[Exception] = QuotaError,
    ) -> None:
        self._budgets: Dict[str, int] = dict(budgets or {})
        self._issued_by_platform: Dict[str, int] = {}
        self._issued_by_unit: Dict[str, int] = {}
        self._error_type = error_type

    def budget(self, platform: str) -> Optional[int]:
        """The per-unit issue budget of ``platform`` (None = unmetered)."""
        return self._budgets.get(platform)

    def record(self, unit: str, issued: int) -> None:
        """Account one committed unit's issued request count."""
        if unit in self._issued_by_unit:
            raise self._error_type(f"unit {unit!r} committed twice")
        if issued < 0:
            raise self._error_type(f"unit {unit!r} reports negative issue count")
        platform = unit.split(":", 1)[0]
        budget = self._budgets.get(platform)
        if budget is not None and issued > budget:
            raise self._error_type(
                f"unit {unit!r} issued {issued} requests, over the "
                f"per-unit budget of {budget} for platform {platform!r}"
            )
        self._issued_by_unit[unit] = issued
        self._issued_by_platform[platform] = (
            self._issued_by_platform.get(platform, 0) + issued
        )

    def issued(self, platform: str) -> int:
        """Total requests committed for ``platform`` so far."""
        return self._issued_by_platform.get(platform, 0)

    def issued_by_unit(self) -> Dict[str, int]:
        return dict(self._issued_by_unit)

    def as_dict(self) -> Dict[str, int]:
        """Per-platform totals, sorted by platform name."""
        return dict(sorted(self._issued_by_platform.items()))


class TokenBucket:
    """A classic token-bucket rate limiter on an explicit clock.

    The bucket starts full at ``capacity`` tokens and refills at
    ``rate`` tokens per second of the supplied ``now`` clock.  Two
    invariants (hypothesis-tested in ``tests/unit/test_quota.py``):

    - no burst ever exceeds ``capacity`` tokens;
    - over any window ``[t0, t1]`` the tokens issued are bounded by
      ``capacity + rate * (t1 - t0)``.

    The clock is expected to be monotonic; a backwards step is clamped
    (treated as zero elapsed time) rather than minting tokens.
    """

    def __init__(
        self,
        capacity: float,
        rate: float,
        now: Callable[[], float],
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._capacity = float(capacity)
        self._rate = float(rate)
        self._now = now
        self._tokens = float(capacity)
        self._updated = now()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def rate(self) -> float:
        return self._rate

    def _refill(self) -> None:
        now = self._now()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
        self._updated = max(self._updated, now)

    @property
    def tokens(self) -> float:
        """Tokens currently available (after refilling to now)."""
        self._refill()
        return self._tokens

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        self._refill()
        if self._tokens + 1e-9 >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens could be available.

        ``0.0`` when they already are; ``inf`` when the bucket can never
        refill that far (``rate == 0`` or ``amount > capacity``).
        """
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        self._refill()
        deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        if self._rate <= 0 or amount > self._capacity:
            return float("inf")
        return deficit / self._rate


class TenantLedger:
    """Lifetime request-quota accounting for one service tenant.

    ``limit`` is the total units the tenant may ever have issued
    (``None`` = unmetered).  :meth:`charge` is called once per accepted
    job with the number of units that job will execute; over-charging or
    double-charging a job raises :class:`QuotaError`, so concurrent
    submissions can never over-issue the quota without the accounting
    noticing.  :meth:`refund` returns a failed job's unexecuted units.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        self._limit = limit
        self._issued = 0
        self._by_job: Dict[str, int] = {}

    @property
    def limit(self) -> Optional[int]:
        return self._limit

    @property
    def issued(self) -> int:
        return self._issued

    @property
    def remaining(self) -> Optional[int]:
        if self._limit is None:
            return None
        return max(0, self._limit - self._issued)

    def can_charge(self, amount: int) -> bool:
        return self._limit is None or self._issued + amount <= self._limit

    def charge(self, job: str, amount: int) -> None:
        """Account one accepted job's planned unit count."""
        if amount < 0:
            raise QuotaError(f"job {job!r} charges negative amount {amount}")
        if job in self._by_job:
            raise QuotaError(f"job {job!r} charged twice")
        if not self.can_charge(amount):
            raise QuotaError(
                f"job {job!r} needs {amount} unit(s), tenant has "
                f"{self.remaining} of {self._limit} left"
            )
        self._by_job[job] = amount
        self._issued += amount

    def refund(self, job: str) -> int:
        """Return a charged job's units (job failed before executing)."""
        amount = self._by_job.pop(job, 0)
        self._issued -= amount
        return amount

    def charged_jobs(self) -> Dict[str, int]:
        return dict(self._by_job)
