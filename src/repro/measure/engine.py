"""The measurement engine: ping and traceroute over planned paths."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.core.config import SimulationConfig
from repro.lastmile.base import AccessKind, LastMileDraw
from repro.lastmile.models import CellularLastMile, HomeWifiLastMile, WiredLastMile
from repro.measure.latency import sample_hop_rtt, sample_path_rtt
from repro.measure.path import HOME_ROUTER_ADDRESS, PathPlanner, PlannedPath
from repro.measure.results import (
    MeasurementMeta,
    PingMeasurement,
    Protocol,
    TraceHop,
    TracerouteMeasurement,
)
from repro.platforms.probe import Probe


#: Cell size (degrees) for the <city, ASN> platform matching of Fig. 16.
CITY_CELL_DEGREES = 2.0


def city_key_for(probe: Probe) -> Tuple[int, int]:
    """Quantize a probe location to a ~metro-sized grid cell."""
    return (
        int(round(probe.location.lat / CITY_CELL_DEGREES)),
        int(round(probe.location.lon / CITY_CELL_DEGREES)),
    )


class MeasurementEngine:
    """Executes pings and traceroutes for probes against cloud regions."""

    def __init__(
        self,
        planner: PathPlanner,
        config: SimulationConfig,
        rng: np.random.Generator,
    ):
        self._planner = planner
        self._config = config
        self._rng = rng
        self._lastmile_cache: Dict[str, object] = {}

    # -- last mile -----------------------------------------------------------

    def _lastmile_model(self, probe: Probe, access: Optional[AccessKind] = None):
        access = access if access is not None else probe.access
        key = (probe.probe_id, access)
        model = self._lastmile_cache.get(key)
        if model is not None:
            return model
        last_mile = self._config.last_mile
        quality = probe.quality * last_mile.country_quality.get(probe.country, 1.0)
        if access is AccessKind.HOME_WIFI:
            model = HomeWifiLastMile(config=last_mile, quality=quality)
        elif access is AccessKind.CELLULAR:
            model = CellularLastMile(config=last_mile, quality=quality)
        else:
            model = WiredLastMile(config=last_mile, quality=quality)
        self._lastmile_cache[key] = model
        return model

    def _measurement_access(self, probe: Probe) -> AccessKind:
        """The access medium used for one measurement.

        Android devices occasionally switch between WiFi and cellular
        mid-study (a section-5 caveat); the switch flips the traceroute's
        first-hop signature and produces classification false positives.
        """
        if not probe.access.is_wireless:
            return probe.access
        if self._rng.random() >= self._config.last_mile.access_switch_probability:
            return probe.access
        if probe.access is AccessKind.HOME_WIFI:
            return AccessKind.CELLULAR
        return AccessKind.HOME_WIFI

    def _meta(self, probe: Probe, region: CloudRegion, day: int) -> MeasurementMeta:
        return MeasurementMeta(
            probe_id=probe.probe_id,
            platform=probe.platform,
            country=probe.country,
            continent=probe.continent,
            access=probe.access,
            isp_asn=probe.isp_asn,
            provider_code=region.provider_code,
            region_id=region.region_id,
            region_country=region.country,
            region_continent=region.continent,
            day=day,
            city_key=city_key_for(probe),
        )

    # -- ping ------------------------------------------------------------------

    def ping(
        self,
        probe: Probe,
        region: CloudRegion,
        protocol: Protocol = Protocol.TCP,
        samples: int = 4,
        day: int = 0,
    ) -> PingMeasurement:
        """One ping request: ``samples`` end-to-end RTT measurements."""
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        path = self._planner.plan(probe, region)
        model = self._lastmile_model(probe)
        rtts = []
        for _ in range(samples):
            last_mile = model.draw(self._rng)
            core = sample_path_rtt(
                path,
                Protocol(protocol),
                probe.continent,
                self._config,
                self._rng,
                day=day,
            )
            rtts.append(round(last_mile.total_ms + core, 3))
        return PingMeasurement(
            meta=self._meta(probe, region, day),
            protocol=Protocol(protocol),
            samples=tuple(rtts),
        )

    # -- traceroute ---------------------------------------------------------------

    def traceroute(
        self,
        probe: Probe,
        region: CloudRegion,
        protocol: Protocol = Protocol.ICMP,
        day: int = 0,
    ) -> TracerouteMeasurement:
        """One traceroute towards a region endpoint.

        Home probes expose their NAT router as a private-address first
        hop; cellular (and artifact) probes hit the ISP directly --
        exactly the signal the paper's home/cell classifier keys on.
        """
        path = self._planner.plan(probe, region)
        access = self._measurement_access(probe)
        model = self._lastmile_model(probe, access)
        last_mile: LastMileDraw = model.draw(self._rng)
        config = self._config
        rng = self._rng
        hops = []

        behind_router = access is AccessKind.HOME_WIFI and (
            probe.access is not AccessKind.HOME_WIFI
            or probe.device_address != probe.public_address
        )
        if behind_router:
            # Hop 1: the home router, reached over the WiFi air segment.
            hops.append(
                TraceHop(
                    address=HOME_ROUTER_ADDRESS,
                    rtt_ms=round(last_mile.air_ms + float(rng.exponential(0.3)), 3),
                )
            )

        unresponsive_p = config.path_model.hop_unresponsive_probability
        for planned in path.hops:
            is_destination = planned.address == path.dest_address
            if not is_destination and rng.random() < unresponsive_p:
                hops.append(TraceHop(address=None, rtt_ms=None))
                continue
            rtt = last_mile.total_ms + sample_hop_rtt(
                planned.base_rtt_ms,
                path,
                Protocol(protocol),
                probe.continent,
                config,
                rng,
                day=day,
            )
            hops.append(TraceHop(address=planned.address, rtt_ms=round(rtt, 3)))

        return TracerouteMeasurement(
            meta=self._meta(probe, region, day),
            protocol=Protocol(protocol),
            source_address=probe.device_address,
            dest_address=path.dest_address,
            hops=tuple(hops),
        )

    # -- introspection -------------------------------------------------------------

    def planned_path(self, probe: Probe, region: CloudRegion) -> PlannedPath:
        """The (cached) planned path -- ground truth for validation tests."""
        return self._planner.plan(probe, region)
