"""The measurement engine: ping and traceroute over planned paths."""

from __future__ import annotations

import typing
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.core.config import SimulationConfig
from repro.lastmile.base import AccessKind, LastMileModel
from repro.lastmile.models import CellularLastMile, HomeWifiLastMile, WiredLastMile
from repro.measure.batch import (
    PingRequest,
    TraceRequest,
    execute_ping_batch,
    execute_traceroute_batch,
)
from repro.measure.latency import sample_path_rtt
from repro.measure.path import PathPlanner, PlannedPath
from repro.measure.results import (
    MeasurementMeta,
    PingBlock,
    PingMeasurement,
    Protocol,
    TracerouteMeasurement,
    build_meta,
)

# Re-exported for backwards compatibility; the canonical home is the
# probe module so the results layer can build metas without the engine.
from repro.platforms.probe import CITY_CELL_DEGREES, Probe, city_key_for  # noqa: F401

#: Bound on the per-(probe, access) last-mile model cache.  A full-scale
#: fleet has >100k probes; without a bound a year-long campaign would
#: hold one model object per probe x access medium forever.  Eviction is
#: FIFO: the oldest entry is dropped once the bound is hit.
LASTMILE_CACHE_MAX = 65_536


class BatchEngine(typing.Protocol):
    """The batch-execution surface campaign units depend on.

    Structural, so the resilient runner can hand units either a real
    :class:`MeasurementEngine` or a fault-injecting wrapper
    (:class:`repro.faults.injectors.FaultyEngine`) without the unit code
    knowing the difference.
    """

    def ping_batch(
        self,
        requests: Sequence[PingRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> PingBlock: ...

    def traceroute_batch(
        self,
        requests: Sequence[TraceRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> List[TracerouteMeasurement]: ...


class MeasurementEngine:
    """Executes pings and traceroutes for probes against cloud regions."""

    def __init__(
        self,
        planner: PathPlanner,
        config: SimulationConfig,
        rng: np.random.Generator,
    ) -> None:
        self._planner = planner
        self._config = config
        self._rng = rng
        self._lastmile_cache: Dict[Tuple[str, AccessKind], LastMileModel] = {}

    # -- wiring (used by the batch fast path) --------------------------------

    @property
    def planner(self) -> PathPlanner:
        return self._planner

    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    # -- last mile -----------------------------------------------------------

    def lastmile_model(
        self, probe: Probe, access: Optional[AccessKind] = None
    ) -> LastMileModel:
        """The (cached) last-mile model for a probe's access medium."""
        access = access if access is not None else probe.access
        key = (probe.probe_id, access)
        model = self._lastmile_cache.get(key)
        if model is not None:
            return model
        last_mile = self._config.last_mile
        quality = probe.quality * last_mile.country_quality.get(probe.country, 1.0)
        if access is AccessKind.HOME_WIFI:
            model = HomeWifiLastMile(config=last_mile, quality=quality)
        elif access is AccessKind.CELLULAR:
            model = CellularLastMile(config=last_mile, quality=quality)
        else:
            model = WiredLastMile(config=last_mile, quality=quality)
        if len(self._lastmile_cache) >= LASTMILE_CACHE_MAX:
            self._lastmile_cache.pop(next(iter(self._lastmile_cache)))
        self._lastmile_cache[key] = model
        return model

    # Backwards-compatible private alias.
    _lastmile_model = lastmile_model

    def measurement_access(self, probe: Probe) -> AccessKind:
        """The access medium used for one measurement.

        Android devices occasionally switch between WiFi and cellular
        mid-study (a section-5 caveat); the switch flips the traceroute's
        first-hop signature and produces classification false positives.
        """
        if not probe.access.is_wireless:
            return probe.access
        if self._rng.random() >= self._config.last_mile.access_switch_probability:
            return probe.access
        if probe.access is AccessKind.HOME_WIFI:
            return AccessKind.CELLULAR
        return AccessKind.HOME_WIFI

    # Backwards-compatible private alias.
    _measurement_access = measurement_access

    def _meta(self, probe: Probe, region: CloudRegion, day: int) -> MeasurementMeta:
        return build_meta(probe, region, day)

    # -- ping ------------------------------------------------------------------

    def ping(
        self,
        probe: Probe,
        region: CloudRegion,
        protocol: Protocol = Protocol.TCP,
        samples: int = 4,
        day: int = 0,
    ) -> PingMeasurement:
        """One ping request: ``samples`` end-to-end RTT measurements."""
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        path = self._planner.plan(probe, region)
        model = self.lastmile_model(probe)
        rtts = []
        for _ in range(samples):
            last_mile = model.draw(self._rng)
            core = sample_path_rtt(
                path,
                Protocol(protocol),
                probe.continent,
                self._config,
                self._rng,
                day=day,
            )
            rtts.append(round(last_mile.total_ms + core, 3))
        return PingMeasurement(
            meta=self._meta(probe, region, day),
            protocol=Protocol(protocol),
            samples=tuple(rtts),
        )

    def ping_batch(
        self,
        requests: Sequence[PingRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> PingBlock:
        """Execute a whole request batch in one vectorized pass.

        The fast-path equivalent of calling :meth:`ping` once per
        request: requests are grouped by planned path and every noise
        process is drawn as NumPy arrays over all samples at once.
        Returns a columnar :class:`PingBlock`; feed it to
        :meth:`MeasurementDataset.add_ping_block`.  ``rng`` overrides the
        engine's stream (used by checkpointed campaign units).
        """
        return execute_ping_batch(self, requests, rng=rng)

    # -- traceroute ---------------------------------------------------------------

    def traceroute(
        self,
        probe: Probe,
        region: CloudRegion,
        protocol: Protocol = Protocol.ICMP,
        day: int = 0,
    ) -> TracerouteMeasurement:
        """One traceroute towards a region endpoint.

        Home probes expose their NAT router as a private-address first
        hop; cellular (and artifact) probes hit the ISP directly --
        exactly the signal the paper's home/cell classifier keys on.
        A batch of one through the vectorized traceroute path.
        """
        request = TraceRequest(
            probe=probe, region=region, protocol=Protocol(protocol), day=day
        )
        return execute_traceroute_batch(self, [request])[0]

    def traceroute_batch(
        self,
        requests: Sequence[TraceRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> List[TracerouteMeasurement]:
        """Execute a whole traceroute batch in one vectorized pass.

        The fast-path equivalent of calling :meth:`traceroute` once per
        request: every hop of every trace is sampled as flat NumPy
        arrays.  Returns the :class:`TracerouteMeasurement` list in
        request order.  ``rng`` overrides the engine's stream (used by
        checkpointed campaign units).
        """
        return execute_traceroute_batch(self, requests, rng=rng)

    # -- introspection -------------------------------------------------------------

    def planned_path(self, probe: Probe, region: CloudRegion) -> PlannedPath:
        """The (cached) planned path -- ground truth for validation tests."""
        return self._planner.plan(probe, region)
