"""Measurement records and the dataset container.

Records intentionally carry only what a real measurement platform would
return (addresses, RTTs) plus the probe/endpoint bookkeeping the paper's
pipeline keeps alongside (probe id, geolocation, serving ASN, target
region).  Everything inferred -- AS paths, last-mile segments, peering
classes -- is derived by :mod:`repro.resolve` and :mod:`repro.analysis`,
exactly as the paper derives it from raw traceroutes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.geo.continents import Continent
from repro.geo.coords import GeoPoint
from repro.lastmile.base import AccessKind
from repro.platforms.probe import CITY_CELL_DEGREES, Probe, city_key_for


class Protocol(str, Enum):
    """Measurement protocol."""

    TCP = "tcp"
    ICMP = "icmp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class TraceHop(NamedTuple):
    """One traceroute hop: ``address`` is ``None`` when unresponsive.

    A named tuple rather than a dataclass: campaigns allocate one per
    hop of every trace, and tuple construction is several times cheaper.
    """

    address: Optional[int]
    rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass(frozen=True)
class MeasurementMeta:
    """Bookkeeping shared by ping and traceroute records."""

    probe_id: str
    platform: str
    country: str
    continent: Continent
    access: AccessKind
    isp_asn: int
    provider_code: str
    region_id: str
    region_country: str
    region_continent: Continent
    day: int
    #: Probe location quantized to ~a city (used by the same-<city, ASN>
    #: platform comparison of Fig. 16).
    city_key: Tuple[int, int]


@dataclass(frozen=True)
class PingMeasurement:
    """One ping request: a handful of RTT samples to a region endpoint."""

    meta: MeasurementMeta
    protocol: Protocol
    samples: Tuple[float, ...]

    @property
    def min_rtt_ms(self) -> float:
        return min(self.samples)

    @property
    def median_rtt_ms(self) -> float:
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class TracerouteMeasurement:
    """One traceroute: hop list ending (when successful) at the endpoint."""

    meta: MeasurementMeta
    protocol: Protocol
    source_address: int
    dest_address: int
    hops: Tuple[TraceHop, ...]

    @property
    def reached(self) -> bool:
        last = self.hops[-1] if self.hops else None
        return last is not None and last.address == self.dest_address

    @property
    def end_to_end_rtt_ms(self) -> Optional[float]:
        """RTT of the final (destination) hop, when reached."""
        if not self.reached:
            return None
        return self.hops[-1].rtt_ms


#: Wire codes for protocols inside columnar blocks.
PROTOCOL_BY_CODE: Tuple[Protocol, ...] = (Protocol.TCP, Protocol.ICMP)
PROTOCOL_CODES = {protocol: code for code, protocol in enumerate(PROTOCOL_BY_CODE)}


def build_meta(probe: Probe, region: "CloudRegion", day: int) -> MeasurementMeta:
    """The :class:`MeasurementMeta` for one (probe, region, day) request."""
    return MeasurementMeta(
        probe_id=probe.probe_id,
        platform=probe.platform,
        country=probe.country,
        continent=probe.continent,
        access=probe.access,
        isp_asn=probe.isp_asn,
        provider_code=region.provider_code,
        region_id=region.region_id,
        region_country=region.country,
        region_continent=region.continent,
        day=day,
        city_key=city_key_for(probe),
    )


class PingBlock:
    """One batch of ping requests in columnar form.

    Instead of one frozen dataclass per request, a block holds structured
    NumPy arrays over the whole batch -- interned probe/region codes, a
    day column, protocol codes, and a flat sample array indexed by
    per-request offsets.  :meth:`record` materializes the classic
    :class:`PingMeasurement` view for one row; :meth:`records` does so for
    the whole block and caches the result so repeated analysis passes pay
    the materialization cost only once.
    """

    __slots__ = (
        "probes",
        "regions",
        "probe_codes",
        "region_codes",
        "days",
        "protocol_codes",
        "sample_values",
        "sample_offsets",
        "epochs",
        "outage_ids",
        "_records",
    )

    def __init__(
        self,
        probes: Sequence,
        regions: Sequence,
        probe_codes: np.ndarray,
        region_codes: np.ndarray,
        days: np.ndarray,
        protocol_codes: np.ndarray,
        sample_values: np.ndarray,
        sample_offsets: np.ndarray,
        epochs: Optional[np.ndarray] = None,
        outage_ids: Optional[np.ndarray] = None,
    ) -> None:
        self.probes = list(probes)
        self.regions = list(regions)
        self.probe_codes = np.asarray(probe_codes, dtype=np.int32)
        self.region_codes = np.asarray(region_codes, dtype=np.int32)
        self.days = np.asarray(days, dtype=np.int32)
        self.protocol_codes = np.asarray(protocol_codes, dtype=np.uint8)
        self.sample_values = np.asarray(sample_values, dtype=np.float64)
        self.sample_offsets = np.asarray(sample_offsets, dtype=np.int64)
        self.epochs: Optional[np.ndarray] = (
            None if epochs is None else np.asarray(epochs, dtype=np.int32)
        )
        self.outage_ids: Optional[np.ndarray] = (
            None
            if outage_ids is None
            else np.asarray(outage_ids, dtype=np.int32)
        )
        if len(self.sample_offsets) != len(self.probe_codes) + 1:
            raise ValueError("sample_offsets must have one entry per request + 1")
        self._records: Optional[List[PingMeasurement]] = None

    def __len__(self) -> int:
        return len(self.probe_codes)

    @property
    def sample_count(self) -> int:
        return int(self.sample_offsets[-1]) if len(self.sample_offsets) else 0

    def record(self, index: int) -> PingMeasurement:
        """The record view of one request row."""
        i = int(index)
        lo = int(self.sample_offsets[i])
        hi = int(self.sample_offsets[i + 1])
        probe = self.probes[int(self.probe_codes[i])]
        region = self.regions[int(self.region_codes[i])]
        return PingMeasurement(
            meta=build_meta(probe, region, int(self.days[i])),
            protocol=PROTOCOL_BY_CODE[int(self.protocol_codes[i])],
            samples=tuple(float(v) for v in self.sample_values[lo:hi]),
        )

    def records(self) -> List[PingMeasurement]:
        """All record views, materialized once and cached."""
        if self._records is None:
            self._records = [self.record(i) for i in range(len(self))]
        return self._records

    def validate(self) -> None:
        """Check the block's columns against the canonical schema.

        Raises :class:`TypeError` on dtype mismatches and
        :class:`ValueError` on internal inconsistencies (offset shape,
        out-of-range interned codes).
        """
        n = len(self)
        _validate_columns(
            self, PING_COLUMN_DTYPES, n, "sample_offsets", ("sample_values",)
        )
        _validate_optional_columns(self, PING_OPTIONAL_COLUMN_DTYPES, n)
        if n:
            if int(self.probe_codes.min()) < 0 or int(
                self.probe_codes.max()
            ) >= len(self.probes):
                raise ValueError("probe_codes reference rows outside the table")
            if int(self.region_codes.min()) < 0 or int(
                self.region_codes.max()
            ) >= len(self.regions):
                raise ValueError("region_codes reference rows outside the table")
            if int(self.protocol_codes.max()) >= len(PROTOCOL_BY_CODE):
                raise ValueError("protocol_codes contain unknown wire codes")

    def __repr__(self) -> str:
        return f"PingBlock(requests={len(self)}, samples={self.sample_count})"


#: The canonical column schema of a :class:`PingBlock`: attribute name ->
#: expected NumPy dtype.  Shared by the in-memory store validation and
#: the on-disk shard format of :mod:`repro.store`.
PING_COLUMN_DTYPES: Dict[str, np.dtype] = {
    "probe_codes": np.dtype(np.int32),
    "region_codes": np.dtype(np.int32),
    "days": np.dtype(np.int32),
    "protocol_codes": np.dtype(np.uint8),
    "sample_values": np.dtype(np.float64),
    "sample_offsets": np.dtype(np.int64),
}

#: The canonical column schema of a :class:`TraceBlock`.
TRACE_COLUMN_DTYPES: Dict[str, np.dtype] = {
    "probe_codes": np.dtype(np.int32),
    "region_codes": np.dtype(np.int32),
    "days": np.dtype(np.int32),
    "protocol_codes": np.dtype(np.uint8),
    "source_addresses": np.dtype(np.int64),
    "dest_addresses": np.dtype(np.int64),
    "hop_offsets": np.dtype(np.int64),
    "hop_addresses": np.dtype(np.int64),
    "hop_rtts": np.dtype(np.float64),
}

#: Optional per-request provenance columns carried by blocks produced
#: under an active network fault plan (:mod:`repro.netfaults`):
#: ``epochs`` is the routing epoch a request executed in, ``outage_ids``
#: the network event id that rerouted it (``-1`` when none).  Absent on
#: blocks from static-world runs, keeping those bytes unchanged.
PING_OPTIONAL_COLUMN_DTYPES: Dict[str, np.dtype] = {
    "epochs": np.dtype(np.int32),
    "outage_ids": np.dtype(np.int32),
}

#: Optional provenance columns of a :class:`TraceBlock`; see
#: :data:`PING_OPTIONAL_COLUMN_DTYPES`.
TRACE_OPTIONAL_COLUMN_DTYPES: Dict[str, np.dtype] = {
    "epochs": np.dtype(np.int32),
    "outage_ids": np.dtype(np.int32),
}


def _validate_optional_columns(
    block: object, schema: Mapping[str, np.dtype], rows: int
) -> None:
    """Check optional provenance columns when present (``None`` is valid)."""
    for name, expected in schema.items():
        column = getattr(block, name)
        if column is None:
            continue
        if not isinstance(column, np.ndarray):
            raise TypeError(
                f"{type(block).__name__}.{name} must be a numpy array or "
                f"None, got {type(column).__name__}"
            )
        if column.dtype != expected:
            raise TypeError(
                f"{type(block).__name__}.{name} has dtype {column.dtype}, "
                f"expected {expected}"
            )
        if column.ndim != 1:
            raise ValueError(
                f"{type(block).__name__}.{name} must be one-dimensional"
            )
        if len(column) != rows:
            raise ValueError(
                f"{type(block).__name__}.{name} has {len(column)} entries "
                f"for {rows} requests"
            )


def _validate_columns(
    block: object,
    schema: Mapping[str, np.dtype],
    rows: int,
    offsets_name: str,
    values_names: Sequence[str],
) -> None:
    """Schema/consistency checks shared by ping and trace blocks."""
    for name, expected in schema.items():
        column = getattr(block, name)
        if not isinstance(column, np.ndarray):
            raise TypeError(
                f"{type(block).__name__}.{name} must be a numpy array, "
                f"got {type(column).__name__}"
            )
        if column.dtype != expected:
            raise TypeError(
                f"{type(block).__name__}.{name} has dtype {column.dtype}, "
                f"expected {expected}"
            )
        if column.ndim != 1:
            raise ValueError(
                f"{type(block).__name__}.{name} must be one-dimensional"
            )
    offsets = getattr(block, offsets_name)
    if len(offsets) != rows + 1:
        raise ValueError(
            f"{offsets_name} must have {rows + 1} entries, got {len(offsets)}"
        )
    if rows and (int(offsets[0]) != 0 or np.any(np.diff(offsets) < 0)):
        raise ValueError(f"{offsets_name} must start at 0 and be nondecreasing")
    total = int(offsets[-1]) if len(offsets) else 0
    for values_name in values_names:
        values = getattr(block, values_name)
        if len(values) != total:
            raise ValueError(
                f"{values_name} has {len(values)} entries but "
                f"{offsets_name} addresses {total}"
            )


class ColumnarPingStore:
    """Columnar backing for batched pings: a sequence of ping blocks.

    Every block entering the store -- via :meth:`append_block` or a
    merge through :meth:`extend` -- is schema-validated first, so a
    malformed block (wrong dtypes, inconsistent offsets, out-of-range
    codes) fails loudly at insertion instead of corrupting analyses or
    serialized shards later.
    """

    def __init__(self) -> None:
        self._blocks: List[PingBlock] = []

    def append_block(self, block: PingBlock) -> None:
        block.validate()
        self._blocks.append(block)

    def extend(self, other: "ColumnarPingStore") -> None:
        for block in other._blocks:
            block.validate()
        self._blocks.extend(other._blocks)

    @property
    def blocks(self) -> List[PingBlock]:
        return list(self._blocks)

    def iter_blocks(self) -> Iterator[PingBlock]:
        """Yield blocks without copying the block list."""
        return iter(self._blocks)

    @property
    def request_count(self) -> int:
        return sum(len(block) for block in self._blocks)

    @property
    def sample_count(self) -> int:
        return sum(block.sample_count for block in self._blocks)

    def iter_records(self) -> Iterator[PingMeasurement]:
        for block in self._blocks:
            yield from block.records()

    def __len__(self) -> int:
        return self.request_count

    def __repr__(self) -> str:
        return (
            f"ColumnarPingStore(blocks={len(self._blocks)}, "
            f"requests={self.request_count})"
        )


class TraceBlock:
    """One batch of traceroutes in columnar form.

    The traceroute counterpart of :class:`PingBlock`: interned
    probe/region codes, day and protocol columns, endpoint address
    columns, and a flat hop array indexed by per-trace offsets.
    Unresponsive hops are encoded in-band (address ``-1``, RTT ``NaN``)
    so the hop columns stay fixed-dtype and memmap-friendly.
    """

    #: In-band encoding of an unresponsive hop's address.
    NO_ADDRESS = -1

    __slots__ = (
        "probes",
        "regions",
        "probe_codes",
        "region_codes",
        "days",
        "protocol_codes",
        "source_addresses",
        "dest_addresses",
        "hop_offsets",
        "hop_addresses",
        "hop_rtts",
        "epochs",
        "outage_ids",
        "_records",
    )

    def __init__(
        self,
        probes: Sequence[Probe],
        regions: Sequence[CloudRegion],
        probe_codes: np.ndarray,
        region_codes: np.ndarray,
        days: np.ndarray,
        protocol_codes: np.ndarray,
        source_addresses: np.ndarray,
        dest_addresses: np.ndarray,
        hop_offsets: np.ndarray,
        hop_addresses: np.ndarray,
        hop_rtts: np.ndarray,
        epochs: Optional[np.ndarray] = None,
        outage_ids: Optional[np.ndarray] = None,
    ) -> None:
        self.probes = list(probes)
        self.regions = list(regions)
        self.probe_codes = np.asarray(probe_codes, dtype=np.int32)
        self.region_codes = np.asarray(region_codes, dtype=np.int32)
        self.days = np.asarray(days, dtype=np.int32)
        self.protocol_codes = np.asarray(protocol_codes, dtype=np.uint8)
        self.source_addresses = np.asarray(source_addresses, dtype=np.int64)
        self.dest_addresses = np.asarray(dest_addresses, dtype=np.int64)
        self.hop_offsets = np.asarray(hop_offsets, dtype=np.int64)
        self.hop_addresses = np.asarray(hop_addresses, dtype=np.int64)
        self.hop_rtts = np.asarray(hop_rtts, dtype=np.float64)
        self.epochs: Optional[np.ndarray] = (
            None if epochs is None else np.asarray(epochs, dtype=np.int32)
        )
        self.outage_ids: Optional[np.ndarray] = (
            None
            if outage_ids is None
            else np.asarray(outage_ids, dtype=np.int32)
        )
        if len(self.hop_offsets) != len(self.probe_codes) + 1:
            raise ValueError("hop_offsets must have one entry per trace + 1")
        self._records: Optional[List[TracerouteMeasurement]] = None

    def __len__(self) -> int:
        return len(self.probe_codes)

    @property
    def hop_count(self) -> int:
        return int(self.hop_offsets[-1]) if len(self.hop_offsets) else 0

    def record(self, index: int) -> TracerouteMeasurement:
        """The record view of one trace row."""
        i = int(index)
        lo = int(self.hop_offsets[i])
        hi = int(self.hop_offsets[i + 1])
        probe = self.probes[int(self.probe_codes[i])]
        region = self.regions[int(self.region_codes[i])]
        hops = []
        for address, rtt in zip(
            self.hop_addresses[lo:hi].tolist(), self.hop_rtts[lo:hi].tolist()
        ):
            if address == TraceBlock.NO_ADDRESS:
                hops.append(TraceHop(address=None, rtt_ms=None))
            else:
                hops.append(TraceHop(address=address, rtt_ms=rtt))
        return TracerouteMeasurement(
            meta=build_meta(probe, region, int(self.days[i])),
            protocol=PROTOCOL_BY_CODE[int(self.protocol_codes[i])],
            source_address=int(self.source_addresses[i]),
            dest_address=int(self.dest_addresses[i]),
            hops=tuple(hops),
        )

    def records(self) -> List[TracerouteMeasurement]:
        """All record views, materialized once and cached."""
        if self._records is None:
            self._records = [self.record(i) for i in range(len(self))]
        return self._records

    def validate(self) -> None:
        """Check the block's columns against the canonical schema."""
        n = len(self)
        _validate_columns(
            self,
            TRACE_COLUMN_DTYPES,
            n,
            "hop_offsets",
            ("hop_addresses", "hop_rtts"),
        )
        _validate_optional_columns(self, TRACE_OPTIONAL_COLUMN_DTYPES, n)
        if n:
            if int(self.probe_codes.min()) < 0 or int(
                self.probe_codes.max()
            ) >= len(self.probes):
                raise ValueError("probe_codes reference rows outside the table")
            if int(self.region_codes.min()) < 0 or int(
                self.region_codes.max()
            ) >= len(self.regions):
                raise ValueError("region_codes reference rows outside the table")
            if int(self.protocol_codes.max()) >= len(PROTOCOL_BY_CODE):
                raise ValueError("protocol_codes contain unknown wire codes")

    def __repr__(self) -> str:
        return f"TraceBlock(traces={len(self)}, hops={self.hop_count})"


class ColumnarTraceStore:
    """Columnar backing for batched traceroutes: a sequence of blocks."""

    def __init__(self) -> None:
        self._blocks: List[TraceBlock] = []

    def append_block(self, block: TraceBlock) -> None:
        block.validate()
        self._blocks.append(block)

    def extend(self, other: "ColumnarTraceStore") -> None:
        for block in other._blocks:
            block.validate()
        self._blocks.extend(other._blocks)

    @property
    def blocks(self) -> List[TraceBlock]:
        return list(self._blocks)

    def iter_blocks(self) -> Iterator[TraceBlock]:
        """Yield blocks without copying the block list."""
        return iter(self._blocks)

    @property
    def request_count(self) -> int:
        return sum(len(block) for block in self._blocks)

    def iter_records(self) -> Iterator[TracerouteMeasurement]:
        for block in self._blocks:
            yield from block.records()

    def __len__(self) -> int:
        return self.request_count

    def __repr__(self) -> str:
        return (
            f"ColumnarTraceStore(blocks={len(self._blocks)}, "
            f"traces={self.request_count})"
        )


def standin_probe(meta: MeasurementMeta) -> Probe:
    """A placeholder :class:`Probe` carrying exactly a record's meta.

    Used when columnarizing records whose originating probe objects are
    gone (e.g. a JSONL import): the stand-in reproduces every
    :class:`MeasurementMeta` field bit-for-bit -- the location is the
    city-cell centre, which quantizes back to the same ``city_key`` --
    while fields outside the meta (addresses, quality) take neutral
    defaults.
    """
    return Probe(
        probe_id=meta.probe_id,
        platform=meta.platform,
        country=meta.country,
        continent=meta.continent,
        location=GeoPoint(
            meta.city_key[0] * CITY_CELL_DEGREES,
            meta.city_key[1] * CITY_CELL_DEGREES,
        ),
        isp_asn=meta.isp_asn,
        access=meta.access,
        device_address=0,
        public_address=0,
    )


def standin_region(meta: MeasurementMeta) -> CloudRegion:
    """A placeholder :class:`CloudRegion` carrying a record's meta."""
    return CloudRegion(
        provider_code=meta.provider_code,
        region_id=meta.region_id,
        city="",
        country=meta.region_country,
        continent=meta.region_continent,
        location=GeoPoint(0.0, 0.0),
    )


class _BlockInterner:
    """Shared probe/region interning for the record -> block builders."""

    def __init__(
        self,
        probes_by_id: Optional[Mapping[str, Probe]],
        regions_by_key: Optional[Mapping[Tuple[str, str], CloudRegion]],
    ) -> None:
        self._probes_by_id = probes_by_id or {}
        self._regions_by_key = regions_by_key or {}
        self.probes: List[Probe] = []
        self.regions: List[CloudRegion] = []
        self._probe_codes: Dict[str, int] = {}
        self._region_codes: Dict[Tuple[str, str], int] = {}

    def probe_code(self, meta: MeasurementMeta) -> int:
        code = self._probe_codes.get(meta.probe_id)
        if code is None:
            code = len(self.probes)
            probe = self._probes_by_id.get(meta.probe_id)
            self.probes.append(probe if probe is not None else standin_probe(meta))
            self._probe_codes[meta.probe_id] = code
        return code

    def region_code(self, meta: MeasurementMeta) -> int:
        key = (meta.provider_code, meta.region_id)
        code = self._region_codes.get(key)
        if code is None:
            code = len(self.regions)
            region = self._regions_by_key.get(key)
            self.regions.append(
                region if region is not None else standin_region(meta)
            )
            self._region_codes[key] = code
        return code


def ping_block_from_records(
    records: Sequence[PingMeasurement],
    probes_by_id: Optional[Mapping[str, Probe]] = None,
    regions_by_key: Optional[Mapping[Tuple[str, str], CloudRegion]] = None,
) -> PingBlock:
    """Columnarize ping records into one :class:`PingBlock`.

    The inverse of :meth:`PingBlock.records`.  When the optional lookup
    tables do not cover a record, a stand-in probe/region reproducing
    the record's meta exactly is interned instead -- see
    :func:`standin_probe`.
    """
    interner = _BlockInterner(probes_by_id, regions_by_key)
    probe_codes: List[int] = []
    region_codes: List[int] = []
    days: List[int] = []
    protocol_codes: List[int] = []
    sample_values: List[float] = []
    sample_offsets: List[int] = [0]
    for record in records:
        probe_codes.append(interner.probe_code(record.meta))
        region_codes.append(interner.region_code(record.meta))
        days.append(record.meta.day)
        protocol_codes.append(PROTOCOL_CODES[record.protocol])
        sample_values.extend(record.samples)
        sample_offsets.append(len(sample_values))
    return PingBlock(
        probes=interner.probes,
        regions=interner.regions,
        probe_codes=np.array(probe_codes, np.int32),
        region_codes=np.array(region_codes, np.int32),
        days=np.array(days, np.int32),
        protocol_codes=np.array(protocol_codes, np.uint8),
        sample_values=np.array(sample_values, np.float64),
        sample_offsets=np.array(sample_offsets, np.int64),
    )


def trace_block_from_records(
    records: Sequence[TracerouteMeasurement],
    probes_by_id: Optional[Mapping[str, Probe]] = None,
    regions_by_key: Optional[Mapping[Tuple[str, str], CloudRegion]] = None,
) -> TraceBlock:
    """Columnarize traceroute records into one :class:`TraceBlock`.

    The inverse of :meth:`TraceBlock.records`; unresponsive hops are
    encoded as (``TraceBlock.NO_ADDRESS``, ``NaN``).
    """
    interner = _BlockInterner(probes_by_id, regions_by_key)
    probe_codes: List[int] = []
    region_codes: List[int] = []
    days: List[int] = []
    protocol_codes: List[int] = []
    source_addresses: List[int] = []
    dest_addresses: List[int] = []
    hop_addresses: List[int] = []
    hop_rtts: List[float] = []
    hop_offsets: List[int] = [0]
    for record in records:
        probe_codes.append(interner.probe_code(record.meta))
        region_codes.append(interner.region_code(record.meta))
        days.append(record.meta.day)
        protocol_codes.append(PROTOCOL_CODES[record.protocol])
        source_addresses.append(record.source_address)
        dest_addresses.append(record.dest_address)
        for hop in record.hops:
            if hop.address is None:
                hop_addresses.append(TraceBlock.NO_ADDRESS)
                hop_rtts.append(math.nan)
            else:
                hop_addresses.append(hop.address)
                hop_rtts.append(
                    hop.rtt_ms if hop.rtt_ms is not None else math.nan
                )
        hop_offsets.append(len(hop_addresses))
    return TraceBlock(
        probes=interner.probes,
        regions=interner.regions,
        probe_codes=np.array(probe_codes, np.int32),
        region_codes=np.array(region_codes, np.int32),
        days=np.array(days, np.int32),
        protocol_codes=np.array(protocol_codes, np.uint8),
        source_addresses=np.array(source_addresses, np.int64),
        dest_addresses=np.array(dest_addresses, np.int64),
        hop_offsets=np.array(hop_offsets, np.int64),
        hop_addresses=np.array(hop_addresses, np.int64),
        hop_rtts=np.array(hop_rtts, np.float64),
    )


class MeasurementDataset:
    """An in-memory dataset of ping and traceroute measurements.

    Pings arrive either as individual records (:meth:`add_ping`) or as
    columnar :class:`PingBlock` batches from the vectorized engine
    (:meth:`add_ping_block`); :meth:`pings` yields the uniform record
    view over both backings, so analysis code never needs to know which
    path produced a measurement.
    """

    def __init__(self) -> None:
        self._pings: List[PingMeasurement] = []
        self._ping_store = ColumnarPingStore()
        self._traceroutes: List[TracerouteMeasurement] = []
        self._trace_store = ColumnarTraceStore()

    # -- construction -----------------------------------------------------

    def add_ping(self, measurement: PingMeasurement) -> None:
        self._pings.append(measurement)

    def add_ping_block(self, block: PingBlock) -> None:
        self._ping_store.append_block(block)

    def add_traceroute(self, measurement: TracerouteMeasurement) -> None:
        self._traceroutes.append(measurement)

    def add_trace_block(self, block: TraceBlock) -> None:
        self._trace_store.append_block(block)

    def extend(self, other: "MeasurementDataset") -> None:
        """Merge another dataset into this one."""
        self._pings.extend(other._pings)
        self._ping_store.extend(other._ping_store)
        self._traceroutes.extend(other._traceroutes)
        self._trace_store.extend(other._trace_store)

    # -- access ------------------------------------------------------------

    @property
    def ping_store(self) -> ColumnarPingStore:
        """The columnar backing (batched pings only)."""
        return self._ping_store

    @property
    def trace_store(self) -> ColumnarTraceStore:
        """The columnar backing (block-backed traceroutes only)."""
        return self._trace_store

    @property
    def ping_count(self) -> int:
        return len(self._pings) + self._ping_store.request_count

    @property
    def traceroute_count(self) -> int:
        return len(self._traceroutes) + self._trace_store.request_count

    @property
    def ping_sample_count(self) -> int:
        return (
            sum(len(p.samples) for p in self._pings)
            + self._ping_store.sample_count
        )

    def pings(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[PingMeasurement], bool]] = None,
    ) -> Iterator[PingMeasurement]:
        """Iterate pings (scalar records first, then columnar blocks)."""
        for measurement in self._iter_all_pings():
            if platform is not None and measurement.meta.platform != platform:
                continue
            if protocol is not None and measurement.protocol is not Protocol(protocol):
                continue
            if predicate is not None and not predicate(measurement):
                continue
            yield measurement

    def _iter_all_pings(self) -> Iterator[PingMeasurement]:
        yield from self._pings
        yield from self._ping_store.iter_records()

    def traceroutes(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[TracerouteMeasurement], bool]] = None,
    ) -> Iterator[TracerouteMeasurement]:
        """Iterate traceroutes (scalar records first, then columnar blocks)."""
        for measurement in self._iter_all_traceroutes():
            if platform is not None and measurement.meta.platform != platform:
                continue
            if protocol is not None and measurement.protocol is not Protocol(protocol):
                continue
            if predicate is not None and not predicate(measurement):
                continue
            yield measurement

    def _iter_all_traceroutes(self) -> Iterator[TracerouteMeasurement]:
        yield from self._traceroutes
        yield from self._trace_store.iter_records()

    def iter_scalar_pings(self) -> Iterator[PingMeasurement]:
        """The individually-added ping records (no columnar blocks)."""
        return iter(self._pings)

    def iter_scalar_traceroutes(self) -> Iterator[TracerouteMeasurement]:
        """The individually-added traceroutes (no columnar blocks)."""
        return iter(self._traceroutes)

    def ping_blocks(self) -> List[PingBlock]:
        """The columnar ping blocks (batched pings only)."""
        return self._ping_store.blocks

    def trace_blocks(self) -> List[TraceBlock]:
        """The columnar traceroute blocks."""
        return self._trace_store.blocks

    def iter_ping_blocks(self) -> Iterator[PingBlock]:
        """Yield ping blocks lazily (list-copy-free counterpart of
        :meth:`ping_blocks`, mirroring the store view's generator)."""
        return self._ping_store.iter_blocks()

    def iter_trace_blocks(self) -> Iterator[TraceBlock]:
        """Yield trace blocks lazily."""
        return self._trace_store.iter_blocks()

    def __repr__(self) -> str:
        return (
            f"MeasurementDataset(pings={self.ping_count}, "
            f"traceroutes={self.traceroute_count})"
        )
