"""Measurement records and the dataset container.

Records intentionally carry only what a real measurement platform would
return (addresses, RTTs) plus the probe/endpoint bookkeeping the paper's
pipeline keeps alongside (probe id, geolocation, serving ASN, target
region).  Everything inferred -- AS paths, last-mile segments, peering
classes -- is derived by :mod:`repro.resolve` and :mod:`repro.analysis`,
exactly as the paper derives it from raw traceroutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.geo.continents import Continent
from repro.lastmile.base import AccessKind


class Protocol(str, Enum):
    """Measurement protocol."""

    TCP = "tcp"
    ICMP = "icmp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class TraceHop:
    """One traceroute hop: ``address`` is ``None`` when unresponsive."""

    address: Optional[int]
    rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass(frozen=True)
class MeasurementMeta:
    """Bookkeeping shared by ping and traceroute records."""

    probe_id: str
    platform: str
    country: str
    continent: Continent
    access: AccessKind
    isp_asn: int
    provider_code: str
    region_id: str
    region_country: str
    region_continent: Continent
    day: int
    #: Probe location quantized to ~a city (used by the same-<city, ASN>
    #: platform comparison of Fig. 16).
    city_key: Tuple[int, int]


@dataclass(frozen=True)
class PingMeasurement:
    """One ping request: a handful of RTT samples to a region endpoint."""

    meta: MeasurementMeta
    protocol: Protocol
    samples: Tuple[float, ...]

    @property
    def min_rtt_ms(self) -> float:
        return min(self.samples)

    @property
    def median_rtt_ms(self) -> float:
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class TracerouteMeasurement:
    """One traceroute: hop list ending (when successful) at the endpoint."""

    meta: MeasurementMeta
    protocol: Protocol
    source_address: int
    dest_address: int
    hops: Tuple[TraceHop, ...]

    @property
    def reached(self) -> bool:
        last = self.hops[-1] if self.hops else None
        return last is not None and last.address == self.dest_address

    @property
    def end_to_end_rtt_ms(self) -> Optional[float]:
        """RTT of the final (destination) hop, when reached."""
        if not self.reached:
            return None
        return self.hops[-1].rtt_ms


class MeasurementDataset:
    """An in-memory dataset of ping and traceroute measurements."""

    def __init__(self) -> None:
        self._pings: List[PingMeasurement] = []
        self._traceroutes: List[TracerouteMeasurement] = []

    # -- construction -----------------------------------------------------

    def add_ping(self, measurement: PingMeasurement) -> None:
        self._pings.append(measurement)

    def add_traceroute(self, measurement: TracerouteMeasurement) -> None:
        self._traceroutes.append(measurement)

    def extend(self, other: "MeasurementDataset") -> None:
        """Merge another dataset into this one."""
        self._pings.extend(other._pings)
        self._traceroutes.extend(other._traceroutes)

    # -- access ------------------------------------------------------------

    @property
    def ping_count(self) -> int:
        return len(self._pings)

    @property
    def traceroute_count(self) -> int:
        return len(self._traceroutes)

    @property
    def ping_sample_count(self) -> int:
        return sum(len(p.samples) for p in self._pings)

    def pings(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[PingMeasurement], bool]] = None,
    ) -> Iterator[PingMeasurement]:
        """Iterate pings with optional filters."""
        for measurement in self._pings:
            if platform is not None and measurement.meta.platform != platform:
                continue
            if protocol is not None and measurement.protocol is not Protocol(protocol):
                continue
            if predicate is not None and not predicate(measurement):
                continue
            yield measurement

    def traceroutes(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[TracerouteMeasurement], bool]] = None,
    ) -> Iterator[TracerouteMeasurement]:
        """Iterate traceroutes with optional filters."""
        for measurement in self._traceroutes:
            if platform is not None and measurement.meta.platform != platform:
                continue
            if protocol is not None and measurement.protocol is not Protocol(protocol):
                continue
            if predicate is not None and not predicate(measurement):
                continue
            yield measurement

    def __repr__(self) -> str:
        return (
            f"MeasurementDataset(pings={len(self._pings)}, "
            f"traceroutes={len(self._traceroutes)})"
        )
