"""Measurement records and the dataset container.

Records intentionally carry only what a real measurement platform would
return (addresses, RTTs) plus the probe/endpoint bookkeeping the paper's
pipeline keeps alongside (probe id, geolocation, serving ASN, target
region).  Everything inferred -- AS paths, last-mile segments, peering
classes -- is derived by :mod:`repro.resolve` and :mod:`repro.analysis`,
exactly as the paper derives it from raw traceroutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.geo.continents import Continent
from repro.lastmile.base import AccessKind
from repro.platforms.probe import Probe, city_key_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.regions import CloudRegion


class Protocol(str, Enum):
    """Measurement protocol."""

    TCP = "tcp"
    ICMP = "icmp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class TraceHop(NamedTuple):
    """One traceroute hop: ``address`` is ``None`` when unresponsive.

    A named tuple rather than a dataclass: campaigns allocate one per
    hop of every trace, and tuple construction is several times cheaper.
    """

    address: Optional[int]
    rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass(frozen=True)
class MeasurementMeta:
    """Bookkeeping shared by ping and traceroute records."""

    probe_id: str
    platform: str
    country: str
    continent: Continent
    access: AccessKind
    isp_asn: int
    provider_code: str
    region_id: str
    region_country: str
    region_continent: Continent
    day: int
    #: Probe location quantized to ~a city (used by the same-<city, ASN>
    #: platform comparison of Fig. 16).
    city_key: Tuple[int, int]


@dataclass(frozen=True)
class PingMeasurement:
    """One ping request: a handful of RTT samples to a region endpoint."""

    meta: MeasurementMeta
    protocol: Protocol
    samples: Tuple[float, ...]

    @property
    def min_rtt_ms(self) -> float:
        return min(self.samples)

    @property
    def median_rtt_ms(self) -> float:
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class TracerouteMeasurement:
    """One traceroute: hop list ending (when successful) at the endpoint."""

    meta: MeasurementMeta
    protocol: Protocol
    source_address: int
    dest_address: int
    hops: Tuple[TraceHop, ...]

    @property
    def reached(self) -> bool:
        last = self.hops[-1] if self.hops else None
        return last is not None and last.address == self.dest_address

    @property
    def end_to_end_rtt_ms(self) -> Optional[float]:
        """RTT of the final (destination) hop, when reached."""
        if not self.reached:
            return None
        return self.hops[-1].rtt_ms


#: Wire codes for protocols inside columnar blocks.
PROTOCOL_BY_CODE: Tuple[Protocol, ...] = (Protocol.TCP, Protocol.ICMP)
PROTOCOL_CODES = {protocol: code for code, protocol in enumerate(PROTOCOL_BY_CODE)}


def build_meta(probe: Probe, region: "CloudRegion", day: int) -> MeasurementMeta:
    """The :class:`MeasurementMeta` for one (probe, region, day) request."""
    return MeasurementMeta(
        probe_id=probe.probe_id,
        platform=probe.platform,
        country=probe.country,
        continent=probe.continent,
        access=probe.access,
        isp_asn=probe.isp_asn,
        provider_code=region.provider_code,
        region_id=region.region_id,
        region_country=region.country,
        region_continent=region.continent,
        day=day,
        city_key=city_key_for(probe),
    )


class PingBlock:
    """One batch of ping requests in columnar form.

    Instead of one frozen dataclass per request, a block holds structured
    NumPy arrays over the whole batch -- interned probe/region codes, a
    day column, protocol codes, and a flat sample array indexed by
    per-request offsets.  :meth:`record` materializes the classic
    :class:`PingMeasurement` view for one row; :meth:`records` does so for
    the whole block and caches the result so repeated analysis passes pay
    the materialization cost only once.
    """

    __slots__ = (
        "probes",
        "regions",
        "probe_codes",
        "region_codes",
        "days",
        "protocol_codes",
        "sample_values",
        "sample_offsets",
        "_records",
    )

    def __init__(
        self,
        probes: Sequence,
        regions: Sequence,
        probe_codes: np.ndarray,
        region_codes: np.ndarray,
        days: np.ndarray,
        protocol_codes: np.ndarray,
        sample_values: np.ndarray,
        sample_offsets: np.ndarray,
    ) -> None:
        self.probes = list(probes)
        self.regions = list(regions)
        self.probe_codes = np.asarray(probe_codes, dtype=np.int32)
        self.region_codes = np.asarray(region_codes, dtype=np.int32)
        self.days = np.asarray(days, dtype=np.int32)
        self.protocol_codes = np.asarray(protocol_codes, dtype=np.uint8)
        self.sample_values = np.asarray(sample_values, dtype=np.float64)
        self.sample_offsets = np.asarray(sample_offsets, dtype=np.int64)
        if len(self.sample_offsets) != len(self.probe_codes) + 1:
            raise ValueError("sample_offsets must have one entry per request + 1")
        self._records: Optional[List[PingMeasurement]] = None

    def __len__(self) -> int:
        return len(self.probe_codes)

    @property
    def sample_count(self) -> int:
        return int(self.sample_offsets[-1]) if len(self.sample_offsets) else 0

    def record(self, index: int) -> PingMeasurement:
        """The record view of one request row."""
        i = int(index)
        lo = int(self.sample_offsets[i])
        hi = int(self.sample_offsets[i + 1])
        probe = self.probes[int(self.probe_codes[i])]
        region = self.regions[int(self.region_codes[i])]
        return PingMeasurement(
            meta=build_meta(probe, region, int(self.days[i])),
            protocol=PROTOCOL_BY_CODE[int(self.protocol_codes[i])],
            samples=tuple(float(v) for v in self.sample_values[lo:hi]),
        )

    def records(self) -> List[PingMeasurement]:
        """All record views, materialized once and cached."""
        if self._records is None:
            self._records = [self.record(i) for i in range(len(self))]
        return self._records

    def __repr__(self) -> str:
        return f"PingBlock(requests={len(self)}, samples={self.sample_count})"


class ColumnarPingStore:
    """Columnar backing for batched pings: a sequence of ping blocks."""

    def __init__(self) -> None:
        self._blocks: List[PingBlock] = []

    def append_block(self, block: PingBlock) -> None:
        self._blocks.append(block)

    def extend(self, other: "ColumnarPingStore") -> None:
        self._blocks.extend(other._blocks)

    @property
    def blocks(self) -> List[PingBlock]:
        return list(self._blocks)

    @property
    def request_count(self) -> int:
        return sum(len(block) for block in self._blocks)

    @property
    def sample_count(self) -> int:
        return sum(block.sample_count for block in self._blocks)

    def iter_records(self) -> Iterator[PingMeasurement]:
        for block in self._blocks:
            yield from block.records()

    def __len__(self) -> int:
        return self.request_count

    def __repr__(self) -> str:
        return (
            f"ColumnarPingStore(blocks={len(self._blocks)}, "
            f"requests={self.request_count})"
        )


class MeasurementDataset:
    """An in-memory dataset of ping and traceroute measurements.

    Pings arrive either as individual records (:meth:`add_ping`) or as
    columnar :class:`PingBlock` batches from the vectorized engine
    (:meth:`add_ping_block`); :meth:`pings` yields the uniform record
    view over both backings, so analysis code never needs to know which
    path produced a measurement.
    """

    def __init__(self) -> None:
        self._pings: List[PingMeasurement] = []
        self._ping_store = ColumnarPingStore()
        self._traceroutes: List[TracerouteMeasurement] = []

    # -- construction -----------------------------------------------------

    def add_ping(self, measurement: PingMeasurement) -> None:
        self._pings.append(measurement)

    def add_ping_block(self, block: PingBlock) -> None:
        self._ping_store.append_block(block)

    def add_traceroute(self, measurement: TracerouteMeasurement) -> None:
        self._traceroutes.append(measurement)

    def extend(self, other: "MeasurementDataset") -> None:
        """Merge another dataset into this one."""
        self._pings.extend(other._pings)
        self._ping_store.extend(other._ping_store)
        self._traceroutes.extend(other._traceroutes)

    # -- access ------------------------------------------------------------

    @property
    def ping_store(self) -> ColumnarPingStore:
        """The columnar backing (batched pings only)."""
        return self._ping_store

    @property
    def ping_count(self) -> int:
        return len(self._pings) + self._ping_store.request_count

    @property
    def traceroute_count(self) -> int:
        return len(self._traceroutes)

    @property
    def ping_sample_count(self) -> int:
        return (
            sum(len(p.samples) for p in self._pings)
            + self._ping_store.sample_count
        )

    def pings(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[PingMeasurement], bool]] = None,
    ) -> Iterator[PingMeasurement]:
        """Iterate pings (scalar records first, then columnar blocks)."""
        for measurement in self._iter_all_pings():
            if platform is not None and measurement.meta.platform != platform:
                continue
            if protocol is not None and measurement.protocol is not Protocol(protocol):
                continue
            if predicate is not None and not predicate(measurement):
                continue
            yield measurement

    def _iter_all_pings(self) -> Iterator[PingMeasurement]:
        yield from self._pings
        yield from self._ping_store.iter_records()

    def traceroutes(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[TracerouteMeasurement], bool]] = None,
    ) -> Iterator[TracerouteMeasurement]:
        """Iterate traceroutes with optional filters."""
        for measurement in self._traceroutes:
            if platform is not None and measurement.meta.platform != platform:
                continue
            if protocol is not None and measurement.protocol is not Protocol(protocol):
                continue
            if predicate is not None and not predicate(measurement):
                continue
            yield measurement

    def __repr__(self) -> str:
        return (
            f"MeasurementDataset(pings={self.ping_count}, "
            f"traceroutes={len(self._traceroutes)})"
        )
