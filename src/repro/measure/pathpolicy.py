"""Pluggable path-selection policies for the path planner.

A policy decides which AS-level route a (serving ISP, provider,
continent) triple resolves to, and carries ``mark_path_down`` /
``mark_path_up`` semantics in the style of path-store based selection
algorithms: paths marked down are excluded from selection, and the
:class:`FailoverPathPolicy` re-converges onto the best alternate route
that avoids the downed path's first inter-AS link.

Policies are *pure* given their :meth:`~PathSelectionPolicy.cache_token`:
the planner keys its path and route-meta caches by the token, so flipping
a path down and back up restores bit-identical planning without any
cache invalidation -- the property that keeps shared planners safe
across campaign units, workers, and resumes.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Optional, Protocol, Set, Tuple

from repro.core.topology import Topology
from repro.geo.continents import Continent
from repro.net.routing import compute_routes_without_edges

#: Identity of a selectable path: (serving ISP ASN, provider network
#: code, source continent) -- the granularity at which routes exist.
PathKey = Tuple[int, str, Continent]


class RouteView(Protocol):
    """A source of (possibly re-converged) routes.

    Structurally matched by
    :class:`repro.netfaults.view.EpochTopologyView`; the measure layer
    depends only on this surface so no import cycle forms.
    """

    @property
    def removed_edges(self) -> FrozenSet[Tuple[int, int]]: ...

    def cache_token(self) -> Hashable: ...

    def as_path(
        self, isp_asn: int, provider_code: str, source_continent: Continent
    ) -> Optional[List[int]]: ...

    def scope_token(
        self, provider_code: str, source_continent: Continent
    ) -> Optional[Hashable]: ...


#: The token of a policy in its pristine state (no epoch view, nothing
#: marked down).  Planners treat this token as "behave exactly like no
#: policy at all" and share cache entries with policy-free planning.
BASELINE_TOKEN: Tuple[Hashable, FrozenSet[PathKey]] = (
    frozenset(),
    frozenset(),
)


class PathSelectionPolicy:
    """Base policy: the topology's converged route, with down marks.

    A path marked down is unavailable -- :meth:`as_path` returns ``None``
    for it until :meth:`mark_path_up`.  Subclasses override
    :meth:`as_path` (and usually :meth:`_view_token`) to add failover.
    """

    name = "static"

    def __init__(self) -> None:
        self._down: Set[PathKey] = set()
        self._token: Tuple[Hashable, FrozenSet[PathKey]] = BASELINE_TOKEN

    # -- down-path bookkeeping --------------------------------------------

    @property
    def down_paths(self) -> FrozenSet[PathKey]:
        return frozenset(self._down)

    def mark_path_down(self, key: PathKey) -> None:
        """Exclude a path from selection until marked up again."""
        self._down.add(key)
        self._refresh_token()

    def mark_path_up(self, key: PathKey) -> None:
        """Restore a previously downed path."""
        self._down.discard(key)
        self._refresh_token()

    def is_down(self, key: PathKey) -> bool:
        return key in self._down

    @staticmethod
    def path_key(
        topology: Topology,
        isp_asn: int,
        provider_code: str,
        source_continent: Continent,
    ) -> PathKey:
        return (
            int(isp_asn),
            topology.network_code(provider_code),
            Continent(source_continent),
        )

    # -- cache identity ----------------------------------------------------

    def _view_token(self) -> Hashable:
        return frozenset()

    def _refresh_token(self) -> None:
        if not self._down and self._view_token() == frozenset():
            self._token = BASELINE_TOKEN
        else:
            self._token = (self._view_token(), frozenset(self._down))

    def cache_token(self) -> Tuple[Hashable, FrozenSet[PathKey]]:
        """Hashable identity of the policy's current selection state.

        Paths planned under equal tokens are interchangeable; the
        planner namespaces its caches by this value.
        """
        return self._token

    def pair_token(
        self,
        topology: Topology,
        provider_code: str,
        source_continent: Continent,
    ) -> Optional[Hashable]:
        """Cache namespace for one (provider, source continent) scope.

        ``None`` means "this scope selects exactly the baseline routes"
        -- the planner may then share cache entries with policy-free
        planning.  The base policy only refines to scope granularity at
        its baseline token; subclasses that know which scopes an event
        actually touched (see :class:`FailoverPathPolicy`) return
        ``None`` for every unaffected scope, so a routing epoch pays
        re-planning costs only where routes really changed.
        """
        del topology, provider_code, source_continent
        if self._token is BASELINE_TOKEN or self._token == BASELINE_TOKEN:
            return None
        return self._token

    # -- selection ---------------------------------------------------------

    def as_path(
        self,
        topology: Topology,
        isp_asn: int,
        provider_code: str,
        source_continent: Continent,
    ) -> Optional[List[int]]:
        """The selected AS path, or ``None`` if no path is available."""
        key = self.path_key(topology, isp_asn, provider_code, source_continent)
        if self.is_down(key):
            return None
        return topology.as_path(isp_asn, provider_code, source_continent)


class FailoverPathPolicy(PathSelectionPolicy):
    """Epoch-aware selection with alternate-path failover.

    Routes resolve through the active epoch view (downed links already
    re-converged); a path additionally marked down fails over to the
    best route that avoids its first inter-AS link -- the classic
    next-best-path selection of a path store -- or ``None`` when no
    alternate survives.
    """

    name = "failover"

    def __init__(self) -> None:
        super().__init__()
        self._view: Optional[RouteView] = None

    @property
    def view(self) -> Optional[RouteView]:
        return self._view

    def set_view(self, view: Optional[RouteView]) -> None:
        """Install the epoch view routes resolve through (``None`` for
        the baseline topology)."""
        self._view = view
        self._refresh_token()

    def _view_token(self) -> Hashable:
        return frozenset() if self._view is None else self._view.cache_token()

    def pair_token(
        self,
        topology: Topology,
        provider_code: str,
        source_continent: Continent,
    ) -> Optional[Hashable]:
        """Scope-grained cache namespace under the active epoch view.

        Down marks apply per path, so any downed path forces the full
        token; otherwise the view reports whether this scope's table
        diverged from baseline, and unaffected scopes plan (and cache)
        exactly like a static world.
        """
        del topology
        if self._down:
            return self._token
        if self._view is None:
            return None
        return self._view.scope_token(provider_code, source_continent)

    def as_path(
        self,
        topology: Topology,
        isp_asn: int,
        provider_code: str,
        source_continent: Continent,
    ) -> Optional[List[int]]:
        if self._view is None:
            base = topology.as_path(isp_asn, provider_code, source_continent)
        else:
            base = self._view.as_path(isp_asn, provider_code, source_continent)
        if base is None or not self._down:
            return base
        key = self.path_key(topology, isp_asn, provider_code, source_continent)
        if not self.is_down(key):
            return base
        if len(base) < 2:
            return None
        removed: Set[Tuple[int, int]] = {(base[0], base[1])}
        if self._view is not None:
            removed.update(self._view.removed_edges)
        network = topology.network_code(provider_code)
        graph = topology.graph_for(network, Continent(source_continent))
        table = compute_routes_without_edges(
            graph,
            topology.peerings[network].cloud_asn,
            topology.policy,
            sorted(removed),
        )
        return table.as_path(isp_asn)
