"""The vectorized batch measurement fast path.

The scalar engine executes one :meth:`~repro.measure.engine.MeasurementEngine.ping`
at a time, drawing 3-5 random numbers per RTT sample from the generator
one call at a time.  At campaign scale that is millions of scalar RNG
round-trips per simulated day.  This module provides the batched
equivalent: a whole request list is planned, grouped by forwarding path,
and *all* jitter / congestion / ICMP-penalty / last-mile noise for every
sample of every request is drawn as a handful of NumPy arrays.

The result is a columnar :class:`~repro.measure.results.PingBlock` --
no per-request :class:`~repro.measure.results.PingMeasurement` objects
are allocated on the hot path; analysis code materializes the record
view lazily via :meth:`MeasurementDataset.pings`.

Determinism: the draw order inside a batch is fixed (core-path arrays
first, then last-mile arrays -- see
:func:`repro.measure.latency.sample_path_rtt_block`), so the same seed
and the same request list always produce an identical block.  The batch
path is *distributionally* equivalent to the scalar path (same noise
processes, different stream consumption); the KS-equivalence tests in
``tests/unit/test_batch.py`` guard that property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.lastmile.base import AccessKind
from repro.measure.latency import (
    congestion_cycle_multiplier,
    icmp_penalty_probability_for,
    sample_hop_rtt_block,
    sample_path_rtt_block,
)
from repro.measure.path import HOME_ROUTER_ADDRESS
from repro.measure.results import (
    PROTOCOL_CODES,
    PingBlock,
    Protocol,
    TraceHop,
    TracerouteMeasurement,
    build_meta,
)
from repro.platforms.probe import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measure.engine import MeasurementEngine


@dataclass(frozen=True)
class PingRequest:
    """One planned ping request: ``samples`` RTT draws probe -> region."""

    probe: Probe
    region: CloudRegion
    protocol: Protocol = Protocol.TCP
    samples: int = 4
    day: int = 0


@dataclass(frozen=True)
class TraceRequest:
    """One planned traceroute request probe -> region."""

    probe: Probe
    region: CloudRegion
    protocol: Protocol = Protocol.ICMP
    day: int = 0


def execute_ping_batch(
    engine: "MeasurementEngine",
    requests: Sequence[PingRequest],
    rng: Optional[np.random.Generator] = None,
) -> PingBlock:
    """Execute a request batch in one vectorized pass.

    Phase 1 walks the request list once in Python: paths are planned (the
    planner caches per pair), per-path noise parameters and per-probe
    last-mile parameters are interned, and probe/region code columns are
    built.  Phase 2 is pure array math over every sample of every
    request.

    ``rng`` overrides the engine's measurement stream -- checkpointed
    campaigns pass a per-unit generator so a unit's draws are independent
    of every other unit's.
    """
    n = len(requests)
    config = engine.config
    if rng is None:
        rng = engine.rng
    if n == 0:
        return PingBlock(
            probes=[],
            regions=[],
            probe_codes=np.empty(0, np.int32),
            region_codes=np.empty(0, np.int32),
            days=np.empty(0, np.int32),
            protocol_codes=np.empty(0, np.uint8),
            sample_values=np.empty(0, np.float64),
            sample_offsets=np.zeros(1, np.int64),
        )

    # Plan every pair in one vectorized pass; the loop below reuses the
    # returned paths directly instead of re-probing the planner cache.
    paths = engine.planner.plan_many(
        [(request.probe, request.region) for request in requests]
    )

    probes: List[Probe] = []
    probe_codes_by_id: Dict[str, int] = {}
    regions: List[CloudRegion] = []
    region_codes_by_key: Dict[Tuple[str, str], int] = {}
    #: Per-probe last-mile parameters, interned by probe code.
    lastmile_params: Dict[int, Tuple[float, float, float, float, float, float]] = {}
    #: Per-(continent,) ICMP penalty probability and per-day congestion
    #: cycle multiplier.
    icmp_probability: Dict[object, float] = {}
    cycle_multiplier: Dict[int, float] = {}
    #: Noise-parameter rows (10 floats), interned per distinct
    #: (probe, region, protocol, day) combination -- a batch of many
    #: requests over few paths pays the parameter lookups only once.
    rows: List[Tuple[float, ...]] = []
    row_by_key: Dict[Tuple[int, int, int, int], int] = {}

    probe_code_list: List[int] = []
    region_code_list: List[int] = []
    day_list: List[int] = []
    proto_list: List[int] = []
    count_list: List[int] = []
    row_code_list: List[int] = []

    # Validation plus dict-based code interning -- inherently sequential
    # (first-seen order defines the codes the RNG draws depend on).
    for i, request in enumerate(requests):  # repro-lint: disable=PERF001
        if request.samples < 1:
            raise ValueError(f"samples must be >= 1, got {request.samples}")
        probe = request.probe
        region = request.region
        probe_code = probe_codes_by_id.get(probe.probe_id)
        if probe_code is None:
            probe_code = len(probes)
            probes.append(probe)
            probe_codes_by_id[probe.probe_id] = probe_code
            lastmile_params[probe_code] = engine.lastmile_model(probe).batch_params()
        region_key = (region.provider_code, region.region_id)
        region_code = region_codes_by_key.get(region_key)
        if region_code is None:
            region_code = len(regions)
            regions.append(region)
            region_codes_by_key[region_key] = region_code

        proto_code = PROTOCOL_CODES[request.protocol]
        day = request.day
        key = (probe_code, region_code, proto_code, day)
        row_code = row_by_key.get(key)
        if row_code is None:
            path = paths[i]
            multiplier = cycle_multiplier.get(day)
            if multiplier is None:
                multiplier = congestion_cycle_multiplier(day, config)
                cycle_multiplier[day] = multiplier
            if request.protocol is Protocol.ICMP:
                penalty = icmp_probability.get(probe.continent)
                if penalty is None:
                    penalty = icmp_penalty_probability_for(
                        probe.continent, config
                    )
                    icmp_probability[probe.continent] = penalty
            else:
                penalty = 0.0
            row_code = len(rows)
            rows.append(
                (
                    path.base_path_rtt_ms,
                    path.jitter_sigma,
                    path.congestion_probability * multiplier,
                    penalty,
                )
                + lastmile_params[probe_code]
            )
            row_by_key[key] = row_code

        probe_code_list.append(probe_code)
        region_code_list.append(region_code)
        day_list.append(day)
        proto_list.append(proto_code)
        count_list.append(request.samples)
        row_code_list.append(row_code)

    probe_codes = np.array(probe_code_list, np.int32)
    region_codes = np.array(region_code_list, np.int32)
    days = np.array(day_list, np.int32)
    protocol_codes = np.array(proto_list, np.uint8)
    counts = np.array(count_list, np.int64)
    per_request = np.array(rows, np.float64)[row_code_list]
    base = per_request[:, 0]
    sigma = per_request[:, 1]
    congestion_p = per_request[:, 2]
    icmp_p = per_request[:, 3]
    air_median = per_request[:, 4]
    air_sigma = per_request[:, 5]
    wire_median = per_request[:, 6]
    wire_sigma = per_request[:, 7]
    bloat_p = per_request[:, 8]
    bloat_x = per_request[:, 9]

    # -- phase 2: one vectorized pass over every sample --------------------
    offsets = np.zeros(n + 1, np.int64)
    np.cumsum(counts, out=offsets[1:])
    sample_of = np.repeat(np.arange(n), counts)

    core = sample_path_rtt_block(
        base[sample_of],
        sigma[sample_of],
        congestion_p[sample_of],
        protocol_codes[sample_of] == PROTOCOL_CODES[Protocol.ICMP],
        icmp_p[sample_of],
        config,
        rng,
    )

    m = sample_of.shape[0]
    z_air = rng.standard_normal(m)
    u_bloat = rng.random(m)
    z_wire = rng.standard_normal(m)
    air_median_s = air_median[sample_of]
    air = np.where(
        air_median_s > 0.0,
        air_median_s * np.exp(air_sigma[sample_of] * z_air),
        0.0,
    )
    air = np.where(u_bloat < bloat_p[sample_of], air * bloat_x[sample_of], air)
    wire_median_s = wire_median[sample_of]
    wire = np.where(
        wire_median_s > 0.0,
        wire_median_s * np.exp(wire_sigma[sample_of] * z_wire),
        0.0,
    )

    return PingBlock(
        probes=probes,
        regions=regions,
        probe_codes=probe_codes,
        region_codes=region_codes,
        days=days,
        protocol_codes=protocol_codes,
        sample_values=np.round(air + wire + core, 3),
        sample_offsets=offsets,
    )


def execute_traceroute_batch(
    engine: "MeasurementEngine",
    requests: Sequence["TraceRequest"],
    rng: Optional[np.random.Generator] = None,
) -> List[TracerouteMeasurement]:
    """Execute a traceroute batch in one vectorized pass.

    Phase 1 walks the request list once: paths are planned (cached), the
    per-trace last-mile is drawn, and home probes behind a NAT router get
    their private first hop.  Phase 2 samples jitter / congestion / ICMP
    penalty / control-plane processing for *every hop of every trace* as
    flat arrays, then slices the results back into per-trace hop lists.

    ``rng`` overrides the engine's measurement stream (see
    :func:`execute_ping_batch`).
    """
    n = len(requests)
    if n == 0:
        return []
    config = engine.config
    if rng is None:
        rng = engine.rng
    path_config = config.path_model
    unresponsive_p = path_config.hop_unresponsive_probability

    # Plan (or fetch) every trace's path first so the planner's own RNG
    # draws stay grouped ahead of the measurement draws below.
    paths = engine.planner.plan_many(
        [(request.probe, request.region) for request in requests]
    )
    accesses: List[AccessKind] = []
    lastmile_rows: List[Tuple[float, ...]] = []
    sigma = np.empty(n)
    congestion_p = np.empty(n)
    icmp_p = np.empty(n)
    icmp_mask = np.empty(n, bool)
    counts = np.empty(n, np.int64)
    icmp_probability: Dict[object, float] = {}
    cycle_multiplier: Dict[int, float] = {}

    # One array draw decides every trace's access switch (a wireless
    # probe occasionally measures over the other medium; see
    # MeasurementEngine.measurement_access).
    switch_p = config.last_mile.access_switch_probability
    access_draws = rng.random(n).tolist()
    # Per-request access resolution branches on probe state; the draws
    # it consumes are already a single array pull above.
    for i, request in enumerate(requests):  # repro-lint: disable=PERF001
        probe = request.probe
        path = paths[i]
        counts[i] = path.hop_count
        access = probe.access
        if access.is_wireless and access_draws[i] < switch_p:
            access = (
                AccessKind.CELLULAR
                if access is AccessKind.HOME_WIFI
                else AccessKind.HOME_WIFI
            )
        accesses.append(access)
        lastmile_rows.append(
            engine.lastmile_model(probe, access).batch_params()
        )

        day = request.day
        multiplier = cycle_multiplier.get(day)
        if multiplier is None:
            multiplier = congestion_cycle_multiplier(day, config)
            cycle_multiplier[day] = multiplier
        is_icmp = request.protocol is Protocol.ICMP
        if is_icmp:
            penalty = icmp_probability.get(probe.continent)
            if penalty is None:
                penalty = icmp_penalty_probability_for(probe.continent, config)
                icmp_probability[probe.continent] = penalty
        else:
            penalty = 0.0
        sigma[i] = path.jitter_sigma
        congestion_p[i] = path.congestion_probability * multiplier
        icmp_p[i] = penalty
        icmp_mask[i] = is_icmp

    # One last-mile draw per trace (all traces at once; draw order is
    # air noise, bufferbloat uniforms, wire noise, router processing).
    lastmile = np.array(lastmile_rows, np.float64)
    z_air = rng.standard_normal(n)
    u_bloat = rng.random(n)
    z_wire = rng.standard_normal(n)
    air_median = lastmile[:, 0]
    air = np.where(
        air_median > 0.0, air_median * np.exp(lastmile[:, 1] * z_air), 0.0
    )
    air = np.where(u_bloat < lastmile[:, 4], air * lastmile[:, 5], air)
    wire_median = lastmile[:, 2]
    wire = np.where(
        wire_median > 0.0, wire_median * np.exp(lastmile[:, 3] * z_wire), 0.0
    )
    lastmile_total = air + wire
    # Hop-1 home-router RTT for probes measuring from behind a NAT: the
    # WiFi air segment plus the router's own processing.
    router_rtts = np.round(air + rng.exponential(0.3, n), 3).tolist()

    # -- phase 2: one vectorized pass over every hop of every trace ---------
    total = int(counts.sum())
    hop_of = np.repeat(np.arange(n), counts)
    base = np.fromiter(
        (rtt for path in paths for rtt in path.hop_base_rtts),
        np.float64,
        count=total,
    )
    hop_core = sample_hop_rtt_block(
        base,
        sigma[hop_of],
        congestion_p[hop_of],
        icmp_mask[hop_of],
        icmp_p[hop_of],
        config,
        rng,
    )
    rtts = np.round(lastmile_total[hop_of] + hop_core, 3).tolist()
    unresponsive_draws = rng.random(total).tolist()

    results: List[TracerouteMeasurement] = []
    position = 0
    # Assembly of ragged per-trace hop lists from the flat column draws
    # above -- the numeric work is already vectorized, this loop only
    # slices it back into TracerouteMeasurement objects.
    for i, (request, path, access) in enumerate(  # repro-lint: disable=PERF001
        zip(requests, paths, accesses)
    ):
        probe = request.probe
        hops: List[TraceHop] = []
        behind_router = access is AccessKind.HOME_WIFI and (
            probe.access is not AccessKind.HOME_WIFI
            or probe.device_address != probe.public_address
        )
        if behind_router:
            # Hop 1: the home router, reached over the WiFi air segment.
            hops.append(
                TraceHop(address=HOME_ROUTER_ADDRESS, rtt_ms=router_rtts[i])
            )
        dest_address = path.dest_address
        for address in path.hop_addresses:
            if (
                address != dest_address
                and unresponsive_draws[position] < unresponsive_p
            ):
                hops.append(TraceHop(address=None, rtt_ms=None))
            else:
                hops.append(TraceHop(address=address, rtt_ms=rtts[position]))
            position += 1
        results.append(
            TracerouteMeasurement(
                meta=build_meta(request.probe, request.region, request.day),
                protocol=request.protocol,
                source_address=request.probe.device_address,
                dest_address=dest_address,
                hops=tuple(hops),
            )
        )
    return results
