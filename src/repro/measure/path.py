"""Forwarding-path planning.

For a (probe, region) pair the planner resolves the AS-level route from
the probe's serving ISP to the provider's network (scoped policy
routing), classifies the interconnect, expands the route into router-level
hops with addresses and geographic positions, and precomputes the base
(noise-free) RTT profile that the ping and traceroute engines sample
around.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.cloud.wan import PrivateWAN
from repro.core.config import PathModelConfig, SimulationConfig
from repro.core.topology import Topology
from repro.core.units import one_way_fiber_ms
from repro.geo.coords import GeoPoint, interpolate
from repro.net.asn import AS, ASKind
from repro.net.ip import parse_ip
from repro.platforms.probe import Probe

#: Home-router LAN-side address seen as the first traceroute hop of a
#: home probe.
HOME_ROUTER_ADDRESS = parse_ip("192.168.1.1")


class InterconnectKind(str, Enum):
    """Ground-truth interconnect class of a forwarding path.

    Matches the categories of the paper's section 6.1: direct peering
    (optionally over a public IXP fabric), private peering via a single
    carrier, and the public Internet (2+ intermediate ASes).
    """

    DIRECT = "direct"
    DIRECT_IXP = "direct_ixp"
    PRIVATE = "private"
    PUBLIC = "public"

    @property
    def is_direct(self) -> bool:
        return self in (InterconnectKind.DIRECT, InterconnectKind.DIRECT_IXP)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PlannedHop:
    """A router (or IXP port) hop with its noise-free RTT from the ISP edge."""

    address: int
    asn: Optional[int]
    owner_kind: str
    position: GeoPoint
    base_rtt_ms: float
    ixp_id: Optional[int] = None


@dataclass(frozen=True)
class PlannedPath:
    """The planned forwarding path between a probe and a region endpoint."""

    probe_id: str
    region_id: str
    provider_code: str
    as_path: Tuple[int, ...]
    interconnect: InterconnectKind
    distance_km: float
    stretch: float
    jitter_sigma: float
    congestion_probability: float
    #: Noise-free RTT from the ISP edge to the endpoint (no last mile).
    base_path_rtt_ms: float
    #: Hops beyond the last mile, ISP edge first, endpoint last.
    hops: Tuple[PlannedHop, ...]
    dest_address: int

    @property
    def intermediate_as_count(self) -> int:
        return max(0, len(self.as_path) - 2)


def classify_interconnect(
    as_path: List[int], topology: Topology, provider_code: str
) -> InterconnectKind:
    """Ground-truth interconnect class of an AS path (ISP first)."""
    intermediates = len(as_path) - 2
    if intermediates < 0:
        raise ValueError("AS path must contain at least the ISP and the cloud")
    if intermediates == 0:
        peering = topology.peering_for(provider_code)
        if peering.direct_isps.get(as_path[0]) is not None:
            return InterconnectKind.DIRECT_IXP
        return InterconnectKind.DIRECT
    if intermediates == 1:
        return InterconnectKind.PRIVATE
    return InterconnectKind.PUBLIC


def effective_stretch(
    interconnect: InterconnectKind,
    intermediates: int,
    wan: PrivateWAN,
    source_continent,
    config: SimulationConfig,
) -> float:
    """Fibre path stretch for an interconnect class.

    Private-WAN engineering only applies when the provider's backbone
    covers the probe's continent and the advantage is enabled (ablation
    knob ``private_wan_advantage``).
    """
    path_config = config.path_model
    on_net = config.private_wan_advantage and wan.covers(source_continent)
    if interconnect.is_direct and on_net:
        return path_config.private_wan_stretch
    if interconnect is InterconnectKind.PRIVATE and on_net:
        return path_config.private_peering_stretch
    extra = max(0, intermediates - 1)
    return path_config.public_stretch + extra * path_config.public_stretch_per_extra_as


def effective_jitter_sigma(
    interconnect: InterconnectKind,
    distance_km: float,
    wan: PrivateWAN,
    source_continent,
    config: SimulationConfig,
) -> float:
    """Multiplicative RTT jitter sigma for an interconnect class.

    Public paths accumulate queueing variance with distance; private WANs
    keep it flat.  This asymmetry reproduces the paper's Fig. 13b (direct
    peering shrinks latency variation over long Asian paths) without
    materially moving the EU medians of Fig. 12b.
    """
    path_config = config.path_model
    on_net = config.private_wan_advantage and wan.covers(source_continent)
    if interconnect.is_direct and on_net:
        return path_config.private_jitter_sigma
    if interconnect is InterconnectKind.PRIVATE and on_net:
        return 0.5 * (
            path_config.private_jitter_sigma + path_config.public_jitter_sigma
        )
    return (
        path_config.public_jitter_sigma
        + (distance_km / 1000.0) * path_config.public_jitter_sigma_per_1000km
    )


#: Geographic share of the end-to-end path carried by the cloud AS, by
#: interconnect class (ingress locality: direct paths enter the WAN near
#: the user; public paths only near the datacenter).
_CLOUD_GEO_SHARE = {
    InterconnectKind.DIRECT: 0.70,
    InterconnectKind.DIRECT_IXP: 0.70,
    InterconnectKind.PRIVATE: 0.50,
    InterconnectKind.PUBLIC: 0.15,
}


class PathPlanner:
    """Builds and caches :class:`PlannedPath` objects."""

    def __init__(
        self,
        topology: Topology,
        wans,
        region_addresses,
        config: SimulationConfig,
        rng: np.random.Generator,
        countries=None,
    ):
        self._topology = topology
        self._wans = wans
        self._region_addresses = region_addresses
        self._config = config
        self._rng = rng
        self._countries = countries
        self._cache: dict = {}

    def plan(self, probe: Probe, region: CloudRegion) -> PlannedPath:
        """The planned path for a (probe, region) pair, cached."""
        key = (probe.probe_id, region.provider_code, region.region_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        path = self._build(probe, region)
        self._cache[key] = path
        return path

    def _build(self, probe: Probe, region: CloudRegion) -> PlannedPath:
        topology = self._topology
        provider_code = region.provider_code
        network = topology.network_code(provider_code)
        as_path = topology.as_path(probe.isp_asn, provider_code, probe.continent)
        if as_path is None:
            raise RuntimeError(
                f"no route from AS{probe.isp_asn} to provider {provider_code}"
            )
        interconnect = classify_interconnect(as_path, topology, provider_code)
        wan = self._wans[network]
        distance = probe.location.distance_km(region.location)
        stretch = effective_stretch(
            interconnect, len(as_path) - 2, wan, probe.continent, self._config
        )
        stretch = self._adjust_stretch_for_geography(stretch, probe, region, wan)
        sigma = effective_jitter_sigma(
            interconnect, distance, wan, probe.continent, self._config
        )
        hops, base_rtt = self._expand_hops(
            probe, region, as_path, interconnect, distance, stretch
        )
        path_config = self._config.path_model
        congestion = (
            path_config.congestion_probability
            if interconnect is InterconnectKind.PUBLIC
            else path_config.congestion_probability * 0.25
        )
        return PlannedPath(
            probe_id=probe.probe_id,
            region_id=region.region_id,
            provider_code=provider_code,
            as_path=tuple(as_path),
            interconnect=interconnect,
            distance_km=distance,
            stretch=stretch,
            jitter_sigma=sigma,
            congestion_probability=congestion,
            base_path_rtt_ms=base_rtt,
            hops=tuple(hops),
            dest_address=self._region_addresses[
                (region.provider_code, region.region_id)
            ],
        )

    def _adjust_stretch_for_geography(
        self, stretch: float, probe: Probe, region: CloudRegion, wan
    ) -> float:
        """Geography corrections to the interconnect-class stretch.

        Submarine-constrained routes (island endpoint or cross-continent)
        cap the private-WAN advantage: everyone rides the same cables.
        Cross-country paths inside under-provisioned continents pick up a
        terrestrial backhaul penalty (intra-African detours via Europe).
        """
        path_config = self._config.path_model
        src_island = dst_island = False
        if self._countries is not None:
            src = self._countries.find(probe.country)
            dst = self._countries.find(region.country)
            src_island = src.island if src else False
            dst_island = dst.island if dst else False
        submarine = (
            src_island
            or dst_island
            or probe.continent is not region.continent
        )
        if submarine:
            stretch = max(stretch, path_config.submarine_private_stretch_floor)
        if (
            probe.continent is region.continent
            and probe.country != region.country
        ):
            stretch *= path_config.continent_backhaul_stretch.get(
                probe.continent.value, 1.0
            )
        return stretch

    def _expand_hops(
        self,
        probe: Probe,
        region: CloudRegion,
        as_path: List[int],
        interconnect: InterconnectKind,
        distance: float,
        stretch: float,
    ) -> Tuple[List[PlannedHop], float]:
        registry = self._topology.registry
        path_config = self._config.path_model
        rng = self._rng
        intermediates = max(0, len(as_path) - 2)
        # Fixed (distance-independent) overheads: the serving ISP's
        # aggregation core, plus detours at every inter-domain handoff.
        fixed_rtt = (
            path_config.isp_core_rtt_ms
            + intermediates * path_config.per_intermediate_as_rtt_ms
        )

        # Hop counts per AS.  The cloud AS carries a geography share that
        # depends on ingress locality; the remainder splits evenly.
        cloud_share = _CLOUD_GEO_SHARE[interconnect]
        systems = [registry.get(asn) for asn in as_path]
        counts: List[int] = []
        for autonomous_system in systems:
            if autonomous_system.kind is ASKind.CLOUD:
                share = cloud_share
            else:
                share = (1.0 - cloud_share) / max(1, len(systems) - 1)
            counts.append(_hop_count(autonomous_system, share, rng))

        total_hops = sum(counts)
        hops: List[PlannedHop] = []
        placed = 0
        for autonomous_system, count in zip(systems, counts):
            prefix = autonomous_system.prefixes[0]
            for _ in range(count):
                placed += 1
                fraction = placed / (total_hops + 1)
                position = interpolate(probe.location, region.location, fraction)
                base_rtt = (
                    2.0 * one_way_fiber_ms(distance * fraction, stretch)
                    + placed * path_config.hop_processing_ms
                    + path_config.min_path_rtt_ms
                    + fixed_rtt * fraction
                )
                address = prefix.address_at(
                    int(rng.integers(16, prefix.size - 16))
                )
                hops.append(
                    PlannedHop(
                        address=address,
                        asn=autonomous_system.asn,
                        owner_kind=str(autonomous_system.kind),
                        position=position,
                        base_rtt_ms=base_rtt,
                    )
                )
        # IXP port hop between the ISP hops and the cloud hops for direct
        # sessions over a public exchange fabric.
        if interconnect is InterconnectKind.DIRECT_IXP:
            peering = self._topology.peering_for(region.provider_code)
            ixp_id = peering.direct_isps.get(as_path[0])
            if ixp_id is not None:
                ixp = self._topology.ixps.get(ixp_id)
                insert_at = counts[0]
                neighbor = hops[min(insert_at, len(hops) - 1)]
                hops.insert(
                    insert_at,
                    PlannedHop(
                        address=ixp.lan_address_for(peering.cloud_asn),
                        asn=None,
                        owner_kind="ixp",
                        position=ixp.location,
                        base_rtt_ms=neighbor.base_rtt_ms,
                        ixp_id=ixp_id,
                    ),
                )

        # Destination endpoint hop (the VM).
        dest_address = self._region_addresses[
            (region.provider_code, region.region_id)
        ]
        base_path_rtt = (
            2.0 * one_way_fiber_ms(distance, stretch)
            + (total_hops + 1) * path_config.hop_processing_ms
            + path_config.min_path_rtt_ms
            + fixed_rtt
        )
        cloud_asn = as_path[-1]
        hops.append(
            PlannedHop(
                address=dest_address,
                asn=cloud_asn,
                owner_kind=str(ASKind.CLOUD),
                position=region.location,
                base_rtt_ms=base_path_rtt,
            )
        )
        return hops, base_path_rtt


def _hop_count(
    autonomous_system: AS, geographic_share: float, rng: np.random.Generator
) -> int:
    """Routers exposed by one AS on a path (more when it carries more
    of the geographic distance).

    Cloud WANs that ingress near the user expose their internal backbone
    routers along most of the path, which is what drives the >60%
    pervasiveness of hypergiants in the paper's Fig. 11.
    """
    share = max(0.0, min(1.0, geographic_share))
    if autonomous_system.kind is ASKind.CLOUD:
        base = int(rng.integers(2, 5))
        extra = int(round(5 * share))
    elif autonomous_system.kind is ASKind.ACCESS:
        base = int(rng.integers(2, 4))
        extra = int(round(3 * share))
    else:
        base = int(rng.integers(2, 5))
        extra = int(round(3 * share))
    return base + extra
