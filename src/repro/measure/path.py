"""Forwarding-path planning.

For a (probe, region) pair the planner resolves the AS-level route from
the probe's serving ISP to the provider's network (scoped policy
routing), classifies the interconnect, expands the route into router-level
hops with addresses and geographic positions, and precomputes the base
(noise-free) RTT profile that the ping and traceroute engines sample
around.
"""

from __future__ import annotations

from enum import Enum
from typing import (
    Dict,
    Hashable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.cloud.wan import PrivateWAN
from repro.core.config import SimulationConfig
from repro.core.rng import name_digest
from repro.core.topology import Topology
from repro.core.units import one_way_fiber_ms
from repro.geo.continents import Continent
from repro.geo.coords import EARTH_RADIUS_KM, GeoPoint
from repro.geo.countries import CountryRegistry
from repro.measure.pathpolicy import BASELINE_TOKEN, PathSelectionPolicy
from repro.net.asn import AS, ASKind
from repro.net.ip import parse_ip
from repro.platforms.probe import Probe

#: Home-router LAN-side address seen as the first traceroute hop of a
#: home probe.
HOME_ROUTER_ADDRESS = parse_ip("192.168.1.1")

#: Columnar hop storage: parallel per-hop tuples of (addresses, ASNs,
#: owner kinds, latitudes, longitudes, base RTTs, IXP ids) -- the same
#: field order as :class:`PlannedHop`.
HopColumns = Tuple[
    Tuple[int, ...],
    Tuple[Optional[int], ...],
    Tuple[str, ...],
    Tuple[float, ...],
    Tuple[float, ...],
    Tuple[float, ...],
    Tuple[Optional[int], ...],
]


class InterconnectKind(str, Enum):
    """Ground-truth interconnect class of a forwarding path.

    Matches the categories of the paper's section 6.1: direct peering
    (optionally over a public IXP fabric), private peering via a single
    carrier, and the public Internet (2+ intermediate ASes).
    """

    DIRECT = "direct"
    DIRECT_IXP = "direct_ixp"
    PRIVATE = "private"
    PUBLIC = "public"

    @property
    def is_direct(self) -> bool:
        return self in (InterconnectKind.DIRECT, InterconnectKind.DIRECT_IXP)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class PlannedHop(NamedTuple):
    """A router (or IXP port) hop with its noise-free RTT from the ISP edge.

    A named tuple of atomic fields rather than a dataclass: the planner
    allocates one per router of every planned path, tuple construction
    is several times cheaper, and tuples whose items are all atomic are
    untracked by the garbage collector -- keeping the (large, permanent)
    planner cache out of every gen-2 collection.
    """

    address: int
    asn: Optional[int]
    owner_kind: str
    lat: float
    lon: float
    base_rtt_ms: float
    ixp_id: Optional[int] = None

    @property
    def position(self) -> GeoPoint:
        """The hop's location as a :class:`GeoPoint` (built on demand)."""
        return GeoPoint(self.lat, self.lon)


class PlannedPath:
    """The planned forwarding path between a probe and a region endpoint.

    Hops are stored columnar -- parallel tuples of atomic values rather
    than one object per hop.  Exact tuples of atomics are untracked by
    the garbage collector, which keeps the planner's (large, permanent)
    path cache out of every gen-2 collection; the hot batch engines read
    the columns directly and :attr:`hops` materializes the classic
    :class:`PlannedHop` view on demand for analysis code.
    """

    __slots__ = (
        "probe_id",
        "region_id",
        "provider_code",
        "as_path",
        "interconnect",
        "distance_km",
        "stretch",
        "jitter_sigma",
        "congestion_probability",
        "base_path_rtt_ms",
        "hop_addresses",
        "hop_asns",
        "hop_kinds",
        "hop_lats",
        "hop_lons",
        "hop_base_rtts",
        "hop_ixp_ids",
        "dest_address",
    )

    def __init__(
        self,
        *,
        probe_id: str,
        region_id: str,
        provider_code: str,
        as_path: Tuple[int, ...],
        interconnect: InterconnectKind,
        distance_km: float,
        stretch: float,
        jitter_sigma: float,
        congestion_probability: float,
        base_path_rtt_ms: float,
        dest_address: int,
        hops: Sequence[PlannedHop] = (),
        hop_columns: Optional[HopColumns] = None,
    ) -> None:
        self.probe_id = probe_id
        self.region_id = region_id
        self.provider_code = provider_code
        self.as_path = as_path
        self.interconnect = interconnect
        self.distance_km = distance_km
        self.stretch = stretch
        self.jitter_sigma = jitter_sigma
        self.congestion_probability = congestion_probability
        #: Noise-free RTT from the ISP edge to the endpoint (no last mile).
        self.base_path_rtt_ms = base_path_rtt_ms
        if hop_columns is None:
            hop_columns = tuple(zip(*hops)) if hops else ((),) * 7
        self._set_columns(hop_columns)
        self.dest_address = dest_address

    def _set_columns(self, columns: HopColumns) -> None:
        #: Columnar hop storage, ISP edge first, endpoint last.
        self.hop_addresses = columns[0]
        self.hop_asns = columns[1]
        self.hop_kinds = columns[2]
        self.hop_lats = columns[3]
        self.hop_lons = columns[4]
        self.hop_base_rtts = columns[5]
        self.hop_ixp_ids = columns[6]

    @property
    def hops(self) -> Tuple[PlannedHop, ...]:
        """Hops beyond the last mile as :class:`PlannedHop` views."""
        return tuple(
            PlannedHop(*row)
            for row in zip(
                self.hop_addresses,
                self.hop_asns,
                self.hop_kinds,
                self.hop_lats,
                self.hop_lons,
                self.hop_base_rtts,
                self.hop_ixp_ids,
            )
        )

    @property
    def hop_count(self) -> int:
        return len(self.hop_addresses)

    @property
    def intermediate_as_count(self) -> int:
        return max(0, len(self.as_path) - 2)

    def __repr__(self) -> str:
        return (
            f"PlannedPath(probe_id={self.probe_id!r}, "
            f"region_id={self.region_id!r}, hops={self.hop_count})"
        )


def classify_interconnect(
    as_path: Sequence[int], topology: Topology, provider_code: str
) -> InterconnectKind:
    """Ground-truth interconnect class of an AS path (ISP first)."""
    intermediates = len(as_path) - 2
    if intermediates < 0:
        raise ValueError("AS path must contain at least the ISP and the cloud")
    if intermediates == 0:
        peering = topology.peering_for(provider_code)
        if peering.direct_isps.get(as_path[0]) is not None:
            return InterconnectKind.DIRECT_IXP
        return InterconnectKind.DIRECT
    if intermediates == 1:
        return InterconnectKind.PRIVATE
    return InterconnectKind.PUBLIC


def effective_stretch(
    interconnect: InterconnectKind,
    intermediates: int,
    wan: PrivateWAN,
    source_continent: Continent,
    config: SimulationConfig,
) -> float:
    """Fibre path stretch for an interconnect class.

    Private-WAN engineering only applies when the provider's backbone
    covers the probe's continent and the advantage is enabled (ablation
    knob ``private_wan_advantage``).
    """
    path_config = config.path_model
    on_net = config.private_wan_advantage and wan.covers(source_continent)
    if interconnect.is_direct and on_net:
        return path_config.private_wan_stretch
    if interconnect is InterconnectKind.PRIVATE and on_net:
        return path_config.private_peering_stretch
    extra = max(0, intermediates - 1)
    return path_config.public_stretch + extra * path_config.public_stretch_per_extra_as


def effective_jitter_sigma(
    interconnect: InterconnectKind,
    distance_km: float,
    wan: PrivateWAN,
    source_continent: Continent,
    config: SimulationConfig,
) -> float:
    """Multiplicative RTT jitter sigma for an interconnect class.

    Public paths accumulate queueing variance with distance; private WANs
    keep it flat.  This asymmetry reproduces the paper's Fig. 13b (direct
    peering shrinks latency variation over long Asian paths) without
    materially moving the EU medians of Fig. 12b.
    """
    path_config = config.path_model
    on_net = config.private_wan_advantage and wan.covers(source_continent)
    if interconnect.is_direct and on_net:
        return path_config.private_jitter_sigma
    if interconnect is InterconnectKind.PRIVATE and on_net:
        return 0.5 * (
            path_config.private_jitter_sigma + path_config.public_jitter_sigma
        )
    return (
        path_config.public_jitter_sigma
        + (distance_km / 1000.0) * path_config.public_jitter_sigma_per_1000km
    )


#: Geographic share of the end-to-end path carried by the cloud AS, by
#: interconnect class (ingress locality: direct paths enter the WAN near
#: the user; public paths only near the datacenter).
_CLOUD_GEO_SHARE = {
    InterconnectKind.DIRECT: 0.70,
    InterconnectKind.DIRECT_IXP: 0.70,
    InterconnectKind.PRIVATE: 0.50,
    InterconnectKind.PUBLIC: 0.15,
}

#: Pre-rendered AS-kind labels so hop assembly never re-stringifies enums.
_KIND_LABELS = {kind: str(kind) for kind in ASKind}


class _PathPrep(NamedTuple):
    """Everything about a path that is decided before hop placement.

    The scalar prefix of path building (routing, interconnect class,
    stretch/jitter, per-AS hop counts) stays per-pair Python; hop
    placement itself (fractions, spherical interpolation, base RTTs,
    addresses) runs as one array pass over every prep in a batch.
    """

    probe: Probe
    region: CloudRegion
    as_path: Sequence[int]
    interconnect: InterconnectKind
    distance: float
    stretch: float
    sigma: float
    systems: Sequence[AS]
    counts: List[int]
    fixed_rtt: float
    total_hops: int
    two_way_fiber: float
    dest_address: int
    #: Generator serving this pair's draws (the shared planner stream in
    #: sequential mode, a per-pair derived generator in pair mode).
    rng: np.random.Generator


class _RouteMeta(NamedTuple):
    """The probe-location-independent prefix of path preparation.

    Every field is a pure function of (serving ISP, probe country and
    continent, region) -- many probes share one entry, so the planner
    computes routing, interconnect classification, stretch geography and
    the fixed RTT overheads once per (ISP, country, region) instead of
    once per (probe, region) pair.  ``sigma_base``/``sigma_per_1000km``
    linearize :func:`effective_jitter_sigma` so the only per-probe terms
    left are the great-circle distance and the RNG draws.
    """

    as_path: Tuple[int, ...]
    interconnect: InterconnectKind
    stretch: float
    sigma_base: float
    sigma_per_1000km: float
    systems: Tuple[AS, ...]
    cloud_share: float
    fixed_rtt: float
    dest_address: int


class PathPlanner:
    """Builds and caches :class:`PlannedPath` objects.

    Two randomness disciplines are supported:

    - *sequential* (``rng=...``): all paths draw from one shared stream
      in planning order -- the historical mode, cheapest, but the result
      of a plan depends on every plan that preceded it;
    - *pair-deterministic* (``pair_entropy=...``): every (probe, region)
      pair draws from its own generator derived from the entropy and a
      stable digest of the pair key, so a planned path is a pure function
      of (entropy, probe, region) regardless of planning order.  This is
      what makes checkpointed campaigns resumable: a resumed process
      replans only the remaining units yet produces bit-identical paths.
    """

    def __init__(
        self,
        topology: Topology,
        wans: Dict[str, PrivateWAN],
        region_addresses: Dict[Tuple[str, str], int],
        config: SimulationConfig,
        rng: Optional[np.random.Generator] = None,
        countries: Optional[CountryRegistry] = None,
        pair_entropy: Optional[int] = None,
        legacy_prep: bool = False,
        route_policy: Optional[PathSelectionPolicy] = None,
    ) -> None:
        if rng is None and pair_entropy is None:
            raise ValueError("PathPlanner needs either rng or pair_entropy")
        if legacy_prep and route_policy is not None:
            raise ValueError(
                "legacy_prep is a parity reference and cannot carry a "
                "route policy"
            )
        self._topology = topology
        self._wans = wans
        self._region_addresses = region_addresses
        self._config = config
        self._rng = rng
        self._pair_entropy = pair_entropy
        self._countries = countries
        #: ``True`` pins preparation to the uncached per-pair reference
        #: path (:meth:`_prepare_legacy`) -- the pre-optimization
        #: baseline the full-scale benchmark and parity tests compare
        #: against.  Both modes produce bit-identical preps.
        self._legacy_prep = legacy_prep
        #: Pluggable path selection.  ``None`` (and a policy sitting at
        #: its baseline token) plans exactly like the historical planner
        #: and shares the same cache entries; any other policy state
        #: namespaces the caches by the policy's token, so no entry is
        #: ever invalidated -- planned paths are pure functions of
        #: (pair, token).
        self._route_policy = route_policy
        self._cache: Dict[Tuple[Hashable, ...], PlannedPath] = {}
        self._meta_cache: Dict[Tuple[Hashable, ...], _RouteMeta] = {}
        #: Per-scope token memo for the *current* policy state: pair
        #: tokens are pure given (policy token, scope), so the memo is
        #: dropped whenever the policy's cache token changes (epoch view
        #: installed, path marked down/up) and hit on every plan
        #: otherwise.
        self._pair_token_state: Optional[Hashable] = None
        self._pair_token_cache: Dict[
            Tuple[str, Continent], Optional[Hashable]
        ] = {}
        #: Rolling-hash caches for the pair digest: ``name_digest`` is a
        #: linear fold, so the digest of ``"path.<probe>.<prov>.<region>"``
        #: combines a per-probe prefix digest with a per-region suffix in
        #: O(1) instead of re-folding the whole name per pair.
        self._probe_digest: Dict[str, int] = {}
        self._region_digest: Dict[Tuple[str, str], Tuple[int, int]] = {}

    def _pair_generator(
        self, probe: Probe, region: CloudRegion
    ) -> np.random.Generator:
        """The derived generator owning one pair's planning draws.

        Produces the generator seeded from
        ``name_digest(f"path.{probe_id}.{provider}.{region}")`` exactly,
        but assembles the digest from cached prefix/suffix folds.
        """
        prefix = self._probe_digest.get(probe.probe_id)
        if prefix is None:
            prefix = name_digest(f"path.{probe.probe_id}.")
            self._probe_digest[probe.probe_id] = prefix
        region_key = (region.provider_code, region.region_id)
        suffix = self._region_digest.get(region_key)
        if suffix is None:
            tail = f"{region.provider_code}.{region.region_id}"
            suffix = (name_digest(tail), pow(1_000_003, len(tail), 2**63))
            self._region_digest[region_key] = suffix
        digest = (prefix * suffix[1] + suffix[0]) % 2**63
        seq = np.random.SeedSequence(
            entropy=self._pair_entropy, spawn_key=(digest,)
        )
        return np.random.default_rng(seq)

    # -- path selection policy ---------------------------------------------

    @property
    def route_policy(self) -> Optional[PathSelectionPolicy]:
        return self._route_policy

    def _policy_token(self) -> Optional[Hashable]:
        """The cache namespace of the current policy state.

        ``None`` -- no policy, or a policy at its baseline token -- means
        "plan exactly like the policy-free planner" and uses the bare
        historical cache keys, so static runs and event-free epochs share
        one cache population.
        """
        if self._route_policy is None:
            return None
        token = self._route_policy.cache_token()
        if token is BASELINE_TOKEN or token == BASELINE_TOKEN:
            return None
        return token

    def _pair_token(
        self, provider_code: str, source_continent: Continent
    ) -> Optional[Hashable]:
        """The cache namespace of one (provider, source continent) scope.

        Finer-grained than :meth:`_policy_token`: a policy that knows an
        epoch's events never touched this scope's routes (see
        :meth:`~repro.measure.pathpolicy.PathSelectionPolicy.pair_token`)
        returns ``None``, and the pair plans against -- and shares cache
        entries with -- the bare policy-free keys.  Cached entries are
        interchangeable because a ``None`` token certifies the scope's
        routing table *is* the baseline table.
        """
        policy = self._route_policy
        if policy is None:
            return None
        state = policy.cache_token()
        if state is not self._pair_token_state:
            if state != self._pair_token_state:
                self._pair_token_cache = {}
            self._pair_token_state = state
        scope = (provider_code, source_continent)
        try:
            return self._pair_token_cache[scope]
        except KeyError:
            token = policy.pair_token(
                self._topology, provider_code, source_continent
            )
            self._pair_token_cache[scope] = token
            return token

    def _ensure_policy(self) -> PathSelectionPolicy:
        if self._route_policy is None:
            if self._legacy_prep:
                raise RuntimeError(
                    "legacy_prep planners cannot install a route policy"
                )
            self._route_policy = PathSelectionPolicy()
        return self._route_policy

    def mark_path_down(
        self, isp_asn: int, provider_code: str, source_continent: Continent
    ) -> None:
        """Mark one (ISP, provider network, continent) path down.

        Installs the default policy on first use; subsequent plans for
        the affected triple select the policy's alternate (or fail) and
        every other plan is untouched -- caches are namespaced by the
        policy token, never invalidated.
        """
        policy = self._ensure_policy()
        policy.mark_path_down(
            policy.path_key(
                self._topology, isp_asn, provider_code, source_continent
            )
        )

    def mark_path_up(
        self, isp_asn: int, provider_code: str, source_continent: Continent
    ) -> None:
        """Restore a path marked down via :meth:`mark_path_down`."""
        policy = self._ensure_policy()
        policy.mark_path_up(
            policy.path_key(
                self._topology, isp_asn, provider_code, source_continent
            )
        )

    def plan(self, probe: Probe, region: CloudRegion) -> PlannedPath:
        """The planned path for a (probe, region) pair, cached."""
        token = self._pair_token(region.provider_code, probe.continent)
        key: Tuple[Hashable, ...] = (
            probe.probe_id,
            region.provider_code,
            region.region_id,
        )
        if token is not None:
            key = key + (token,)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        path = self._build(probe, region, token)
        self._cache[key] = path
        return path

    def plan_many(
        self, pairs: Sequence[Tuple[Probe, CloudRegion]]
    ) -> List[PlannedPath]:
        """Planned paths for many (probe, region) pairs at once.

        Cache hits return directly; every miss in the batch shares one
        vectorized hop-placement pass (fractions, spherical interpolation,
        base RTTs, and hop addresses are single array expressions across
        all new paths), so a cold campaign day pays array setup once
        rather than per pair.
        """
        results: List[Optional[PlannedPath]] = [None] * len(pairs)
        keys: List[Optional[tuple]] = [None] * len(pairs)
        tokens: List[Optional[Hashable]] = [None] * len(pairs)
        misses: List[int] = []
        cache = self._cache
        policy = self._route_policy
        scope_tokens: Dict[Tuple[str, Continent], Optional[Hashable]] = {}
        # Cache probing is per-pair by design: dict hits cost ~100ns and
        # keep the RNG draw order identical to the scalar plan() path.
        for i, (probe, region) in enumerate(pairs):  # repro-lint: disable=PERF001
            key: Tuple[Hashable, ...] = (
                probe.probe_id,
                region.provider_code,
                region.region_id,
            )
            if policy is not None:
                scope = (region.provider_code, probe.continent)
                try:
                    token = scope_tokens[scope]
                except KeyError:
                    token = self._pair_token(*scope)
                    scope_tokens[scope] = token
                if token is not None:
                    key = key + (token,)
                    tokens[i] = token
            cached = cache.get(key)
            if cached is not None:
                results[i] = cached
            else:
                keys[i] = key
                misses.append(i)
        if not misses:
            return results
        # Dedup repeats inside the batch, preserving first-seen order so
        # the RNG draw sequence depends only on the request sequence.
        first_seen: dict = {}
        unique: List[int] = []
        for i in misses:
            if keys[i] not in first_seen:
                first_seen[keys[i]] = len(unique)
                unique.append(i)
        preps = [
            self._prepare(pairs[i][0], pairs[i][1], tokens[i])
            for i in unique
        ]
        placed = self._place_hops(preps)
        lat_list, lon_list, rtt_list, addr_list, offsets = placed
        built: List[PlannedPath] = []
        # Final assembly slices the vectorized hop columns back into
        # ragged per-path tuples; the arithmetic already ran above.
        for j, prep in enumerate(preps):  # repro-lint: disable=PERF001
            columns, base_rtt = self._assemble(
                prep, lat_list, lon_list, rtt_list, addr_list, offsets[j]
            )
            path = self._finalize(prep, columns, base_rtt)
            cache[keys[unique[j]]] = path
            built.append(path)
        for i in misses:
            results[i] = built[first_seen[keys[i]]]
        return results

    def _build(
        self,
        probe: Probe,
        region: CloudRegion,
        token: Optional[Hashable],
    ) -> PlannedPath:
        prep = self._prepare(probe, region, token)
        lat_list, lon_list, rtt_list, addr_list, _ = self._place_hops([prep])
        columns, base_rtt = self._assemble(
            prep, lat_list, lon_list, rtt_list, addr_list, 0
        )
        return self._finalize(prep, columns, base_rtt)

    def _route_meta(
        self,
        probe: Probe,
        region: CloudRegion,
        token: Optional[Hashable],
    ) -> _RouteMeta:
        """The shared (ISP, country, region) prefix of preparation, cached.

        ``token`` is the pair's scope token (see :meth:`_pair_token`),
        already resolved by the caller so the hot path never re-derives
        it per pair.
        """
        key: Tuple[Hashable, ...] = (
            probe.isp_asn,
            probe.continent,
            probe.country,
            region.provider_code,
            region.region_id,
        )
        if token is not None:
            key = key + (token,)
        meta = self._meta_cache.get(key)
        if meta is not None:
            return meta
        topology = self._topology
        provider_code = region.provider_code
        network = topology.network_code(provider_code)
        if token is None:
            as_path = topology.as_path(
                probe.isp_asn, provider_code, probe.continent
            )
        else:
            assert self._route_policy is not None
            as_path = self._route_policy.as_path(
                topology, probe.isp_asn, provider_code, probe.continent
            )
        if as_path is None:
            raise RuntimeError(
                f"no route from AS{probe.isp_asn} to provider {provider_code}"
            )
        interconnect = classify_interconnect(as_path, topology, provider_code)
        wan = self._wans[network]
        stretch = effective_stretch(
            interconnect, len(as_path) - 2, wan, probe.continent, self._config
        )
        stretch = self._adjust_stretch_for_geography(stretch, probe, region, wan)
        path_config = self._config.path_model
        # Linearized effective_jitter_sigma: base + (distance/1000) * slope
        # evaluates to bit-identical floats for every interconnect class
        # (the on-net classes have slope 0, and x + 0.0 == x).
        on_net = self._config.private_wan_advantage and wan.covers(
            probe.continent
        )
        if interconnect.is_direct and on_net:
            sigma_base, sigma_slope = path_config.private_jitter_sigma, 0.0
        elif interconnect is InterconnectKind.PRIVATE and on_net:
            sigma_base = 0.5 * (
                path_config.private_jitter_sigma
                + path_config.public_jitter_sigma
            )
            sigma_slope = 0.0
        else:
            sigma_base = path_config.public_jitter_sigma
            sigma_slope = path_config.public_jitter_sigma_per_1000km
        intermediates = max(0, len(as_path) - 2)
        registry = topology.registry
        meta = _RouteMeta(
            as_path=tuple(as_path),
            interconnect=interconnect,
            stretch=stretch,
            sigma_base=sigma_base,
            sigma_per_1000km=sigma_slope,
            systems=tuple(registry.get(asn) for asn in as_path),
            cloud_share=_CLOUD_GEO_SHARE[interconnect],
            fixed_rtt=(
                path_config.isp_core_rtt_ms
                + intermediates * path_config.per_intermediate_as_rtt_ms
            ),
            dest_address=self._region_addresses[
                (provider_code, region.region_id)
            ],
        )
        self._meta_cache[key] = meta
        return meta

    def _prepare(
        self,
        probe: Probe,
        region: CloudRegion,
        token: Optional[Hashable],
    ) -> _PathPrep:
        """The scalar (per-pair) prefix of path building.

        Routing, classification, stretch geography and fixed overheads
        come from the :meth:`_route_meta` cache; only the great-circle
        distance, the distance-dependent jitter sigma, and the RNG draws
        remain per pair.  ``token`` is the caller-resolved scope token
        (``None`` for baseline planning).  Produces preps bit-identical
        to :meth:`_prepare_legacy` with an identical draw sequence.
        """
        if self._legacy_prep:
            return self._prepare_legacy(probe, region)
        meta = self._route_meta(probe, region, token)
        distance = probe.location.distance_km(region.location)
        sigma = meta.sigma_base + (distance / 1000.0) * meta.sigma_per_1000km
        if self._pair_entropy is not None:
            pair_rng = self._pair_generator(probe, region)
        else:
            assert self._rng is not None
            pair_rng = self._rng
        counts = _hop_counts(meta.systems, meta.cloud_share, pair_rng)
        return _PathPrep(
            probe=probe,
            region=region,
            as_path=meta.as_path,
            interconnect=meta.interconnect,
            distance=distance,
            stretch=meta.stretch,
            sigma=sigma,
            systems=meta.systems,
            counts=counts,
            fixed_rtt=meta.fixed_rtt,
            total_hops=sum(counts),
            two_way_fiber=2.0 * one_way_fiber_ms(distance, meta.stretch),
            dest_address=meta.dest_address,
            rng=pair_rng,
        )

    def _prepare_legacy(self, probe: Probe, region: CloudRegion) -> _PathPrep:
        """The original uncached per-pair preparation (parity reference)."""
        topology = self._topology
        provider_code = region.provider_code
        network = topology.network_code(provider_code)
        as_path = topology.as_path(probe.isp_asn, provider_code, probe.continent)
        if as_path is None:
            raise RuntimeError(
                f"no route from AS{probe.isp_asn} to provider {provider_code}"
            )
        interconnect = classify_interconnect(as_path, topology, provider_code)
        wan = self._wans[network]
        distance = probe.location.distance_km(region.location)
        stretch = effective_stretch(
            interconnect, len(as_path) - 2, wan, probe.continent, self._config
        )
        stretch = self._adjust_stretch_for_geography(stretch, probe, region, wan)
        sigma = effective_jitter_sigma(
            interconnect, distance, wan, probe.continent, self._config
        )
        path_config = self._config.path_model
        intermediates = max(0, len(as_path) - 2)
        # Fixed (distance-independent) overheads: the serving ISP's
        # aggregation core, plus detours at every inter-domain handoff.
        fixed_rtt = (
            path_config.isp_core_rtt_ms
            + intermediates * path_config.per_intermediate_as_rtt_ms
        )
        # Hop counts per AS.  The cloud AS carries a geography share that
        # depends on ingress locality; the remainder splits evenly.
        registry = topology.registry
        cloud_share = _CLOUD_GEO_SHARE[interconnect]
        systems = [registry.get(asn) for asn in as_path]
        if self._pair_entropy is not None:
            pair_rng = self._pair_generator(probe, region)
        else:
            assert self._rng is not None
            pair_rng = self._rng
        counts = _hop_counts(systems, cloud_share, pair_rng)
        return _PathPrep(
            probe=probe,
            region=region,
            as_path=as_path,
            interconnect=interconnect,
            distance=distance,
            stretch=stretch,
            sigma=sigma,
            systems=systems,
            counts=counts,
            fixed_rtt=fixed_rtt,
            total_hops=sum(counts),
            two_way_fiber=2.0 * one_way_fiber_ms(distance, stretch),
            dest_address=self._region_addresses[
                (provider_code, region.region_id)
            ],
            rng=pair_rng,
        )

    def _place_hops(
        self, preps: Sequence[_PathPrep]
    ) -> Tuple[
        List[float], List[float], List[float], List[int], List[int]
    ]:
        """Place every hop of every prep in one vectorized pass.

        Fractions along each great circle, spherical interpolation, the
        linear noise-free RTT profile, and hop addresses are all plain
        array expressions over the concatenated hops of the whole batch.
        Returns per-hop lat/lon/RTT/address lists plus the per-prep start
        offsets into them.
        """
        path_config = self._config.path_model
        n_hops = np.array([prep.total_hops for prep in preps], dtype=np.int64)
        offsets = np.zeros(len(preps) + 1, dtype=np.int64)
        np.cumsum(n_hops, out=offsets[1:])
        total = int(offsets[-1])
        path_of = np.repeat(np.arange(len(preps)), n_hops)
        ordinals = (
            np.arange(1, total + 1, dtype=np.float64)
            - offsets[:-1][path_of]
        )
        fractions = ordinals / (n_hops + 1.0)[path_of]

        # Spherical interpolation across all paths at once.  The common
        # 1/sin(delta) slerp factor cancels inside atan2 and is skipped;
        # delta is floored at 1e-9 rad so coincident endpoints degrade to
        # the endpoint itself instead of 0/0.
        lat1 = np.radians([prep.probe.location.lat for prep in preps])
        lon1 = np.radians([prep.probe.location.lon for prep in preps])
        lat2 = np.radians([prep.region.location.lat for prep in preps])
        lon2 = np.radians([prep.region.location.lon for prep in preps])
        delta = np.maximum(
            np.array([prep.distance for prep in preps]) / EARTH_RADIUS_KM,
            1e-9,
        )
        cos1 = np.cos(lat1)
        cos2 = np.cos(lat2)
        scaled = fractions * delta[path_of]
        s1 = np.sin(delta[path_of] - scaled)
        s2 = np.sin(scaled)
        x = s1 * (cos1 * np.cos(lon1))[path_of] + s2 * (cos2 * np.cos(lon2))[path_of]
        y = s1 * (cos1 * np.sin(lon1))[path_of] + s2 * (cos2 * np.sin(lon2))[path_of]
        z = s1 * np.sin(lat1)[path_of] + s2 * np.sin(lat2)[path_of]
        lats = np.degrees(np.arctan2(z, np.hypot(x, y)))
        lons = np.degrees(np.arctan2(y, x))

        # Noise-free RTT profile: linear in the path fraction plus per-hop
        # processing, shared minimum, and the fixed overheads.
        grows = np.array(
            [prep.two_way_fiber + prep.fixed_rtt for prep in preps]
        )
        base_rtts = (
            grows[path_of] * fractions
            + ordinals * path_config.hop_processing_ms
            + path_config.min_path_rtt_ms
        )

        # One uniform draw covers every hop's address offset; each hop's
        # offset maps onto [16, prefix.size - 16) inside its owner's
        # prefix, matching the old per-AS integer draws in distribution.
        as_counts: List[int] = []
        as_bases: List[int] = []
        as_spans: List[int] = []
        for prep in preps:
            for autonomous_system, count in zip(prep.systems, prep.counts):
                prefix = autonomous_system.prefixes[0]
                as_counts.append(count)
                as_bases.append(prefix.base)
                as_spans.append(prefix.size - 32)
        spans = np.repeat(np.array(as_spans, dtype=np.float64), as_counts)
        bases = np.repeat(np.array(as_bases, dtype=np.int64), as_counts)
        if self._pair_entropy is None:
            assert self._rng is not None
            draws = self._rng.random(total)
        else:
            # Pair mode: each prep's address draws come from its own
            # generator (which already served its hop counts), keeping
            # the planned path independent of batch composition.
            draws = np.concatenate(
                [prep.rng.random(prep.total_hops) for prep in preps]
            )
        addresses = bases + 16 + (draws * spans).astype(np.int64)

        return (
            lats.tolist(),
            lons.tolist(),
            base_rtts.tolist(),
            addresses.tolist(),
            offsets.tolist(),
        )

    def _assemble(
        self,
        prep: _PathPrep,
        lat_list: List[float],
        lon_list: List[float],
        rtt_list: List[float],
        addr_list: List[int],
        start: int,
    ) -> Tuple[HopColumns, float]:
        """Build one prep's columnar hop storage from the placed arrays."""
        path_config = self._config.path_model
        total = prep.total_hops
        end = start + total
        addresses = addr_list[start:end]
        lats = lat_list[start:end]
        lons = lon_list[start:end]
        rtts = rtt_list[start:end]
        asns: List[Optional[int]] = []
        kinds: List[str] = []
        for autonomous_system, count in zip(prep.systems, prep.counts):
            asns.extend((autonomous_system.asn,) * count)
            kinds.extend((_KIND_LABELS[autonomous_system.kind],) * count)
        ixp_ids: List[Optional[int]] = [None] * total
        # IXP port hop between the ISP hops and the cloud hops for direct
        # sessions over a public exchange fabric.
        if prep.interconnect is InterconnectKind.DIRECT_IXP:
            peering = self._topology.peering_for(prep.region.provider_code)
            ixp_id = peering.direct_isps.get(prep.as_path[0])
            if ixp_id is not None:
                ixp = self._topology.ixps.get(ixp_id)
                insert_at = prep.counts[0]
                neighbor_rtt = rtts[min(insert_at, total - 1)]
                addresses.insert(
                    insert_at, ixp.lan_address_for(peering.cloud_asn)
                )
                asns.insert(insert_at, None)
                kinds.insert(insert_at, "ixp")
                lats.insert(insert_at, ixp.location.lat)
                lons.insert(insert_at, ixp.location.lon)
                rtts.insert(insert_at, neighbor_rtt)
                ixp_ids.insert(insert_at, ixp_id)

        # Destination endpoint hop (the VM).
        base_path_rtt = (
            prep.two_way_fiber
            + (total + 1) * path_config.hop_processing_ms
            + path_config.min_path_rtt_ms
            + prep.fixed_rtt
        )
        location = prep.region.location
        addresses.append(prep.dest_address)
        asns.append(prep.as_path[-1])
        kinds.append(_KIND_LABELS[ASKind.CLOUD])
        lats.append(location.lat)
        lons.append(location.lon)
        rtts.append(base_path_rtt)
        ixp_ids.append(None)
        columns = (
            tuple(addresses),
            tuple(asns),
            tuple(kinds),
            tuple(lats),
            tuple(lons),
            tuple(rtts),
            tuple(ixp_ids),
        )
        return columns, base_path_rtt

    def _finalize(
        self, prep: _PathPrep, columns: tuple, base_rtt: float
    ) -> PlannedPath:
        path_config = self._config.path_model
        congestion = (
            path_config.congestion_probability
            if prep.interconnect is InterconnectKind.PUBLIC
            else path_config.congestion_probability * 0.25
        )
        return PlannedPath(
            probe_id=prep.probe.probe_id,
            region_id=prep.region.region_id,
            provider_code=prep.region.provider_code,
            as_path=tuple(prep.as_path),
            interconnect=prep.interconnect,
            distance_km=prep.distance,
            stretch=prep.stretch,
            jitter_sigma=prep.sigma,
            congestion_probability=congestion,
            base_path_rtt_ms=base_rtt,
            hop_columns=columns,
            dest_address=prep.dest_address,
        )

    def _adjust_stretch_for_geography(
        self, stretch: float, probe: Probe, region: CloudRegion, wan: PrivateWAN
    ) -> float:
        """Geography corrections to the interconnect-class stretch.

        Submarine-constrained routes (island endpoint or cross-continent)
        cap the private-WAN advantage: everyone rides the same cables.
        Cross-country paths inside under-provisioned continents pick up a
        terrestrial backhaul penalty (intra-African detours via Europe).
        """
        path_config = self._config.path_model
        src_island = dst_island = False
        if self._countries is not None:
            src = self._countries.find(probe.country)
            dst = self._countries.find(region.country)
            src_island = src.island if src else False
            dst_island = dst.island if dst else False
        submarine = (
            src_island
            or dst_island
            or probe.continent is not region.continent
        )
        if submarine:
            stretch = max(stretch, path_config.submarine_private_stretch_floor)
        if (
            probe.continent is region.continent
            and probe.country != region.country
        ):
            stretch *= path_config.continent_backhaul_stretch.get(
                probe.continent.value, 1.0
            )
        return stretch

def _hop_counts(
    systems: Sequence[AS], cloud_share: float, rng: np.random.Generator
) -> List[int]:
    """Routers exposed by each AS on a path (more when an AS carries
    more of the geographic distance).

    Cloud WANs that ingress near the user expose their internal backbone
    routers along most of the path, which is what drives the >60%
    pervasiveness of hypergiants in the paper's Fig. 11.  One uniform
    draw covers the whole path; ``lo + floor(u * (hi - lo))`` reproduces
    the per-AS ``rng.integers(lo, hi)`` distribution.
    """
    other_share = (1.0 - cloud_share) / max(1, len(systems) - 1)
    draws = rng.random(len(systems)).tolist()
    counts: List[int] = []
    for draw, autonomous_system in zip(draws, systems):
        if autonomous_system.kind is ASKind.CLOUD:
            share = max(0.0, min(1.0, cloud_share))
            base = 2 + int(draw * 3.0)
            extra = int(round(5 * share))
        elif autonomous_system.kind is ASKind.ACCESS:
            share = max(0.0, min(1.0, other_share))
            base = 2 + int(draw * 2.0)
            extra = int(round(3 * share))
        else:
            share = max(0.0, min(1.0, other_share))
            base = 2 + int(draw * 3.0)
            extra = int(round(3 * share))
        counts.append(base + extra)
    return counts
