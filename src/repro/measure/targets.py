"""Cached nearest-region targeting for the campaign scheduler.

``target_regions`` used to re-scan every cloud region of a continent
with a Python ``min()`` for every probe on every visit.  The nearest
region of each provider is a pure function of *where* the probe is, and
probe locations quantize naturally onto the ~metro-sized city grid the
platform comparison already uses (:data:`repro.platforms.probe.CITY_CELL_DEGREES`).
This module computes nearest-per-provider once per (city cell,
continent) with a vectorized haversine over pre-built coordinate
columns, then serves every later visit from the cache.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.cloud.regions import CloudRegion, RegionCatalog
from repro.geo.continents import Continent
from repro.geo.coords import EARTH_RADIUS_KM
from repro.platforms.probe import CITY_CELL_DEGREES

#: A city-grid cell: ``(round(lat / cell), round(lon / cell))``.
CityCell = Tuple[int, int]


class _ContinentIndex:
    """Coordinate columns for one continent's regions, grouped by provider."""

    __slots__ = ("regions", "lat_rad", "lon_rad", "provider_rows")

    def __init__(self, regions: List[CloudRegion]) -> None:
        self.regions = regions
        self.lat_rad = np.radians([r.location.lat for r in regions])
        self.lon_rad = np.radians([r.location.lon for r in regions])
        rows: Dict[str, List[int]] = {}
        for row, region in enumerate(regions):
            rows.setdefault(region.provider_code, []).append(row)
        self.provider_rows: List[Tuple[str, np.ndarray]] = [
            (provider, np.asarray(indices))
            for provider, indices in sorted(rows.items())
        ]


class RegionTargeter:
    """Nearest-per-provider region lookup, cached per (city cell, continent)."""

    def __init__(self, catalog: RegionCatalog) -> None:
        self._catalog = catalog
        self._indexes: Dict[Continent, _ContinentIndex] = {}
        self._nearest: Dict[Tuple[CityCell, Continent], Tuple[CloudRegion, ...]] = {}

    def _index(self, continent: Continent) -> _ContinentIndex:
        index = self._indexes.get(continent)
        if index is None:
            index = _ContinentIndex(list(self._catalog.in_continent(continent)))
            self._indexes[continent] = index
        return index

    def regions_in_continent(self, continent: Continent) -> List[CloudRegion]:
        """The continent's region list (shared, do not mutate)."""
        return self._index(continent).regions

    def nearest_per_provider(
        self, cell: CityCell, continent: Continent
    ) -> Tuple[CloudRegion, ...]:
        """The nearest region of every provider in ``continent``.

        Distances are measured from the cell's center, which is what
        makes the result cacheable per cell; at ~2 degrees the cell is
        metro-sized, well below the resolution at which nearest-DC
        assignments change.  Results are ordered by provider code.
        """
        key = (cell, continent)
        cached = self._nearest.get(key)
        if cached is not None:
            return cached
        index = self._index(continent)
        if not index.regions:
            nearest: Tuple[CloudRegion, ...] = ()
        else:
            lat = np.radians(max(-90.0, min(90.0, cell[0] * CITY_CELL_DEGREES)))
            lon = np.radians(cell[1] * CITY_CELL_DEGREES)
            half_dlat = (index.lat_rad - lat) / 2.0
            half_dlon = (index.lon_rad - lon) / 2.0
            h = (
                np.sin(half_dlat) ** 2
                + np.cos(lat) * np.cos(index.lat_rad) * np.sin(half_dlon) ** 2
            )
            distances = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))
            nearest = tuple(
                index.regions[int(rows[int(np.argmin(distances[rows]))])]
                for _, rows in index.provider_rows
            )
        self._nearest[key] = nearest
        return nearest
