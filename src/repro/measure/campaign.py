"""The measurement campaign scheduler (paper section 3.3).

Reproduces the paper's operational setup:

- countries with enough connected probes enter a rotating cycle that
  sweeps the world once per ``cycle_days``;
- probe selection per country keys off the day's first connected-VP
  snapshot and is delegated to the platform (probes cannot be pinned);
- a daily request quota and a self-imposed rate limit bound the volume,
  truncating the day's assembled request list up front;
- each day's requests are issued through the vectorized batch engine
  (:meth:`MeasurementEngine.ping_batch`) and land in the dataset as
  columnar ping blocks;
- probes target the cloud regions of their own continent, plus the
  neighbouring well-provisioned continents for Africa (EU, NA) and South
  America (NA);
- each request issues a TCP ping (four samples); a share of requests
  also issues an ICMP traceroute.

The Atlas fleet is measured with the same engine but without quota,
mirroring the year-long continuous collection of Corneo et al.
"""

from __future__ import annotations

import gc
import math
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.core.config import config_digest
from repro.exec.runner import execute_plan_parallel
from repro.exec.staging import discard_staging
from repro.faults.config import FaultConfig, RetryPolicy, fault_digest
from repro.faults.injectors import FaultyAtlas, FaultyEngine, FaultySpeedchecker
from repro.faults.plan import AttemptFaults, FaultPlan
from repro.geo.continents import INTERCONTINENTAL_TARGETS, Continent
from repro.measure.batch import PingRequest, TraceRequest
from repro.measure.engine import BatchEngine, MeasurementEngine
from repro.measure.path import PathPlanner
from repro.measure.pathpolicy import FailoverPathPolicy, PathSelectionPolicy
from repro.measure.resilience import CommitHook, UnitResult, execute_plan
from repro.measure.results import (
    MeasurementDataset,
    Protocol,
    TraceBlock,
    TracerouteMeasurement,
    trace_block_from_records,
)
from repro.netfaults.config import NetworkFaultConfig, netfault_digest
from repro.netfaults.engine import NetfaultEngine, find_netfault_engine
from repro.netfaults.plan import NetworkFaultPlan
from repro.platforms.probe import Probe, city_key_for
from repro.platforms.protocols import AtlasLike, SpeedcheckerLike
from repro.platforms.speedchecker import QuotaExhausted
from repro.store.warehouse import DatasetStore, StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.world import World

#: Random extra in-continent regions measured per probe visit, on top of
#: the per-provider nearest regions.
_EXTRA_REGIONS_PER_VISIT = 5
#: Cap on probes measured per (country, day) visit before scaling.
_PROBES_PER_VISIT_CAP = 2000
#: Share of a country's currently-connected probes measured per visit.
#: Selection is proportional to the connected pool so the dataset
#: composition mirrors the fleet's deployment skew (e.g. ~80% of South
#: American Speedchecker samples coming from Brazil, section 4.2).
_VISIT_SHARE = 0.25


#: Foreign (inter-continental) regions sampled per visit for probes in
#: Africa and South America.  Keeping this small preserves the paper's
#: ~70/30 intra/inter dataset split (section 3.3) while still covering
#: every foreign provider over the course of the campaign.
_FOREIGN_REGIONS_PER_VISIT = 2


def target_regions(
    world: "World", probe: Probe, rng: np.random.Generator
) -> List[CloudRegion]:
    """Regions a probe measures on one visit.

    Always includes the geographically-nearest region of every provider
    present in the probe's continent (so nearest-DC analyses are covered)
    and a few random in-continent regions.  Probes in Africa and South
    America additionally sample a handful of nearest-per-provider regions
    in the neighbouring better-provisioned continents (section 4.3),
    keeping the intra/inter split near the paper's ~70/30.

    Nearest-per-provider lookups are served by the world's
    :class:`~repro.measure.targets.RegionTargeter`, which caches one
    vectorized distance scan per (city cell, continent).
    """
    targeter = world.targeter
    cell = city_key_for(probe)
    chosen: Dict[Tuple[str, str], CloudRegion] = {}
    for region in targeter.nearest_per_provider(cell, probe.continent):
        chosen[(region.provider_code, region.region_id)] = region

    foreign_candidates: List[CloudRegion] = []
    for continent in INTERCONTINENTAL_TARGETS.get(probe.continent, ()):
        foreign_candidates.extend(targeter.nearest_per_provider(cell, continent))
    if foreign_candidates:
        take = min(_FOREIGN_REGIONS_PER_VISIT, len(foreign_candidates))
        picks = rng.choice(len(foreign_candidates), size=take, replace=False)
        for pick in picks:
            region = foreign_candidates[int(pick)]
            chosen[(region.provider_code, region.region_id)] = region

    home_regions = targeter.regions_in_continent(probe.continent)
    if home_regions:
        extra = min(_EXTRA_REGIONS_PER_VISIT, len(home_regions))
        picks = rng.choice(len(home_regions), size=extra, replace=False)
        for pick in picks:
            region = home_regions[int(pick)]
            chosen[(region.provider_code, region.region_id)] = region
    return list(chosen.values())


def run_campaign(
    world: "World",
    days: Optional[int] = None,
    platforms: Sequence[str] = ("speedchecker", "atlas"),
) -> MeasurementDataset:
    """Run the measurement campaign and return the collected dataset."""
    config = world.config
    total_days = days if days is not None else config.campaign.days
    if total_days < 1:
        raise ValueError(f"campaign needs at least one day, got {total_days}")
    dataset = MeasurementDataset()
    # The campaign allocates records in bulk and none of them form
    # reference cycles, but a large live heap (planned-path caches,
    # earlier datasets) makes each automatic gen-2 collection a full
    # multi-millisecond traversal that fires repeatedly mid-campaign.
    # Suspend collection for the duration and restore the collector to
    # its previous state after.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        if "speedchecker" in platforms:
            _run_speedchecker(world, total_days, dataset)
        if "atlas" in platforms:
            _run_atlas(world, total_days, dataset)
    finally:
        if was_enabled:
            gc.enable()
    return dataset


def _run_speedchecker(
    world: "World", total_days: int, dataset: MeasurementDataset
) -> None:
    config = world.config
    campaign = config.campaign
    platform = world.speedchecker
    engine = world.engine
    rng = world.rngs.stream("campaign.speedchecker")

    min_probes = config.scaled(
        config.platforms.min_probes_per_country, minimum=2
    )
    cycle = platform.countries_with_at_least(min_probes)
    if not cycle:
        cycle = platform.countries()
    per_day = max(1, math.ceil(len(cycle) / campaign.cycle_days))
    visit_cap = config.scaled(_PROBES_PER_VISIT_CAP, minimum=3)
    rate_cap = int(campaign.requests_per_minute * 60 * 24)

    cycle_order = list(cycle)
    for day in range(total_days):
        platform.refresh_quota()
        # Probe selection keys off the midnight snapshot only; the later
        # 4-hourly snapshots never influenced scheduling, so computing
        # them up front discarded 5/6 of the availability draws.
        selection_snapshot = platform.snapshot(day, hour=0)
        if day % campaign.cycle_days == 0:
            # Re-shuffle each sweep so quota/rate-limit truncation does
            # not systematically starve the same countries.
            rng.shuffle(cycle_order)
        cycle_position = (day % campaign.cycle_days) * per_day
        todays = cycle_order[cycle_position : cycle_position + per_day]

        # Assemble the whole day's request list up front, truncating
        # against the rate cap and the remaining daily quota on the list
        # itself -- once the budget is reached the rest of the day's
        # country and probe loops are skipped entirely.
        budget = min(rate_cap, platform.remaining_quota)
        requests: List[PingRequest] = []
        traces: List[TraceRequest] = []
        for iso in todays:
            if len(requests) >= budget:
                break
            connected = platform.connected_in_country(iso, selection_snapshot)
            visit_count = min(
                visit_cap, max(2, int(len(connected) * _VISIT_SHARE))
            )
            probes = platform.select_probes(
                iso, selection_snapshot, visit_count, pool=connected
            )
            for probe in probes:
                if len(requests) >= budget:
                    break
                for region in target_regions(world, probe, rng):
                    if len(requests) >= budget:
                        break
                    requests.append(
                        PingRequest(
                            probe=probe,
                            region=region,
                            protocol=Protocol.TCP,
                            samples=campaign.pings_per_request,
                            day=day,
                        )
                    )
                    # The traceroute coin flip happens at scheduling
                    # time, alongside the ping it rides with.
                    if rng.random() < campaign.traceroute_share:
                        traces.append(
                            TraceRequest(
                                probe=probe,
                                region=region,
                                protocol=Protocol.ICMP,
                                day=day,
                            )
                        )
        if not requests:
            continue
        platform.charge(len(requests))
        dataset.add_ping_block(engine.ping_batch(requests))
        for measurement in engine.traceroute_batch(traces):
            dataset.add_traceroute(measurement)


def _run_atlas(
    world: "World", total_days: int, dataset: MeasurementDataset
) -> None:
    config = world.config
    campaign = config.campaign
    platform = world.atlas
    engine = world.engine
    rng = world.rngs.stream("campaign.atlas")
    #: Fraction of connected Atlas probes scheduled per day.
    daily_share = 0.35

    for day in range(total_days):
        connected = platform.connected_probes()
        if not connected:
            continue
        count = max(1, int(len(connected) * daily_share))
        picks = rng.choice(len(connected), size=count, replace=False)
        # Corneo et al. collected ICMP pings and TCP traceroutes; we
        # record TCP pings as well so the cross-platform latency
        # comparison uses TCP on both sides (section 3.3).  Both
        # protocols for every (probe, region) pair go into one batch.
        pairs: List[Tuple[Probe, CloudRegion]] = []
        requests: List[PingRequest] = []
        for pick in picks:
            probe = connected[int(pick)]
            for region in target_regions(world, probe, rng):
                pairs.append((probe, region))
                for protocol in (Protocol.TCP, Protocol.ICMP):
                    requests.append(
                        PingRequest(
                            probe=probe,
                            region=region,
                            protocol=protocol,
                            samples=campaign.pings_per_request,
                            day=day,
                        )
                    )
        if not requests:
            continue
        dataset.add_ping_block(engine.ping_batch(requests))
        traceroute_draws = rng.random(len(pairs))
        traces = [
            TraceRequest(probe=probe, region=region, protocol=Protocol.TCP, day=day)
            for (probe, region), draw in zip(pairs, traceroute_draws)
            if draw < campaign.traceroute_share
        ]
        for measurement in engine.traceroute_batch(traces):
            dataset.add_traceroute(measurement)


# -- checkpointed campaigns ----------------------------------------------
#
# The classic run_campaign() draws every stochastic decision from two
# long-lived streams, so day k's randomness depends on every draw of
# days 0..k-1 and the run cannot be split.  The checkpointed runner
# makes each (platform, day) *unit* a pure function of (seed, config,
# unit id): scheduling, availability and measurement noise come from
# per-unit ``RngStreams.fork`` streams, and path planning uses the
# planner's pair-deterministic mode.  Completed units are flushed to a
# :class:`~repro.store.warehouse.DatasetStore` and journaled, so an
# interrupted run resumed later produces a byte-identical store.

#: Platforms the checkpointed runner knows how to schedule.
CHECKPOINT_PLATFORMS = ("speedchecker", "atlas")

#: Fraction of connected Atlas probes scheduled per day (matches the
#: classic runner's schedule density).
_ATLAS_DAILY_SHARE = 0.35

PathLike = Union[str, Path]


def plan_units(days: int, platforms: Sequence[str]) -> List[str]:
    """The ordered unit ids of a checkpointed campaign.

    One unit per (platform, day), platform-major -- the same order the
    classic runner visits work in.
    """
    if days < 1:
        raise ValueError(f"campaign needs at least one day, got {days}")
    units: List[str] = []
    for platform in platforms:
        if platform not in CHECKPOINT_PLATFORMS:
            raise ValueError(f"unknown campaign platform {platform!r}")
        for day in range(days):
            units.append(f"{platform}:{day:03d}")
    return units


def _checkpoint_engine(
    world: "World", route_policy: Optional[PathSelectionPolicy] = None
) -> MeasurementEngine:
    """An engine whose path planning is pair-deterministic.

    The world's own planner consumes a shared sequential stream, which
    would make planned paths depend on plan order -- fatal for resume.
    This engine plans each (probe, region) pair from a generator derived
    from the pair's stable name, so paths are identical no matter which
    units ran before.  The engine's fallback stream is never used: every
    batch call below passes an explicit per-unit generator.

    ``route_policy`` threads a path-selection policy into the planner
    (the network-fault runner installs a
    :class:`~repro.measure.pathpolicy.FailoverPathPolicy` here).
    """
    planner = PathPlanner(
        topology=world.topology,
        wans=world.wans,
        region_addresses=world.region_addresses,
        config=world.config,
        countries=world.countries,
        pair_entropy=world.rngs.seed,
        route_policy=route_policy,
    )
    return MeasurementEngine(
        planner=planner,
        config=world.config,
        rng=world.rngs.stream("checkpoint.engine"),
    )


def _prewarm_route_tables(world: "World") -> int:
    """Compute every routing table a campaign day can need, in-process.

    Called in the parent before forking parallel workers: the tables
    land in the topology's route cache (and the process-wide memo in
    :mod:`repro.net.routing`), so every forked child inherits them as
    shared copy-on-write pages instead of each recomputing the same
    valley-free sweeps.  Returns the number of (network, continent)
    tables now resident.
    """
    continents = {
        probe.continent
        for platform in (world.speedchecker, world.atlas)
        for probe in platform.probes
    }
    networks = {
        world.topology.network_code(region.provider_code)
        for region in world.catalog
    }
    count = 0
    for network in sorted(networks):
        for continent in sorted(continents, key=lambda c: c.value):
            world.topology.routes_for(network, continent)
            count += 1
    return count


def _trace_block(
    requests: Sequence[TraceRequest],
    records: Sequence[TracerouteMeasurement],
) -> TraceBlock:
    """Columnarize a unit's traceroutes, interning the real objects."""
    probes_by_id = {req.probe.probe_id: req.probe for req in requests}
    regions_by_key = {
        (req.region.provider_code, req.region.region_id): req.region
        for req in requests
    }
    return trace_block_from_records(records, probes_by_id, regions_by_key)


def _speedchecker_unit(
    world: "World",
    engine: BatchEngine,
    day: int,
    platform: Optional[SpeedcheckerLike] = None,
) -> UnitResult:
    """Execute one Speedchecker day from per-unit RNG streams.

    ``engine`` and ``platform`` default to the world's own objects; the
    resilient runner substitutes fault-injecting wrappers.
    """
    config = world.config
    campaign = config.campaign
    if platform is None:
        platform = world.speedchecker
    rngs = world.rngs

    min_probes = config.scaled(
        config.platforms.min_probes_per_country, minimum=2
    )
    cycle = platform.countries_with_at_least(min_probes)
    if not cycle:
        cycle = platform.countries()
    per_day = max(1, math.ceil(len(cycle) / campaign.cycle_days))
    visit_cap = config.scaled(_PROBES_PER_VISIT_CAP, minimum=3)
    rate_cap = int(campaign.requests_per_minute * 60 * 24)

    # Each sweep's country order is a fresh shuffle of the sorted cycle
    # keyed by the sweep index -- day k's slice of the order never
    # depends on earlier sweeps having run.
    sweep = day // campaign.cycle_days
    cycle_order = list(cycle)
    rngs.fork("checkpoint.speedchecker.cycle", sweep).shuffle(cycle_order)
    cycle_position = (day % campaign.cycle_days) * per_day
    todays = cycle_order[cycle_position : cycle_position + per_day]

    platform.refresh_quota()
    snapshot = platform.snapshot(
        day, hour=0, rng=rngs.fork("checkpoint.speedchecker.snapshot", day)
    )
    sched_rng = rngs.fork("checkpoint.speedchecker.schedule", day)
    budget = min(rate_cap, platform.remaining_quota)
    requests: List[PingRequest] = []
    # Each traceroute is tagged with the index of the ping it rides
    # with, so quota degradation below can keep exactly the traceroutes
    # whose ping was actually issued.
    traces: List[Tuple[int, TraceRequest]] = []
    for iso in todays:
        if len(requests) >= budget:
            break
        connected = platform.connected_in_country(iso, snapshot)
        visit_count = min(visit_cap, max(2, int(len(connected) * _VISIT_SHARE)))
        probes = platform.select_probes(
            iso, snapshot, visit_count, pool=connected, rng=sched_rng
        )
        for probe in probes:
            if len(requests) >= budget:
                break
            for region in target_regions(world, probe, sched_rng):
                if len(requests) >= budget:
                    break
                requests.append(
                    PingRequest(
                        probe=probe,
                        region=region,
                        protocol=Protocol.TCP,
                        samples=campaign.pings_per_request,
                        day=day,
                    )
                )
                if sched_rng.random() < campaign.traceroute_share:
                    traces.append(
                        (
                            len(requests) - 1,
                            TraceRequest(
                                probe=probe,
                                region=region,
                                protocol=Protocol.ICMP,
                                day=day,
                            ),
                        )
                    )
    scheduled = len(requests)
    issued = scheduled
    if requests:
        try:
            platform.charge(scheduled)
        except QuotaExhausted:
            # The budget was drained between scheduling and charging (a
            # concurrent consumer of the shared commercial quota): issue
            # the prefix the remaining budget still covers instead of
            # losing the unit.  The shortfall surfaces as a partial unit
            # in the journal -- a half-populated unit must never go
            # uncounted.
            issued = platform.charge_up_to(scheduled)
    issued_requests = requests[:issued]
    issued_traces = [trace for index, trace in traces if index < issued]
    netfault = find_netfault_engine(engine)
    if netfault is not None:
        # Discard effects journaled by a failed earlier attempt.
        netfault.take_events()
    engine_rng = rngs.fork("checkpoint.speedchecker.engine", day)
    ping_block = engine.ping_batch(issued_requests, rng=engine_rng)
    records = engine.traceroute_batch(issued_traces, rng=engine_rng)
    trace_block = _trace_block(issued_traces, records)
    netfault_events: List[str] = []
    if netfault is not None:
        annotations = netfault.last_trace_annotations
        if annotations is not None:
            trace_block.epochs, trace_block.outage_ids = annotations
        netfault_events = netfault.take_events()
    return UnitResult(
        ping_block=ping_block,
        trace_block=trace_block,
        scheduled_pings=scheduled,
        scheduled_traceroutes=len(traces),
        netfault_events=netfault_events,
    )


def _atlas_unit(
    world: "World",
    engine: BatchEngine,
    day: int,
    platform: Optional[AtlasLike] = None,
) -> UnitResult:
    """Execute one Atlas day from per-unit RNG streams."""
    campaign = world.config.campaign
    if platform is None:
        platform = world.atlas
    rngs = world.rngs

    connected = platform.connected_probes(
        rng=rngs.fork("checkpoint.atlas.connected", day)
    )
    sched_rng = rngs.fork("checkpoint.atlas.schedule", day)
    pairs: List[Tuple[Probe, CloudRegion]] = []
    requests: List[PingRequest] = []
    if connected:
        count = max(1, int(len(connected) * _ATLAS_DAILY_SHARE))
        picks = sched_rng.choice(len(connected), size=count, replace=False)
        for pick in picks:
            probe = connected[int(pick)]
            for region in target_regions(world, probe, sched_rng):
                pairs.append((probe, region))
                for protocol in (Protocol.TCP, Protocol.ICMP):
                    requests.append(
                        PingRequest(
                            probe=probe,
                            region=region,
                            protocol=protocol,
                            samples=campaign.pings_per_request,
                            day=day,
                        )
                    )
    netfault = find_netfault_engine(engine)
    if netfault is not None:
        # Discard effects journaled by a failed earlier attempt.
        netfault.take_events()
    engine_rng = rngs.fork("checkpoint.atlas.engine", day)
    ping_block = engine.ping_batch(requests, rng=engine_rng)
    traceroute_draws = sched_rng.random(len(pairs))
    traces = [
        TraceRequest(probe=probe, region=region, protocol=Protocol.TCP, day=day)
        for (probe, region), draw in zip(pairs, traceroute_draws)
        if draw < campaign.traceroute_share
    ]
    records = engine.traceroute_batch(traces, rng=engine_rng)
    trace_block = _trace_block(traces, records)
    netfault_events: List[str] = []
    if netfault is not None:
        annotations = netfault.last_trace_annotations
        if annotations is not None:
            trace_block.epochs, trace_block.outage_ids = annotations
        netfault_events = netfault.take_events()
    return UnitResult(
        ping_block=ping_block,
        trace_block=trace_block,
        scheduled_pings=len(requests),
        scheduled_traceroutes=len(traces),
        netfault_events=netfault_events,
    )


class CheckpointExecutor:
    """Executes one checkpointed campaign unit (the ``execute`` callback).

    A top-level class rather than a closure so parallel workers can run
    it in forked child processes (lint rule ``EXE001``): the instance
    holds only the world and the pair-deterministic engine, and every
    call is a pure function of (seed, config, unit id) -- no state
    crosses units, so any process may execute any unit.
    """

    def __init__(self, world: "World", engine: BatchEngine) -> None:
        self._world = world
        self._engine = engine

    def __call__(
        self, unit: str, day: int, ctx: Optional[AttemptFaults]
    ) -> UnitResult:
        world = self._world
        platform_name = unit.split(":")[0]
        unit_engine: BatchEngine = self._engine
        if platform_name == "speedchecker":
            speedchecker: SpeedcheckerLike = world.speedchecker
            if ctx is not None:
                speedchecker = FaultySpeedchecker(speedchecker, ctx)
                unit_engine = FaultyEngine(self._engine, ctx)
            return _speedchecker_unit(
                world, unit_engine, day, platform=speedchecker
            )
        atlas: AtlasLike = world.atlas
        if ctx is not None:
            atlas = FaultyAtlas(atlas, ctx)
            unit_engine = FaultyEngine(self._engine, ctx)
        return _atlas_unit(world, unit_engine, day, platform=atlas)


def _speedchecker_unit_budget(world: "World") -> int:
    """The most requests one Speedchecker unit may issue.

    The same bound the unit scheduler applies up front -- the day's
    rate cap or the daily quota, whichever is smaller.  The parallel
    commit phase re-checks every committed unit against it.
    """
    rate_cap = int(world.config.campaign.requests_per_minute * 60 * 24)
    return min(rate_cap, world.speedchecker.daily_quota)


def run_campaign_checkpointed(
    world: "World",
    run_dir: PathLike,
    days: Optional[int] = None,
    platforms: Sequence[str] = CHECKPOINT_PLATFORMS,
    max_units: Optional[int] = None,
    faults: Optional[FaultConfig] = None,
    netfaults: Optional[NetworkFaultConfig] = None,
    retry: Optional[RetryPolicy] = None,
    workers: int = 1,
    abort_after_commits: Optional[int] = None,
    on_commit: Optional[CommitHook] = None,
) -> DatasetStore:
    """Run a campaign with per-unit checkpointing into a dataset store.

    Each completed (platform, day) unit is flushed to ``run_dir`` as
    binary shards and journaled before the next unit starts.  Calling
    this again on a partially-filled ``run_dir`` (or via
    :func:`resume_campaign`) skips journaled units and continues; the
    final store is byte-identical to an uninterrupted run.

    ``max_units`` stops after that many *newly executed* units -- the
    hook the crash-resume tests use to interrupt a run at a precise
    point without killing the process.

    ``faults`` enables deterministic fault injection (see
    :mod:`repro.faults`); ``retry`` tunes the resilient executor's
    budgets.  An inactive (all-zero) fault config is byte-identical to
    passing ``None``: units run on the fault-free fast path and journal
    the exact entries this function has always written.

    ``netfaults`` enables deterministic *network* events (see
    :mod:`repro.netfaults` and ``docs/DYNAMIC_TOPOLOGY.md``): link
    failures, peering flaps, and regional outages on a per-day
    virtual-time timeline, with routes re-converging per epoch and
    per-row epoch/outage provenance columns on every shard.  As with
    ``faults``, an inactive (all-zero) config is byte-identical to
    passing ``None``.

    ``workers`` > 1 executes units on that many forked worker processes
    via :mod:`repro.exec`: workers stage into private stores and the
    parent commits in canonical order, so the resulting store is
    byte-identical to ``workers=1`` apart from the execution-provenance
    keys stamped into the journal's ``begin`` entry (see
    ``docs/PARALLELISM.md``).  Orphaned staging directories left by a
    previously killed parallel run are garbage-collected before any
    unit executes.  ``abort_after_commits`` is the parallel runner's
    kill-mid-commit testing hook (see
    :func:`repro.exec.execute_plan_parallel`).

    ``on_commit`` observes every journaled entry (unit, skip) right
    after its durable append, in canonical commit order at any worker
    count -- the measurement service's streaming hook.  The hook is an
    observer only: it cannot alter what is written, so the store stays
    byte-identical with or without it.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    config = world.config
    total_days = days if days is not None else config.campaign.days
    units = plan_units(total_days, list(platforms))
    digest = config_digest(config)
    fault_config = faults if faults is not None and faults.active else None
    net_config = (
        netfaults if netfaults is not None and netfaults.active else None
    )

    store = DatasetStore.open_or_create(
        Path(run_dir),
        seed=config.seed,
        config_hash=digest,
        scale=config.scale,
        source="campaign",
    )
    begin = store.journal.begin_entry()
    plan: Dict[str, object] = {
        "seed": config.seed,
        "config_hash": digest,
        "scale": config.scale,
        "days": total_days,
        "platforms": list(platforms),
        "units": units,
    }
    if fault_config is not None:
        plan["fault_digest"] = fault_digest(fault_config)
    if net_config is not None:
        plan["netfault_digest"] = netfault_digest(net_config)
    if begin is None:
        store.begin_run(plan)
    else:
        for key in ("seed", "config_hash", "days", "platforms"):
            if begin.get(key) != plan[key]:
                raise StoreError(
                    f"{store.run_dir}: cannot resume -- journal records "
                    f"{key}={begin.get(key)!r}, current run has {plan[key]!r}"
                )
        for digest_key in ("fault_digest", "netfault_digest"):
            if begin.get(digest_key) != plan.get(digest_key):
                raise StoreError(
                    f"{store.run_dir}: cannot resume -- journal records "
                    f"{digest_key}={begin.get(digest_key)!r}, current run "
                    f"has {plan.get(digest_key)!r}"
                )

    # Any staging directory is an orphan of a killed parallel run: its
    # units never made the journal, so they re-run deterministically.
    discard_staging(store.run_dir)

    # Skipped units are closed too: resume must not retry a unit the
    # resilient executor already gave up on (repair re-opens them).
    completed = set(store.completed_units()) | set(store.skipped_units())
    engine: BatchEngine
    if net_config is not None:
        route_policy = FailoverPathPolicy()
        net_plan = NetworkFaultPlan(
            config.seed, net_config, world.topology, world.catalog
        )
        engine = NetfaultEngine(
            _checkpoint_engine(world, route_policy=route_policy),
            net_plan,
            route_policy,
        )
    else:
        engine = _checkpoint_engine(world)
    fault_plan = (
        FaultPlan(config.seed, fault_config) if fault_config is not None else None
    )
    executor = CheckpointExecutor(world, engine)

    # As in run_campaign: bulk record allocation with no reference
    # cycles, so suspend the collector for the duration.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        if workers == 1:
            execute_plan(
                store,
                units,
                completed,
                executor,
                plan=fault_plan,
                retry=retry,
                max_units=max_units,
                on_commit=on_commit,
            )
        else:
            # Fork-based workers inherit the parent's address space:
            # computing every route table the day mix can touch *before*
            # forking turns N identical valley-free sweeps into one,
            # shared copy-on-write.
            _prewarm_route_tables(world)
            execute_plan_parallel(
                store,
                units,
                completed,
                executor,
                workers=workers,
                plan=fault_plan,
                retry=retry,
                max_units=max_units,
                unit_budgets={
                    "speedchecker": _speedchecker_unit_budget(world)
                },
                abort_after_commits=abort_after_commits,
                on_commit=on_commit,
            )
    finally:
        if was_enabled:
            gc.enable()
    return store


def resume_campaign(
    world: "World",
    run_dir: PathLike,
    max_units: Optional[int] = None,
    faults: Optional[FaultConfig] = None,
    netfaults: Optional[NetworkFaultConfig] = None,
    retry: Optional[RetryPolicy] = None,
    verify: bool = True,
    repair: bool = False,
    workers: int = 1,
    on_commit: Optional[CommitHook] = None,
) -> DatasetStore:
    """Resume an interrupted checkpointed campaign from its journal.

    The day count and platform list come from the journal's ``begin``
    entry; the world must be built from the same seed and configuration
    (enforced via the journaled config hash).

    With ``verify=True`` (the default) every journaled shard is
    re-checksummed first.  Corruption makes the resume *refuse*, naming
    every bad unit -- unless ``repair=True``, which quarantines the
    corrupt units (journal entries dropped, shards unlinked) so they
    deterministically re-run along with the pending ones.  A journal
    corrupted mid-file (not a torn tail) always refuses with
    :class:`~repro.store.journal.JournalError`.

    A run directory left behind by a *killed parallel run* is handled
    transparently: the journal already holds only the canonical prefix
    of committed units, orphaned worker staging directories are
    detected and garbage-collected before execution, and the pending
    units re-run (on ``workers`` processes) to a store byte-identical
    to an uninterrupted run.  ``workers`` also parallelizes the
    ``verify`` pass itself.
    """
    store = DatasetStore.open(Path(run_dir))
    begin = store.journal.begin_entry()
    if begin is None:
        raise StoreError(f"{store.run_dir}: no begun campaign to resume")
    discard_staging(store.run_dir)
    if verify:
        report = store.verify_report(workers=workers)
        bad_units = sorted(
            unit_report["unit"]
            for unit_report in report["units"]
            if unit_report["status"] != "ok"
        )
        if bad_units:
            if not repair:
                raise StoreError(
                    f"{store.run_dir}: refusing to resume -- corrupt "
                    f"units: {', '.join(bad_units)} (pass repair=True to "
                    "quarantine and re-run them)"
                )
            store.quarantine_units(bad_units)
    return run_campaign_checkpointed(
        world,
        run_dir,
        days=int(begin["days"]),
        platforms=tuple(begin["platforms"]),
        max_units=max_units,
        faults=faults,
        netfaults=netfaults,
        retry=retry,
        workers=workers,
        on_commit=on_commit,
    )


def run_intercontinental_study(
    world: "World",
    countries: Sequence[str],
    target_continents: Sequence[Continent],
    rounds: int = 3,
    max_probes_per_country: int = 25,
) -> MeasurementDataset:
    """Focused measurements for the inter-continental analysis (Fig. 6).

    For every listed country, the available Speedchecker probes ping the
    nearest region of every provider in each target continent -- the
    paper's setup for probes in under-provisioned continents.
    """
    dataset = MeasurementDataset()
    engine = world.engine
    catalog = world.catalog
    rng = world.rngs.stream(f"intercontinental.{'.'.join(countries)}")
    for iso in countries:
        probes = world.speedchecker.probes_in_country(iso)
        if len(probes) > max_probes_per_country:
            picks = rng.choice(
                len(probes), size=max_probes_per_country, replace=False
            )
            probes = [probes[int(i)] for i in picks]
        for probe in probes:
            targets: Dict[Tuple[str, str], CloudRegion] = {}
            for continent in target_continents:
                by_provider: Dict[str, List[CloudRegion]] = {}
                for region in catalog.in_continent(continent):
                    by_provider.setdefault(region.provider_code, []).append(region)
                for regions in by_provider.values():
                    nearest = min(
                        regions,
                        key=lambda region: probe.location.distance_km(
                            region.location
                        ),
                    )
                    targets[(nearest.provider_code, nearest.region_id)] = nearest
            for round_index in range(rounds):
                for region in targets.values():
                    dataset.add_ping(
                        engine.ping(
                            probe,
                            region,
                            protocol=Protocol.TCP,
                            samples=world.config.campaign.pings_per_request,
                            day=round_index,
                        )
                    )
    return dataset


def run_case_study(
    world: "World",
    source_country: str,
    dest_country: str,
    rounds: int = 3,
    max_probes: Optional[int] = None,
) -> MeasurementDataset:
    """Focused measurements from one country to another's datacenters.

    Used by the peering case studies (DE->UK, JP->IN, UA->UK, BH->IN of
    Figs. 12/13/17/18): every Speedchecker probe in ``source_country``
    pings and traceroutes every cloud region located in ``dest_country``,
    ``rounds`` times.
    """
    dataset = MeasurementDataset()
    engine = world.engine
    rng = world.rngs.stream(f"case.{source_country}.{dest_country}")
    probes = world.speedchecker.probes_in_country(source_country)
    if max_probes is not None and len(probes) > max_probes:
        picks = rng.choice(len(probes), size=max_probes, replace=False)
        probes = [probes[int(i)] for i in picks]
    regions = [
        region for region in world.catalog.all() if region.country == dest_country
    ]
    if not regions:
        raise ValueError(f"no cloud regions in {dest_country!r}")
    for round_index in range(rounds):
        for probe in probes:
            for region in regions:
                dataset.add_ping(
                    engine.ping(
                        probe,
                        region,
                        protocol=Protocol.TCP,
                        samples=world.config.campaign.pings_per_request,
                        day=round_index,
                    )
                )
                dataset.add_traceroute(
                    engine.traceroute(
                        probe, region, protocol=Protocol.ICMP, day=round_index
                    )
                )
    return dataset
