"""Measurement engines: ping, traceroute, and the campaign scheduler."""

from repro.measure.batch import PingRequest, TraceRequest
from repro.measure.campaign import (
    run_campaign,
    run_case_study,
    run_intercontinental_study,
)
from repro.measure.engine import MeasurementEngine
from repro.measure.io import load_dataset, save_dataset
from repro.measure.path import InterconnectKind, PlannedHop, PlannedPath
from repro.measure.results import (
    ColumnarPingStore,
    MeasurementDataset,
    PingBlock,
    PingMeasurement,
    Protocol,
    TraceHop,
    TracerouteMeasurement,
)
from repro.measure.targets import RegionTargeter

__all__ = [
    "ColumnarPingStore",
    "InterconnectKind",
    "MeasurementDataset",
    "MeasurementEngine",
    "PingBlock",
    "PingMeasurement",
    "PingRequest",
    "PlannedHop",
    "PlannedPath",
    "Protocol",
    "RegionTargeter",
    "TraceHop",
    "TraceRequest",
    "TracerouteMeasurement",
    "load_dataset",
    "run_campaign",
    "run_case_study",
    "run_intercontinental_study",
    "save_dataset",
]
