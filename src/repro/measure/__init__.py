"""Measurement engines: ping, traceroute, and the campaign scheduler."""

from repro.measure.campaign import (
    run_campaign,
    run_case_study,
    run_intercontinental_study,
)
from repro.measure.engine import MeasurementEngine
from repro.measure.io import load_dataset, save_dataset
from repro.measure.path import InterconnectKind, PlannedHop, PlannedPath
from repro.measure.results import (
    MeasurementDataset,
    PingMeasurement,
    Protocol,
    TraceHop,
    TracerouteMeasurement,
)

__all__ = [
    "InterconnectKind",
    "MeasurementDataset",
    "MeasurementEngine",
    "PingMeasurement",
    "PlannedHop",
    "PlannedPath",
    "Protocol",
    "TraceHop",
    "TracerouteMeasurement",
    "load_dataset",
    "run_campaign",
    "run_case_study",
    "run_intercontinental_study",
    "save_dataset",
]
