"""The query-engine command-line interface.

Subcommands::

    python -m repro.query run <run_dir> [filters] [shape] [--workers N]
    python -m repro.query explain <run_dir> [filters]

``run`` executes a query and prints the canonical result payload as
JSON; ``explain`` prints the scan plan -- which shards would be read
and why the rest were pruned -- without touching any column bytes.
Both build the same :class:`~repro.query.spec.QuerySpec` from flags,
so an ``explain`` always describes exactly the ``run`` with the same
arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.store.warehouse import DatasetStore, StoreError
from repro.query.builder import execute
from repro.query.plan import build_plan
from repro.query.spec import (
    GROUP_KEYS,
    PING_KIND,
    QUERY_KINDS,
    SCALAR_AGGREGATES,
    QueryError,
    QuerySpec,
)


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("run_dir", help="store run directory")
    parser.add_argument(
        "--kind",
        choices=QUERY_KINDS,
        default=PING_KIND,
        help="record family to scan (default: pings)",
    )
    parser.add_argument("--platform", help="probe platform filter")
    parser.add_argument(
        "--protocol", choices=("tcp", "icmp"), help="protocol filter"
    )
    parser.add_argument(
        "--country",
        action="append",
        default=[],
        help="probe country filter (repeatable)",
    )
    parser.add_argument(
        "--provider",
        action="append",
        default=[],
        help="target provider filter (repeatable)",
    )
    parser.add_argument(
        "--region",
        action="append",
        default=[],
        help="target region filter (repeatable)",
    )
    parser.add_argument(
        "--continent",
        action="append",
        default=[],
        help="probe continent filter (repeatable)",
    )
    parser.add_argument(
        "--days",
        nargs=2,
        type=int,
        metavar=("FIRST", "LAST"),
        help="inclusive day range",
    )
    parser.add_argument(
        "--rtt",
        nargs=2,
        type=float,
        metavar=("LOW", "HIGH"),
        help="inclusive RTT bounds (rows need at least one value inside)",
    )
    parser.add_argument(
        "--epochs",
        nargs=2,
        type=int,
        metavar=("FIRST", "LAST"),
        help="inclusive routing-epoch range (static shards read as epoch 0)",
    )
    parser.add_argument(
        "--outage",
        action="append",
        type=int,
        default=[],
        help="network event id filter, repeatable (-1 = unaffected rows)",
    )
    parser.add_argument(
        "--same-continent-only",
        action="store_true",
        help="keep only probe/region pairs sharing a continent",
    )
    parser.add_argument(
        "--group-by",
        nargs="+",
        default=[],
        choices=GROUP_KEYS,
        metavar="KEY",
        help=f"group keys (any of: {', '.join(GROUP_KEYS)})",
    )


def _add_shape_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--agg",
        nargs="+",
        dest="aggregates",
        default=None,
        choices=SCALAR_AGGREGATES,
        metavar="AGG",
        help=f"aggregates (any of: {', '.join(SCALAR_AGGREGATES)})",
    )
    parser.add_argument(
        "--quantiles",
        nargs="+",
        type=float,
        default=[],
        metavar="Q",
        help="percentiles to estimate with the mergeable sketch (0-100)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="sketch rank-error budget (default 0.005)",
    )
    parser.add_argument(
        "--collect",
        action="store_true",
        help="also return each group's exact value array",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scan worker processes (the result is identical at any count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the digest-keyed result cache",
    )
    parser.add_argument(
        "--indent", type=int, default=2, help="JSON indent (default 2)"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.query",
        description="Columnar queries over a binary dataset store",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    run = subparsers.add_parser("run", help="execute a query, print JSON")
    _add_spec_arguments(run)
    _add_shape_arguments(run)
    explain = subparsers.add_parser(
        "explain", help="print the scan plan without executing"
    )
    _add_spec_arguments(explain)
    explain.add_argument(
        "--indent", type=int, default=2, help="JSON indent (default 2)"
    )
    return parser


def _spec_from_args(args: argparse.Namespace) -> QuerySpec:
    kwargs = {
        "kind": args.kind,
        "platform": args.platform,
        "protocol": args.protocol,
        "countries": tuple(args.country),
        "providers": tuple(args.provider),
        "regions": tuple(args.region),
        "continents": tuple(args.continent),
        "day_range": tuple(args.days) if args.days else None,
        "rtt_range": tuple(args.rtt) if args.rtt else None,
        "epoch_range": tuple(args.epochs) if args.epochs else None,
        "outage_ids": tuple(args.outage),
        "same_continent_only": args.same_continent_only,
        "group_by": tuple(args.group_by),
    }
    if getattr(args, "aggregates", None) is not None:
        kwargs["aggregates"] = tuple(args.aggregates)
    if getattr(args, "quantiles", None):
        kwargs["quantiles"] = tuple(args.quantiles)
    if getattr(args, "epsilon", None) is not None:
        kwargs["epsilon"] = args.epsilon
    if getattr(args, "collect", False):
        kwargs["collect"] = True
    spec = QuerySpec(**kwargs)
    spec.validate()
    return spec


def _command_run(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    store = DatasetStore.open(args.run_dir)
    result = execute(
        store,
        _spec_from_args(args),
        workers=args.workers,
        cache=not args.no_cache,
    )
    print(result.to_json(indent=args.indent))
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    store = DatasetStore.open(args.run_dir)
    plan = build_plan(store, _spec_from_args(args))
    print(json.dumps(plan.as_dict(), indent=args.indent, sort_keys=True))
    return 0


_COMMANDS = {
    "run": _command_run,
    "explain": _command_explain,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (QueryError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
