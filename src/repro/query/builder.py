"""The Python-facing query API: :class:`QueryBuilder` and execution.

The builder is a thin immutable wrapper that accumulates a
:class:`~repro.query.spec.QuerySpec`; :func:`execute` is the one
entry point that ties planner, parallel scan, finalization, and the
result cache together:

    result = (
        store.query()
        .pings()
        .where(platform="speedchecker", protocol="tcp")
        .group_by("country")
        .quantiles(50)
        .run(workers=4)
    )

``result.payload()`` is the canonical JSON-safe form: it contains only
data determined by ``(store contents, spec)`` -- group rows in sorted
key order plus the plan summary -- never how the query was executed,
so serial, parallel, and cache-hit runs compare byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from repro.measure.results import Protocol
from repro.query.cache import QueryCache
from repro.query.plan import ScanPlan, build_plan
from repro.query.scan import GroupKey, GroupState, scan_shards
from repro.query.spec import PING_KIND, TRACE_KIND, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import DatasetStore

RESULT_FORMAT = "repro-query-result"
RESULT_VERSION = 1


def quantile_label(q: float) -> str:
    """The row key for one requested percentile (``50 -> "p50"``)."""
    return f"p{q:g}"


def group_rows(
    spec: QuerySpec, merged: Dict[GroupKey, GroupState]
) -> List[Dict[str, Any]]:
    """Finalize merged group states into canonical result rows.

    Rows are sorted by group-key tuple; aggregate keys appear in the
    order the spec requests them.  Value aggregates of an empty value
    stream are ``None`` (there is nothing to sum or rank).
    """
    rows: List[Dict[str, Any]] = []
    for key in sorted(merged):
        state = merged[key]
        row: Dict[str, Any] = {"group": dict(zip(spec.group_by, key))}
        for aggregate in spec.aggregates:
            if aggregate == "count":
                row["count"] = state.rows
            elif aggregate == "samples":
                row["samples"] = state.summary.count
            elif aggregate == "sum":
                row["sum"] = state.summary.total if state.summary.count else None
            elif aggregate == "min":
                row["min"] = state.summary.minimum
            elif aggregate == "max":
                row["max"] = state.summary.maximum
            elif aggregate == "mean":
                row["mean"] = state.summary.mean
            elif aggregate == "first":
                row["first"] = list(state.first_row)
        for q in spec.quantiles:
            if state.sketch is not None and state.sketch.count:
                row[quantile_label(q)] = state.sketch.quantile(q)
            else:
                row[quantile_label(q)] = None
        if spec.collect:
            row["values"] = [
                float(value)
                for value in (state.values if state.values is not None else ())
            ]
        rows.append(row)
    return rows


@dataclass
class QueryResult:
    """One executed query: canonical rows plus execution metadata.

    ``meta`` records *how* this run executed (worker count, cache
    hit/miss) and is deliberately excluded from :meth:`payload`.
    """

    spec: QuerySpec
    rows: List[Dict[str, Any]]
    plan: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        """The canonical JSON-safe result."""
        return {
            "format": RESULT_FORMAT,
            "version": RESULT_VERSION,
            "spec": self.spec.canonical(),
            "rows": self.rows,
            "plan": self.plan,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.payload(), sort_keys=True, indent=indent)

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], meta: Optional[Dict[str, Any]] = None
    ) -> "QueryResult":
        return cls(
            spec=QuerySpec.from_dict(payload["spec"]),
            rows=list(payload["rows"]),
            plan=dict(payload["plan"]),
            meta=dict(meta or {}),
        )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> "Any":
        return iter(self.rows)


def execute(
    store: "DatasetStore",
    spec: QuerySpec,
    workers: int = 1,
    cache: bool = True,
) -> QueryResult:
    """Plan, scan, finalize -- with a digest-keyed result cache in front.

    The cached payload is byte-identical to what a fresh scan would
    produce (it *is* a previous scan's payload, and the key pins
    manifest + journal + spec), so correctness does not depend on the
    cache at all; ``cache=False`` forces a scan.
    """
    spec.validate()
    query_cache = QueryCache(store.run_dir)
    if cache:
        # Before planning: a hit must not pay the per-shard header
        # reads (the cached payload carries the plan summary already).
        hit = query_cache.get(store, spec)
        if hit is not None:
            return QueryResult.from_payload(hit, meta={"cache": "hit"})
    plan = build_plan(store, spec)
    merged = scan_shards(plan.scanned, spec, workers=workers)
    result = QueryResult(
        spec=spec,
        rows=group_rows(spec, merged),
        plan=plan.as_dict(),
        meta={"cache": "miss" if cache else "off", "workers": workers},
    )
    if cache:
        query_cache.put(store, spec, result.payload())
    return result


class QueryBuilder:
    """Immutable fluent builder over one store.

    Every method returns a *new* builder, so partial queries can be
    shared and extended without aliasing surprises.
    """

    def __init__(
        self, store: "DatasetStore", spec: Optional[QuerySpec] = None
    ) -> None:
        self._store = store
        self._spec = spec if spec is not None else QuerySpec()

    def _with(self, **changes: Any) -> "QueryBuilder":
        return QueryBuilder(self._store, self._spec.with_(**changes))

    # -- kind --------------------------------------------------------------

    def pings(self) -> "QueryBuilder":
        return self._with(kind=PING_KIND)

    def traces(self) -> "QueryBuilder":
        return self._with(kind=TRACE_KIND)

    # -- predicates --------------------------------------------------------

    def where(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Union[str, Protocol]] = None,
        country: Optional[Union[str, Sequence[str]]] = None,
        provider: Optional[Union[str, Sequence[str]]] = None,
        region: Optional[Union[str, Sequence[str]]] = None,
        continent: Optional[Union[str, Sequence[str]]] = None,
        same_continent_only: Optional[bool] = None,
    ) -> "QueryBuilder":
        """Add conjunctive predicates (repeated calls accumulate)."""
        changes: Dict[str, Any] = {}
        if platform is not None:
            changes["platform"] = platform
        if protocol is not None:
            changes["protocol"] = (
                protocol.value
                if isinstance(protocol, Protocol)
                else str(protocol)
            )
        if country is not None:
            changes["countries"] = self._merged(self._spec.countries, country)
        if provider is not None:
            changes["providers"] = self._merged(self._spec.providers, provider)
        if region is not None:
            changes["regions"] = self._merged(self._spec.regions, region)
        if continent is not None:
            changes["continents"] = self._merged(
                self._spec.continents, continent
            )
        if same_continent_only is not None:
            changes["same_continent_only"] = bool(same_continent_only)
        return self._with(**changes)

    @staticmethod
    def _merged(
        existing: Sequence[str], added: Union[str, Sequence[str]]
    ) -> "tuple[str, ...]":
        if isinstance(added, str):
            added = (added,)
        return tuple(existing) + tuple(added)

    def days(self, first: int, last: int) -> "QueryBuilder":
        """Inclusive day range."""
        return self._with(day_range=(int(first), int(last)))

    def rtt_between(self, low: float, high: float) -> "QueryBuilder":
        """Inclusive RTT bounds (row predicate + value filter)."""
        return self._with(rtt_range=(float(low), float(high)))

    def epochs(self, first: int, last: int) -> "QueryBuilder":
        """Inclusive routing-epoch range (dynamic-topology provenance).

        Rows from static-topology shards count as epoch 0.
        """
        return self._with(epoch_range=(int(first), int(last)))

    def outages(self, *ids: int) -> "QueryBuilder":
        """Keep rows attributed to these network event ids.

        ``-1`` selects rows no event touched (all rows of static runs).
        Repeated calls accumulate.
        """
        return self._with(
            outage_ids=tuple(self._spec.outage_ids)
            + tuple(int(oid) for oid in ids)
        )

    # -- shape -------------------------------------------------------------

    def group_by(self, *keys: str) -> "QueryBuilder":
        return self._with(group_by=tuple(keys))

    def aggregate(self, *aggregates: str) -> "QueryBuilder":
        return self._with(aggregates=tuple(aggregates))

    def quantiles(
        self, *qs: float, epsilon: Optional[float] = None
    ) -> "QueryBuilder":
        changes: Dict[str, Any] = {"quantiles": tuple(float(q) for q in qs)}
        if epsilon is not None:
            changes["epsilon"] = float(epsilon)
        return self._with(**changes)

    def collect(self, collect: bool = True) -> "QueryBuilder":
        """Also return each group's exact value array."""
        return self._with(collect=collect)

    # -- execution ---------------------------------------------------------

    @property
    def spec(self) -> QuerySpec:
        return self._spec

    def plan(self) -> ScanPlan:
        """The scan plan without executing (``explain``)."""
        return build_plan(self._store, self._spec)

    def run(self, workers: int = 1, cache: bool = True) -> QueryResult:
        return execute(self._store, self._spec, workers=workers, cache=cache)

    def __repr__(self) -> str:
        return f"QueryBuilder({self._spec!r})"
