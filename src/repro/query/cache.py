"""The query-result cache.

Query results are pure functions of ``(store contents, query spec)``,
and the store's contents are fingerprinted by two tiny files: the
manifest (static identity) and the append-only journal (advances with
every committed unit).  So the cache key is the triple of digests --
manifest, journal, canonical query -- and invalidation is free: a new
commit changes the journal digest, which makes every stale entry miss
without any bookkeeping.

Entries live under ``run_dir/.querycache/``, one JSON file per query
digest, written atomically (tmp + rename).  The directory is a derived
artifact: :data:`repro.exec.digest.DERIVED_DIRS` excludes it from
canonical store digests, so caching a query never changes what counts
as "the same store" for the byte-identity contract.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.query.spec import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import DatasetStore

CACHE_DIR_NAME = ".querycache"
CACHE_FORMAT = "repro-query-cache"
CACHE_VERSION = 1


class QueryCache:
    """Digest-keyed result cache in a store's run directory."""

    def __init__(self, run_dir: Path) -> None:
        self.root = Path(run_dir) / CACHE_DIR_NAME

    def path_for(self, spec: QuerySpec) -> Path:
        return self.root / f"{spec.digest()}.json"

    def get(
        self, store: "DatasetStore", spec: QuerySpec
    ) -> Optional[Dict[str, Any]]:
        """The cached result payload, or ``None`` on miss/stale entry."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            entry.get("format") != CACHE_FORMAT
            or entry.get("version") != CACHE_VERSION
            or entry.get("manifest") != store.manifest_digest()
            or entry.get("journal") != store.journal_digest()
        ):
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(
        self,
        store: "DatasetStore",
        spec: QuerySpec,
        payload: Dict[str, Any],
    ) -> Path:
        """Store one result payload atomically; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "manifest": store.manifest_digest(),
            "journal": store.journal_digest(),
            "query": spec.canonical(),
            "payload": payload,
        }
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)
        return path
