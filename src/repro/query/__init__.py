"""repro.query: a columnar query engine over the shard warehouse.

The paper's analyses are filtered aggregations -- "median TCP RTT per
country on the Speedchecker platform", "samples to each probe's nearest
region", "per-day medians".  Running them through the record view
(:class:`repro.store.view.StoredDataset`) materializes one frozen
dataclass per measurement just to read two fields and throw it away.
This package evaluates the same queries directly on the memmapped shard
columns:

- :mod:`repro.query.spec` -- :class:`QuerySpec`, the canonical,
  digestable description of a query (filters, group keys, aggregates).
- :mod:`repro.query.plan` -- the scan planner: prunes shards using the
  per-column zone maps and interned probe/region tables embedded in
  shard headers, without touching column bytes.
- :mod:`repro.query.scan` -- vectorized shard scans (row masks, no
  record objects), shard-parallel via the :mod:`repro.exec` fork pool,
  merged in canonical shard order so parallel equals serial.
- :mod:`repro.analysis.sketch` -- the mergeable aggregation sketches
  the scans fold into.
- :mod:`repro.query.oracle` -- an exact record-at-a-time reference
  implementation; tests assert engine == oracle.
- :mod:`repro.query.cache` -- a query-result cache keyed by
  (manifest digest, journal digest, query digest).
- :mod:`repro.query.builder` -- the fluent :class:`QueryBuilder` API
  (``store.query().pings().where(...).group_by(...).run()``).

``python -m repro.query`` exposes the same engine on the command line
with JSON output.
"""

from repro.query.builder import QueryBuilder, QueryResult, execute
from repro.query.plan import ScanPlan, ShardPlan, build_plan
from repro.query.spec import (
    GROUP_KEYS,
    PING_KIND,
    SCALAR_AGGREGATES,
    TRACE_KIND,
    QueryError,
    QuerySpec,
)

__all__ = [
    "GROUP_KEYS",
    "PING_KIND",
    "SCALAR_AGGREGATES",
    "TRACE_KIND",
    "QueryBuilder",
    "QueryError",
    "QueryResult",
    "QuerySpec",
    "ScanPlan",
    "ShardPlan",
    "build_plan",
    "execute",
    "store_backing",
]


def store_backing(dataset: object) -> "object | None":
    """The :class:`~repro.store.warehouse.DatasetStore` behind a dataset.

    Analyses accept both in-memory :class:`MeasurementDataset` objects
    and store-backed :class:`StoredDataset` views; the former have no
    shards to scan, so query-engine fast paths apply only when this
    returns a store.
    """
    from repro.store.view import StoredDataset

    if isinstance(dataset, StoredDataset):
        return dataset.store
    return None
