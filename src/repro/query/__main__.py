"""``python -m repro.query`` entry point."""

import sys

from repro.query.cli import main

if __name__ == "__main__":
    sys.exit(main())
