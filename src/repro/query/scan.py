"""Vectorized shard scans with canonical-order merge.

One scan task = one shard.  The worker memmaps the shard's columns,
evaluates every pushed-down predicate as NumPy masks over whole columns
-- no :class:`PingMeasurement`/:class:`TracerouteMeasurement` objects
are ever constructed -- factorizes the group keys of the surviving
rows, and folds each group's value stream into mergeable states
(:mod:`repro.analysis.sketch`).

Parallelism reuses the :func:`repro.exec.pool.parallel_map` fork pool
(one task per shard) and relies on its input-order result contract:
partials are merged left-to-right in canonical journal order, so the
merged result -- floating-point sums included -- is byte-identical for
any worker count.  :func:`scan_shard_task` is the pool's worker entry
point and must stay a top-level function (lint EXE001).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sketch import QuantileSketch, ScalarSummary
from repro.exec.pool import parallel_map
from repro.measure.results import PROTOCOL_BY_CODE, PROTOCOL_CODES, Protocol
from repro.store.format import read_columns
from repro.query.plan import ShardPlan
from repro.query.spec import PING_KIND, QuerySpec

#: A group identity: one element per ``spec.group_by`` key.
GroupKey = Tuple[Any, ...]


@dataclass
class GroupState:
    """The mergeable per-group accumulator."""

    rows: int = 0
    first_row: Tuple[int, int] = (-1, -1)
    summary: ScalarSummary = field(default_factory=ScalarSummary)
    sketch: Optional[QuantileSketch] = None
    values: Optional[np.ndarray] = None

    def merge(self, other: "GroupState") -> None:
        """Absorb a later shard's state (callers merge in shard order)."""
        self.rows += other.rows
        if other.first_row < self.first_row or self.first_row == (-1, -1):
            self.first_row = other.first_row
        self.summary.merge(other.summary)
        if other.sketch is not None:
            if self.sketch is None:
                self.sketch = other.sketch
            else:
                self.sketch.merge(other.sketch)
        if other.values is not None:
            self.values = (
                other.values
                if self.values is None
                else np.concatenate([self.values, other.values])
            )


def _table_flags(
    table: Sequence[Dict[str, Any]],
    spec: QuerySpec,
    checks: Sequence[Tuple[str, Any]],
) -> Optional[np.ndarray]:
    """Per-table-row pass/fail for categorical predicates, or ``None``
    when no predicate applies (so callers skip the row gather)."""
    del spec  # predicates arrive pre-bound in `checks`
    flags: Optional[np.ndarray] = None
    for attr, wanted in checks:
        if not wanted:
            continue
        if isinstance(wanted, str):
            ok = np.array([row[attr] == wanted for row in table], dtype=bool)
        else:
            ok = np.array([row[attr] in wanted for row in table], dtype=bool)
        flags = ok if flags is None else flags & ok
    return flags


def _table_column(table: Sequence[Dict[str, Any]], attr: str) -> np.ndarray:
    return np.array([row[attr] for row in table])


def _epoch_column(
    columns: Dict[str, np.ndarray], n: int
) -> np.ndarray:
    """The routing-epoch column, defaulting static shards to epoch 0."""
    epochs = columns.get("epochs")
    if epochs is None:
        return np.zeros(n, dtype=np.int32)
    return epochs


def _outage_column(
    columns: Dict[str, np.ndarray], n: int
) -> np.ndarray:
    """The outage-id column, defaulting static shards to ``-1``."""
    outage_ids = columns.get("outage_ids")
    if outage_ids is None:
        return np.full(n, -1, dtype=np.int32)
    return outage_ids


def _row_mask(
    spec: QuerySpec,
    header: Dict[str, Any],
    columns: Dict[str, np.ndarray],
) -> np.ndarray:
    """The row-predicate mask (everything except the value predicate)."""
    probe_codes = columns["probe_codes"]
    region_codes = columns["region_codes"]
    mask = np.ones(len(probe_codes), dtype=bool)
    probes = header["probes"]
    regions = header["regions"]
    probe_flags = _table_flags(
        probes,
        spec,
        (
            ("platform", spec.platform),
            ("country", spec.countries),
            ("continent", spec.continents),
        ),
    )
    if probe_flags is not None:
        mask &= probe_flags[probe_codes]
    region_flags = _table_flags(
        regions,
        spec,
        (
            ("provider_code", spec.providers),
            ("region_id", spec.regions),
        ),
    )
    if region_flags is not None:
        mask &= region_flags[region_codes]
    if spec.same_continent_only:
        probe_continents = _table_column(probes, "continent")
        region_continents = _table_column(regions, "continent")
        mask &= (
            probe_continents[probe_codes] == region_continents[region_codes]
        )
    if spec.day_range is not None:
        days = columns["days"]
        mask &= (days >= spec.day_range[0]) & (days <= spec.day_range[1])
    if spec.protocol is not None:
        wanted = PROTOCOL_CODES[Protocol(spec.protocol)]
        mask &= columns["protocol_codes"] == wanted
    if spec.epoch_range is not None:
        epochs = _epoch_column(columns, len(probe_codes))
        mask &= (epochs >= spec.epoch_range[0]) & (
            epochs <= spec.epoch_range[1]
        )
    if spec.outage_ids:
        outage_ids = _outage_column(columns, len(probe_codes))
        mask &= np.isin(
            outage_ids, np.asarray(spec.outage_ids, dtype=np.int32)
        )
    return mask


def _ping_values(
    spec: QuerySpec,
    columns: Dict[str, np.ndarray],
    mask: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply the value predicate; extract the surviving sample stream.

    Returns ``(mask, values, value_rows)``: the row mask with the
    ``rtt_range`` row predicate folded in, the selected sample values in
    (row, sample) order, and each value's row index.
    """
    offsets = columns["sample_offsets"]
    samples = columns["sample_values"]
    counts = np.diff(offsets)
    in_bounds: Optional[np.ndarray] = None
    if spec.rtt_range is not None:
        low, high = spec.rtt_range
        in_bounds = (samples >= low) & (samples <= high)
        # Row predicate: at least one sample inside the bounds.  This is
        # what makes zone pruning on sample_values sound for `count`.
        cumulative = np.concatenate(
            ([0], np.cumsum(in_bounds, dtype=np.int64))
        )
        per_row = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
        mask = mask & (per_row > 0)
    if not spec.needs_values:
        return mask, np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    sample_sel = np.repeat(mask, counts)
    if in_bounds is not None:
        sample_sel &= in_bounds
    values = np.asarray(samples[sample_sel], dtype=np.float64)
    value_rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)[
        sample_sel
    ]
    return mask, values, value_rows


def _trace_values(
    spec: QuerySpec,
    columns: Dict[str, np.ndarray],
    mask: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The trace value stream: end-to-end RTTs of reached traces.

    A trace contributes one value when its final hop answered from the
    destination address with a finite RTT.  With ``rtt_range`` set, rows
    without an in-bounds value are dropped from the row mask too.
    """
    offsets = columns["hop_offsets"]
    n = len(mask)
    counts = np.diff(offsets)
    has_hops = counts > 0
    end_rtts = np.full(n, np.nan, dtype=np.float64)
    if np.any(has_hops):
        last = offsets[1:][has_hops] - 1
        reached = (
            columns["hop_addresses"][last]
            == columns["dest_addresses"][has_hops]
        )
        rtts = np.asarray(columns["hop_rtts"][last], dtype=np.float64)
        rtts[~reached] = np.nan
        end_rtts[has_hops] = rtts
    has_value = np.isfinite(end_rtts)
    if spec.rtt_range is not None:
        low, high = spec.rtt_range
        mask = mask & has_value & (end_rtts >= low) & (end_rtts <= high)
    if not spec.needs_values:
        return mask, np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    value_rows = np.flatnonzero(mask & has_value).astype(np.int64)
    return mask, end_rtts[value_rows], value_rows


def _group_columns(
    spec: QuerySpec,
    header: Dict[str, Any],
    columns: Dict[str, np.ndarray],
    selected: np.ndarray,
) -> List[np.ndarray]:
    """One value array per group key, over the selected rows."""
    probe_codes = columns["probe_codes"][selected]
    region_codes = columns["region_codes"][selected]
    out: List[np.ndarray] = []
    for key in spec.group_by:
        if key == "country":
            out.append(_table_column(header["probes"], "country")[probe_codes])
        elif key == "platform":
            out.append(
                _table_column(header["probes"], "platform")[probe_codes]
            )
        elif key == "continent":
            out.append(
                _table_column(header["probes"], "continent")[probe_codes]
            )
        elif key == "probe":
            out.append(
                _table_column(header["probes"], "probe_id")[probe_codes]
            )
        elif key == "provider":
            out.append(
                _table_column(header["regions"], "provider_code")[region_codes]
            )
        elif key == "region":
            out.append(
                _table_column(header["regions"], "region_id")[region_codes]
            )
        elif key == "day":
            out.append(columns["days"][selected])
        elif key == "protocol":
            protocol_values = np.array(
                [protocol.value for protocol in PROTOCOL_BY_CODE]
            )
            out.append(protocol_values[columns["protocol_codes"][selected]])
        elif key == "epoch":
            out.append(
                _epoch_column(columns, len(columns["probe_codes"]))[selected]
            )
        elif key == "outage":
            out.append(
                _outage_column(columns, len(columns["probe_codes"]))[selected]
            )
        else:  # pragma: no cover - spec.validate() rejects unknown keys
            raise AssertionError(f"unhandled group key {key!r}")
    return out


def _factorize(
    key_columns: List[np.ndarray], n_rows: int
) -> Tuple[List[GroupKey], np.ndarray]:
    """Group tuples (sorted) and each row's group index."""
    if not key_columns:
        return [()], np.zeros(n_rows, dtype=np.int64)
    combined = np.zeros(n_rows, dtype=np.int64)
    uniques: List[np.ndarray] = []
    for column in key_columns:
        values, inverse = np.unique(column, return_inverse=True)
        uniques.append(values)
        combined = combined * len(values) + inverse
    group_codes, group_inverse = np.unique(combined, return_inverse=True)
    keys: List[GroupKey] = []
    for code in group_codes.tolist():
        parts: List[Any] = []
        for values in reversed(uniques):
            code, part = divmod(code, len(values))
            parts.append(values[part].item())
        keys.append(tuple(reversed(parts)))
    return keys, group_inverse.astype(np.int64)


def scan_shard_task(
    task: Tuple[str, int, QuerySpec],
) -> Dict[GroupKey, GroupState]:
    """Scan one shard; the fork pool's worker entry point (top level).

    ``task`` is ``(shard_path, shard_ordinal, spec)``.  Returns the
    shard's partial per-group states, keyed by group tuple, with keys in
    sorted order so a left-fold over partials is fully deterministic.
    """
    path, ordinal, spec = task
    header, columns = read_columns(path)
    mask = _row_mask(spec, header, columns)
    if spec.kind == PING_KIND:
        mask, values, value_rows = _ping_values(spec, columns, mask)
    else:
        mask, values, value_rows = _trace_values(spec, columns, mask)
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return {}
    keys, group_inverse = _factorize(
        _group_columns(spec, header, columns, selected), selected.size
    )
    group_count = len(keys)
    rows_per_group = np.bincount(group_inverse, minlength=group_count)
    # Stable sort keeps ascending row order inside each group, so the
    # first element of every group's slice is its first matching row.
    order = np.argsort(group_inverse, kind="stable")
    group_ends = np.cumsum(rows_per_group)
    group_starts = group_ends - rows_per_group
    first_rows = selected[order[group_starts]]
    partial: Dict[GroupKey, GroupState] = {}
    for g, key in enumerate(keys):
        partial[key] = GroupState(
            rows=int(rows_per_group[g]),
            first_row=(ordinal, int(first_rows[g])),
        )
    if spec.needs_values and values.size:
        # Map each value's row to its group, then slice the value stream
        # per group preserving (row, sample) order.
        position = np.full(len(mask), -1, dtype=np.int64)
        position[selected] = np.arange(selected.size, dtype=np.int64)
        value_groups = group_inverse[position[value_rows]]
        value_order = np.argsort(value_groups, kind="stable")
        sorted_values = values[value_order]
        values_per_group = np.bincount(value_groups, minlength=group_count)
        value_ends = np.cumsum(values_per_group)
        value_starts = value_ends - values_per_group
        for g, key in enumerate(keys):
            group_values = sorted_values[value_starts[g] : value_ends[g]]
            state = partial[key]
            state.summary.add_array(group_values)
            if spec.quantiles:
                state.sketch = QuantileSketch(epsilon=spec.epsilon)
                state.sketch.add_array(group_values)
            if spec.collect:
                state.values = np.array(group_values, dtype=np.float64)
    elif spec.quantiles:
        for state in partial.values():
            state.sketch = QuantileSketch(epsilon=spec.epsilon)
    return partial


def scan_shards(
    shards: Sequence[ShardPlan],
    spec: QuerySpec,
    workers: int = 1,
) -> Dict[GroupKey, GroupState]:
    """Scan planned shards and merge partials in canonical order.

    ``parallel_map`` returns results in input order regardless of
    worker count, and the left-fold below is order-sensitive only in
    ways both serial and parallel runs share -- which is the whole
    byte-identity argument.
    """
    tasks = [
        (shard.path, shard.ordinal, spec)
        for shard in shards
    ]
    partials = parallel_map(scan_shard_task, tasks, workers=workers)
    merged: Dict[GroupKey, GroupState] = {}
    for partial in partials:
        for key, state in partial.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = state
            else:
                existing.merge(state)
    return merged
