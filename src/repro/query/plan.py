"""The scan planner: zone-map shard pruning.

Every shard header carries (a) the interned probe/region tables and
(b) a per-column zone map -- row count plus value min/max -- written at
commit time (:mod:`repro.store.shards`).  Both are JSON in the header,
so the planner decides which shards a query must touch by reading a few
KiB of header per shard and **zero column bytes**:

- categorical predicates (platform, country, continent, provider,
  region) prune a shard when *no* row of its probe/region tables can
  match;
- range predicates (``day_range``, ``rtt_range``, ``protocol``) prune
  when the filter interval is disjoint from the column's zone interval.

Pruning is conservative: a kept shard may still produce zero matching
rows, but a pruned shard provably cannot produce any.  Shards written
before zone maps existed carry no zones and are never range-pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.measure.results import PROTOCOL_CODES, Protocol
from repro.store.format import read_header
from repro.store.shards import header_zones
from repro.query.spec import PING_KIND, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import DatasetStore

#: Zone column carrying the value stream, per query kind.
VALUE_COLUMNS = {PING_KIND: "sample_values", "traces": "hop_rtts"}

SCAN = "scan"
PRUNE = "prune"


@dataclass(frozen=True)
class ShardPlan:
    """The planner's verdict for one shard."""

    unit: str
    name: str
    kind: str
    ordinal: int
    path: str
    rows: int
    action: str
    reason: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "unit": self.unit,
            "name": self.name,
            "rows": self.rows,
            "action": self.action,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        return payload


@dataclass(frozen=True)
class ScanPlan:
    """Which shards a query scans, and why the rest were pruned."""

    kind: str
    shards: Tuple[ShardPlan, ...]

    @property
    def scanned(self) -> List[ShardPlan]:
        return [shard for shard in self.shards if shard.action == SCAN]

    @property
    def pruned(self) -> List[ShardPlan]:
        return [shard for shard in self.shards if shard.action == PRUNE]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe plan summary (stable: shards in canonical order)."""
        return {
            "kind": self.kind,
            "shards_total": len(self.shards),
            "shards_scanned": len(self.scanned),
            "shards_pruned": len(self.pruned),
            "rows_scanned": sum(shard.rows for shard in self.scanned),
            "rows_pruned": sum(shard.rows for shard in self.pruned),
            "pruned": [shard.as_dict() for shard in self.pruned],
        }


def _ranges_disjoint(
    zone: Optional[Dict[str, Any]],
    low: float,
    high: float,
) -> bool:
    """Whether a filter interval provably misses a column's zone.

    ``None`` bounds (no zone map, or an empty/all-NaN column) never
    prove disjointness here; all-NaN value columns are handled
    separately by the caller.
    """
    if not zone:
        return False
    zone_min = zone.get("min")
    zone_max = zone.get("max")
    if zone_min is None or zone_max is None:
        return False
    return zone_max < low or zone_min > high


def _prune_reason(
    spec: QuerySpec,
    header: Dict[str, Any],
    zones: Optional[Dict[str, Dict[str, Any]]],
) -> Optional[str]:
    """The first predicate that proves this shard has no matching rows."""
    probes = header.get("probes", [])
    regions = header.get("regions", [])
    if spec.platform is not None and not any(
        probe["platform"] == spec.platform for probe in probes
    ):
        return f"no probe on platform {spec.platform!r}"
    if spec.countries and not any(
        probe["country"] in spec.countries for probe in probes
    ):
        return "no probe in requested countries"
    if spec.continents and not any(
        probe["continent"] in spec.continents for probe in probes
    ):
        return "no probe in requested continents"
    if spec.providers and not any(
        region["provider_code"] in spec.providers for region in regions
    ):
        return "no target region of requested providers"
    if spec.regions and not any(
        region["region_id"] in spec.regions for region in regions
    ):
        return "no target region in requested regions"
    if spec.same_continent_only:
        region_continents = {region["continent"] for region in regions}
        if not any(
            probe["continent"] in region_continents for probe in probes
        ):
            return "no probe shares a continent with any target region"
    if zones is None:
        return None
    if spec.day_range is not None and _ranges_disjoint(
        zones.get("days"), spec.day_range[0], spec.day_range[1]
    ):
        day_zone = zones["days"]
        return (
            f"day range {list(spec.day_range)} outside shard days "
            f"[{day_zone['min']}, {day_zone['max']}]"
        )
    if spec.protocol is not None:
        protocol_zone = zones.get("protocol_codes")
        wanted = PROTOCOL_CODES[Protocol(spec.protocol)]
        if (
            protocol_zone
            and protocol_zone.get("min") is not None
            and protocol_zone["min"] == protocol_zone["max"]
            and protocol_zone["min"] != wanted
        ):
            return f"shard carries no {spec.protocol!r} rows"
    if spec.epoch_range is not None:
        # Shards without an `epochs` column are static-topology shards:
        # every row reads as epoch 0, so they carry the synthetic zone
        # [0, 0] for pruning purposes.
        epoch_zone = zones.get("epochs", {"min": 0, "max": 0})
        if _ranges_disjoint(
            epoch_zone, spec.epoch_range[0], spec.epoch_range[1]
        ):
            return (
                f"epoch range {list(spec.epoch_range)} outside shard epochs "
                f"[{epoch_zone['min']}, {epoch_zone['max']}]"
            )
    if spec.outage_ids:
        # Static shards read as all-(-1); the wanted-set check is the
        # conservative interval [min(wanted), max(wanted)].
        outage_zone = zones.get("outage_ids", {"min": -1, "max": -1})
        if _ranges_disjoint(
            outage_zone, min(spec.outage_ids), max(spec.outage_ids)
        ):
            return (
                f"outage ids {list(spec.outage_ids)} outside shard outages "
                f"[{outage_zone['min']}, {outage_zone['max']}]"
            )
    if spec.rtt_range is not None:
        value_zone = zones.get(VALUE_COLUMNS[spec.kind])
        if value_zone is not None:
            if value_zone.get("rows", 0) > 0 and value_zone.get("min") is None:
                # All-NaN value column: a trace shard with no responsive
                # hop has no end-to-end RTTs at all.
                return "no finite values in shard"
            if _ranges_disjoint(
                value_zone, spec.rtt_range[0], spec.rtt_range[1]
            ):
                return (
                    f"rtt range {list(spec.rtt_range)} outside shard values "
                    f"[{value_zone['min']}, {value_zone['max']}]"
                )
    return None


def _shard_rows(header: Dict[str, Any]) -> int:
    for descriptor in header.get("columns", []):
        if descriptor.get("name") == "probe_codes":
            shape = descriptor.get("shape", [0])
            return int(shape[0]) if shape else 0
    return 0


def build_plan(store: "DatasetStore", spec: QuerySpec) -> ScanPlan:
    """Plan a query against a store: one verdict per committed shard.

    Shards appear in canonical journal order; ``ordinal`` is each
    shard's rank within its kind and doubles as the deterministic
    tie-break key exposed by the ``first`` aggregate.
    """
    spec.validate()
    shards: List[ShardPlan] = []
    for entry in store.shard_entries(kind=spec.kind):
        header, _ = read_header(entry.path)
        reason = _prune_reason(spec, header, header_zones(header))
        shards.append(
            ShardPlan(
                unit=entry.unit,
                name=entry.name,
                kind=entry.kind,
                ordinal=entry.ordinal,
                path=str(entry.path),
                rows=_shard_rows(header),
                action=PRUNE if reason else SCAN,
                reason=reason,
            )
        )
    return ScanPlan(kind=spec.kind, shards=tuple(shards))
