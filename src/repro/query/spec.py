"""Canonical query specifications.

A :class:`QuerySpec` is the complete, serializable description of one
query: which record kind to scan, which predicates to push down, which
keys to group by, and which aggregates to produce.  Everything else in
the engine -- the planner, the scan workers, the oracle, the cache key
-- derives from it, so the spec is *canonical*: field normalization in
``__post_init__`` plus sorted-key JSON in :meth:`canonical` guarantee
that two equivalent queries share one :meth:`digest`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.analysis.sketch import DEFAULT_EPSILON
from repro.geo.continents import Continent
from repro.measure.results import Protocol

#: Record kinds a query can scan (match the shard-header ``kind`` tags).
PING_KIND = "pings"
TRACE_KIND = "traces"
QUERY_KINDS = (PING_KIND, TRACE_KIND)

#: Group keys the engine can factorize, in canonical column order.
#: ``country``/``continent``/``platform``/``probe`` come from the probe
#: table, ``provider``/``region`` from the region table, ``day``,
#: ``protocol``, ``epoch`` and ``outage`` from row columns.  Shards
#: written by static-topology runs carry no ``epochs``/``outage_ids``
#: columns; their rows read as epoch ``0`` / outage ``-1``.
GROUP_KEYS = (
    "country",
    "provider",
    "region",
    "day",
    "platform",
    "continent",
    "probe",
    "protocol",
    "epoch",
    "outage",
)

#: Scalar aggregates.  ``count`` counts matching rows (requests);
#: ``samples``/``sum``/``min``/``max``/``mean`` describe the value
#: stream (ping RTT samples, or end-to-end RTTs of reached traces);
#: ``first`` is the ``(shard_ordinal, row_index)`` of the group's first
#: matching row, which reproduces first-seen tie-breaks of legacy
#: record-order iteration.
SCALAR_AGGREGATES = ("count", "samples", "sum", "min", "max", "mean", "first")

DEFAULT_AGGREGATES: Tuple[str, ...] = (
    "count",
    "samples",
    "sum",
    "min",
    "max",
    "mean",
)

#: Aggregates that require extracting the value stream from columns.
VALUE_AGGREGATES = frozenset({"samples", "sum", "min", "max", "mean"})


class QueryError(ValueError):
    """An invalid query specification."""


def _str_tuple(values: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if not values:
        return ()
    if isinstance(values, str):
        values = (values,)
    return tuple(sorted(set(str(value) for value in values)))


@dataclass(frozen=True)
class QuerySpec:
    """One query: kind + pushed-down predicates + grouping + aggregates.

    Filter semantics (all conjunctive):

    - ``platform``/``protocol``/``countries``/``continents`` select rows
      by probe attributes; ``providers``/``regions`` by target region.
    - ``day_range`` is inclusive on both ends.
    - ``rtt_range`` is a *row* predicate -- a row matches when at least
      one of its values falls inside the inclusive bounds -- and also
      filters the value stream to the in-bounds values.  Making it a row
      predicate is what keeps zone-map pruning sound for ``count``.
    - ``same_continent_only`` keeps rows whose probe and target region
      share a continent (the paper's wild-guess filter).
    """

    kind: str = PING_KIND
    platform: Optional[str] = None
    protocol: Optional[str] = None
    countries: Tuple[str, ...] = ()
    providers: Tuple[str, ...] = ()
    regions: Tuple[str, ...] = ()
    continents: Tuple[str, ...] = ()
    day_range: Optional[Tuple[int, int]] = None
    rtt_range: Optional[Tuple[float, float]] = None
    #: Inclusive routing-epoch bounds (dynamic-topology provenance).
    #: Rows from shards without an ``epochs`` column count as epoch 0.
    epoch_range: Optional[Tuple[int, int]] = None
    #: Keep only rows attributed to these network event ids; ``-1``
    #: selects rows no event touched.  Rows from shards without an
    #: ``outage_ids`` column count as ``-1``.
    outage_ids: Tuple[int, ...] = ()
    same_continent_only: bool = False
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[str, ...] = field(default=DEFAULT_AGGREGATES)
    quantiles: Tuple[float, ...] = ()
    epsilon: float = DEFAULT_EPSILON
    collect: bool = False

    def __post_init__(self) -> None:
        # Normalize sequence-typed fields so equivalent specs compare,
        # hash, and digest identically (the dataclass is frozen; use
        # object.__setattr__ as frozen dataclasses themselves do).
        object.__setattr__(self, "countries", _str_tuple(self.countries))
        object.__setattr__(self, "providers", _str_tuple(self.providers))
        object.__setattr__(self, "regions", _str_tuple(self.regions))
        object.__setattr__(self, "continents", _str_tuple(self.continents))
        if isinstance(self.group_by, str):
            object.__setattr__(self, "group_by", (self.group_by,))
        else:
            object.__setattr__(self, "group_by", tuple(self.group_by))
        if isinstance(self.aggregates, str):
            object.__setattr__(self, "aggregates", (self.aggregates,))
        else:
            object.__setattr__(self, "aggregates", tuple(self.aggregates))
        object.__setattr__(
            self, "quantiles", tuple(float(q) for q in self.quantiles)
        )
        if self.day_range is not None:
            lo, hi = self.day_range
            object.__setattr__(self, "day_range", (int(lo), int(hi)))
        if self.rtt_range is not None:
            lo, hi = self.rtt_range
            object.__setattr__(self, "rtt_range", (float(lo), float(hi)))
        if self.epoch_range is not None:
            lo, hi = self.epoch_range
            object.__setattr__(self, "epoch_range", (int(lo), int(hi)))
        if isinstance(self.outage_ids, int):
            object.__setattr__(self, "outage_ids", (self.outage_ids,))
        object.__setattr__(
            self,
            "outage_ids",
            tuple(sorted(set(int(oid) for oid in self.outage_ids))),
        )

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`QueryError` on any inconsistency."""
        if self.kind not in QUERY_KINDS:
            raise QueryError(
                f"unknown query kind {self.kind!r}; expected one of "
                f"{QUERY_KINDS}"
            )
        if self.protocol is not None:
            try:
                Protocol(self.protocol)
            except ValueError:
                raise QueryError(
                    f"unknown protocol {self.protocol!r}"
                ) from None
        for continent in self.continents:
            try:
                Continent(continent)
            except ValueError:
                raise QueryError(
                    f"unknown continent {continent!r}"
                ) from None
        seen = set()
        for key in self.group_by:
            if key not in GROUP_KEYS:
                raise QueryError(
                    f"unknown group key {key!r}; expected one of {GROUP_KEYS}"
                )
            if key in seen:
                raise QueryError(f"duplicate group key {key!r}")
            seen.add(key)
        for aggregate in self.aggregates:
            if aggregate not in SCALAR_AGGREGATES:
                raise QueryError(
                    f"unknown aggregate {aggregate!r}; expected one of "
                    f"{SCALAR_AGGREGATES}"
                )
        for q in self.quantiles:
            if not 0.0 <= q <= 100.0:
                raise QueryError(
                    f"quantile {q} outside [0, 100]"
                )
        if self.day_range is not None and self.day_range[0] > self.day_range[1]:
            raise QueryError(f"empty day_range {self.day_range}")
        if self.rtt_range is not None and self.rtt_range[0] > self.rtt_range[1]:
            raise QueryError(f"empty rtt_range {self.rtt_range}")
        if self.epoch_range is not None:
            if self.epoch_range[0] > self.epoch_range[1]:
                raise QueryError(f"empty epoch_range {self.epoch_range}")
            if self.epoch_range[0] < 0:
                raise QueryError(
                    f"epoch_range bounds must be >= 0, got {self.epoch_range}"
                )
        for oid in self.outage_ids:
            if oid < -1:
                raise QueryError(
                    f"outage id {oid} invalid; event ids are >= 0 and -1 "
                    f"selects unaffected rows"
                )
        if not 0.0 < self.epsilon < 1.0:
            raise QueryError(
                f"epsilon must be in (0, 1), got {self.epsilon}"
            )

    # -- derived properties ------------------------------------------------

    @property
    def needs_values(self) -> bool:
        """Whether the scan must extract the value stream at all."""
        return (
            bool(self.quantiles)
            or self.collect
            or self.rtt_range is not None
            or any(agg in VALUE_AGGREGATES for agg in self.aggregates)
        )

    # -- canonical form ----------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """The JSON-safe canonical dict (stable across sessions)."""
        return {
            "kind": self.kind,
            "platform": self.platform,
            "protocol": self.protocol,
            "countries": list(self.countries),
            "providers": list(self.providers),
            "regions": list(self.regions),
            "continents": list(self.continents),
            "day_range": list(self.day_range) if self.day_range else None,
            "rtt_range": list(self.rtt_range) if self.rtt_range else None,
            "epoch_range": list(self.epoch_range) if self.epoch_range else None,
            "outage_ids": list(self.outage_ids),
            "same_continent_only": self.same_continent_only,
            "group_by": list(self.group_by),
            "aggregates": list(self.aggregates),
            "quantiles": list(self.quantiles),
            "epsilon": self.epsilon,
            "collect": self.collect,
        }

    def digest(self) -> str:
        """sha256 of the canonical JSON serialization."""
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuerySpec":
        """Rebuild a spec from :meth:`canonical` output (exact inverse)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise QueryError(f"unknown query spec fields: {unknown}")
        kwargs: Dict[str, Any] = dict(payload)
        if kwargs.get("day_range") is not None:
            kwargs["day_range"] = tuple(kwargs["day_range"])
        if kwargs.get("rtt_range") is not None:
            kwargs["rtt_range"] = tuple(kwargs["rtt_range"])
        if kwargs.get("epoch_range") is not None:
            kwargs["epoch_range"] = tuple(kwargs["epoch_range"])
        if kwargs.get("outage_ids") is not None:
            kwargs["outage_ids"] = tuple(kwargs["outage_ids"])
        spec = cls(**kwargs)
        spec.validate()
        return spec

    def with_(self, **changes: Any) -> "QuerySpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
