"""An exact, record-at-a-time reference implementation.

This is the slow path the engine replaces, kept in-tree as the parity
oracle: it materializes every record through the legacy block ``record``
view, applies the spec's predicates in plain Python, and aggregates
with NumPy.  Scalar aggregates mirror the engine's exact reduction
structure -- per-shard per-group ``np.sum`` folded in canonical shard
order -- so ``count``/``samples``/``sum``/``min``/``max``/``mean``/
``first`` (and collected values) must match the engine *bit for bit*.
Quantiles are computed exactly with ``np.percentile``, which is what
bounds the sketch's error in tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple, Union

import numpy as np

from repro.measure.results import (
    PingMeasurement,
    TracerouteMeasurement,
)
from repro.store.shards import read_ping_shard, read_trace_shard
from repro.query.builder import QueryResult, group_rows, quantile_label
from repro.query.plan import build_plan
from repro.query.scan import GroupKey, GroupState
from repro.query.spec import PING_KIND, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import DatasetStore

Record = Union[PingMeasurement, TracerouteMeasurement]


def _block_provenance(
    block: Any, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row (epoch, outage id) arrays, defaulting static blocks to
    epoch 0 / outage ``-1`` exactly as the vectorized scan does."""
    epochs = block.epochs
    if epochs is None:
        epochs = np.zeros(n, dtype=np.int32)
    outage_ids = block.outage_ids
    if outage_ids is None:
        outage_ids = np.full(n, -1, dtype=np.int32)
    return epochs, outage_ids


def _row_matches(
    spec: QuerySpec, record: Record, epoch: int, outage: int
) -> bool:
    """The spec's row predicates, evaluated on one record view."""
    meta = record.meta
    if spec.epoch_range is not None and not (
        spec.epoch_range[0] <= epoch <= spec.epoch_range[1]
    ):
        return False
    if spec.outage_ids and outage not in spec.outage_ids:
        return False
    if spec.platform is not None and meta.platform != spec.platform:
        return False
    if spec.protocol is not None and record.protocol.value != spec.protocol:
        return False
    if spec.countries and meta.country not in spec.countries:
        return False
    if spec.continents and meta.continent.value not in spec.continents:
        return False
    if spec.providers and meta.provider_code not in spec.providers:
        return False
    if spec.regions and meta.region_id not in spec.regions:
        return False
    if spec.same_continent_only and meta.continent is not meta.region_continent:
        return False
    if spec.day_range is not None and not (
        spec.day_range[0] <= meta.day <= spec.day_range[1]
    ):
        return False
    return True


def _record_values(spec: QuerySpec, record: Record) -> List[float]:
    """The record's value stream after the ``rtt_range`` value filter."""
    if isinstance(record, PingMeasurement):
        values = list(record.samples)
    else:
        rtt = record.end_to_end_rtt_ms
        values = [rtt] if rtt is not None and np.isfinite(rtt) else []
    if spec.rtt_range is not None:
        low, high = spec.rtt_range
        values = [value for value in values if low <= value <= high]
    return values


def _group_key(
    spec: QuerySpec, record: Record, epoch: int, outage: int
) -> GroupKey:
    meta = record.meta
    parts: List[Any] = []
    for key in spec.group_by:
        if key == "epoch":
            parts.append(epoch)
        elif key == "outage":
            parts.append(outage)
        elif key == "country":
            parts.append(meta.country)
        elif key == "provider":
            parts.append(meta.provider_code)
        elif key == "region":
            parts.append(meta.region_id)
        elif key == "day":
            parts.append(meta.day)
        elif key == "platform":
            parts.append(meta.platform)
        elif key == "continent":
            parts.append(meta.continent.value)
        elif key == "probe":
            parts.append(meta.probe_id)
        elif key == "protocol":
            parts.append(record.protocol.value)
        else:  # pragma: no cover - spec.validate() rejects unknown keys
            raise AssertionError(f"unhandled group key {key!r}")
    return tuple(parts)


def oracle_execute(store: "DatasetStore", spec: QuerySpec) -> QueryResult:
    """Execute a query exactly, one record at a time.

    Scans every *planned* shard (pruned shards are provably empty, so
    sharing the plan keeps the comparison about scan correctness) in
    canonical order and finalizes through the same
    :func:`~repro.query.builder.group_rows` as the engine -- with the
    quantile columns recomputed exactly afterwards.
    """
    spec.validate()
    plan = build_plan(store, spec)
    merged: Dict[GroupKey, GroupState] = {}
    exact_values: Dict[GroupKey, List[np.ndarray]] = {}
    for shard in plan.scanned:
        if spec.kind == PING_KIND:
            block = read_ping_shard(shard.path)
        else:
            block = read_trace_shard(shard.path)
        per_shard: Dict[GroupKey, Tuple[int, List[float]]] = {}
        epochs, outage_ids = _block_provenance(block, len(block))
        for index in range(len(block)):
            record = block.record(index)
            epoch = int(epochs[index])
            outage = int(outage_ids[index])
            if not _row_matches(spec, record, epoch, outage):
                continue
            values = _record_values(spec, record)
            if spec.rtt_range is not None and not values:
                continue
            key = _group_key(spec, record, epoch, outage)
            state = merged.get(key)
            if state is None:
                state = merged[key] = GroupState(
                    first_row=(shard.ordinal, index)
                )
            state.rows += 1
            if key not in per_shard:
                per_shard[key] = (index, [])
            if spec.needs_values:
                per_shard[key][1].extend(values)
        # Mirror the engine's reduction: one np.sum per shard per group,
        # folded in canonical shard order.
        for key, (_, values) in per_shard.items():
            if not values:
                continue
            array = np.asarray(values, dtype=np.float64)
            state = merged[key]
            state.summary.add_array(array)
            if spec.quantiles or spec.collect:
                exact_values.setdefault(key, []).append(array)
    collected = {
        key: np.concatenate(arrays) for key, arrays in exact_values.items()
    }
    if spec.collect:
        for key, array in collected.items():
            merged[key].values = array
    rows = group_rows(spec, merged)
    if spec.quantiles:
        for row in rows:
            key = tuple(row["group"][name] for name in spec.group_by)
            array = collected.get(key)
            for q in spec.quantiles:
                row[quantile_label(q)] = (
                    float(np.percentile(array, q))
                    if array is not None and array.size
                    else None
                )
    return QueryResult(
        spec=spec,
        rows=rows,
        plan=plan.as_dict(),
        meta={"oracle": True},
    )
