"""Concrete last-mile models calibrated to the paper's Figs. 7-9.

Targets: wireless USR-ISP medians around 20-25 ms with per-probe
coefficient of variation near 0.5 for both WiFi and cellular; wired
last-mile near 10 ms with low variation, matching both RIPE Atlas probes
and the Speedchecker home RTR-ISP segment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LastMileConfig
from repro.lastmile.base import (
    AccessKind,
    LastMileDraw,
    LastMileModel,
    LastMileParams,
    lognormal_ms,
)


@dataclass
class HomeWifiLastMile(LastMileModel):
    """Home probe: WiFi air segment plus a wired access segment.

    ``quality`` scales the wireless median per country (see
    :attr:`repro.core.config.LastMileConfig.country_quality`).
    """

    config: LastMileConfig
    quality: float = 1.0
    kind = AccessKind.HOME_WIFI

    def draw(self, rng: np.random.Generator) -> LastMileDraw:
        air = lognormal_ms(
            self.config.wifi_air_median_ms * self.quality,
            self.config.wifi_air_sigma,
            rng,
        )
        if rng.random() < self.config.bufferbloat_probability:
            air *= self.config.bufferbloat_inflation
        wire = lognormal_ms(
            self.config.home_wire_median_ms * self.quality,
            self.config.home_wire_sigma,
            rng,
        )
        return LastMileDraw(air_ms=air, wire_ms=wire)

    def batch_params(self) -> LastMileParams:
        return (
            self.config.wifi_air_median_ms * self.quality,
            self.config.wifi_air_sigma,
            self.config.home_wire_median_ms * self.quality,
            self.config.home_wire_sigma,
            self.config.bufferbloat_probability,
            self.config.bufferbloat_inflation,
        )

    def median_total_ms(self) -> float:
        return (
            self.config.wifi_air_median_ms + self.config.home_wire_median_ms
        ) * self.quality


@dataclass
class CellularLastMile(LastMileModel):
    """Cellular probe: one radio+RAN segment straight into the ISP."""

    config: LastMileConfig
    quality: float = 1.0
    kind = AccessKind.CELLULAR

    def draw(self, rng: np.random.Generator) -> LastMileDraw:
        air = lognormal_ms(
            self.config.cellular_median_ms * self.quality,
            self.config.cellular_sigma,
            rng,
        )
        if rng.random() < self.config.bufferbloat_probability:
            air *= self.config.bufferbloat_inflation
        return LastMileDraw(air_ms=air, wire_ms=0.0)

    def batch_params(self) -> LastMileParams:
        return (
            self.config.cellular_median_ms * self.quality,
            self.config.cellular_sigma,
            0.0,
            0.0,
            self.config.bufferbloat_probability,
            self.config.bufferbloat_inflation,
        )

    def median_total_ms(self) -> float:
        return self.config.cellular_median_ms * self.quality


@dataclass
class WiredLastMile(LastMileModel):
    """Managed wired connection (RIPE Atlas style)."""

    config: LastMileConfig
    quality: float = 1.0
    kind = AccessKind.WIRED

    def draw(self, rng: np.random.Generator) -> LastMileDraw:
        wire = lognormal_ms(
            self.config.wired_median_ms,
            self.config.wired_sigma,
            rng,
        )
        return LastMileDraw(air_ms=0.0, wire_ms=wire)

    def batch_params(self) -> LastMileParams:
        return (
            0.0,
            0.0,
            self.config.wired_median_ms,
            self.config.wired_sigma,
            0.0,
            1.0,
        )

    def median_total_ms(self) -> float:
        return self.config.wired_median_ms


def model_for(
    kind: AccessKind, config: LastMileConfig, country: str = ""
) -> LastMileModel:
    """The last-mile model for an access kind and (optionally) country."""
    quality = config.country_quality.get(country, 1.0)
    kind = AccessKind(kind)
    if kind is AccessKind.HOME_WIFI:
        return HomeWifiLastMile(config=config, quality=quality)
    if kind is AccessKind.CELLULAR:
        return CellularLastMile(config=config, quality=quality)
    return WiredLastMile(config=config, quality=quality)
