"""Last-mile abstractions.

The paper decomposes the "last mile" -- probe to first hop inside the
serving ISP's AS -- into segments it can observe in traceroutes
(section 5):

- ``SC home (USR-ISP)``: user device -> ISP edge, over a home router.
  This is the *air* segment (WiFi) plus the *wire* segment (DSL/cable).
- ``SC home (RTR-ISP)``: home router -> ISP edge; the wire segment only.
- ``SC cell``: device -> first cellular hop; a single radio+RAN segment.
- ``Atlas``: a managed wired connection.

A :class:`LastMileDraw` carries both segments so the analysis layer can
reproduce all four series of the paper's Fig. 7.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

import numpy as np


class AccessKind(str, Enum):
    """How a probe reaches its serving ISP."""

    HOME_WIFI = "home_wifi"
    CELLULAR = "cellular"
    WIRED = "wired"

    @property
    def is_wireless(self) -> bool:
        return self in (AccessKind.HOME_WIFI, AccessKind.CELLULAR)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class LastMileDraw:
    """One latency sample of the last mile, decomposed by segment.

    ``air_ms`` is the wireless leg (zero for wired access); ``wire_ms``
    is the fixed leg between the home router / base-station aggregation
    and the ISP edge (zero for cellular, where the radio access network
    is folded into ``air_ms`` as in the paper's inference).
    """

    air_ms: float
    wire_ms: float

    @property
    def total_ms(self) -> float:
        """Probe-to-ISP latency (the paper's USR-ISP segment)."""
        return self.air_ms + self.wire_ms

    def __post_init__(self) -> None:
        if self.air_ms < 0 or self.wire_ms < 0:
            raise ValueError(
                f"last-mile segments must be non-negative: {self.air_ms}, {self.wire_ms}"
            )


class LastMileModel(ABC):
    """A distribution over last-mile latency draws."""

    kind: AccessKind

    @abstractmethod
    def draw(self, rng: np.random.Generator) -> LastMileDraw:
        """One last-mile latency sample."""

    def median_total_ms(self) -> float:
        """Median of the USR-ISP total (analytic, for calibration tests)."""
        raise NotImplementedError


def lognormal_ms(
    median: float, sigma: float, rng: np.random.Generator
) -> float:
    """A lognormal latency draw parameterised by its median.

    Latency distributions at the access link are right-skewed with a
    hard floor; the lognormal is the standard fit in last-mile studies.
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    return float(median * np.exp(sigma * rng.standard_normal()))
