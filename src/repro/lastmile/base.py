"""Last-mile abstractions.

The paper decomposes the "last mile" -- probe to first hop inside the
serving ISP's AS -- into segments it can observe in traceroutes
(section 5):

- ``SC home (USR-ISP)``: user device -> ISP edge, over a home router.
  This is the *air* segment (WiFi) plus the *wire* segment (DSL/cable).
- ``SC home (RTR-ISP)``: home router -> ISP edge; the wire segment only.
- ``SC cell``: device -> first cellular hop; a single radio+RAN segment.
- ``Atlas``: a managed wired connection.

A :class:`LastMileDraw` carries both segments so the analysis layer can
reproduce all four series of the paper's Fig. 7.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np


class AccessKind(str, Enum):
    """How a probe reaches its serving ISP."""

    HOME_WIFI = "home_wifi"
    CELLULAR = "cellular"
    WIRED = "wired"

    @property
    def is_wireless(self) -> bool:
        return self in (AccessKind.HOME_WIFI, AccessKind.CELLULAR)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class LastMileDraw:
    """One latency sample of the last mile, decomposed by segment.

    ``air_ms`` is the wireless leg (zero for wired access); ``wire_ms``
    is the fixed leg between the home router / base-station aggregation
    and the ISP edge (zero for cellular, where the radio access network
    is folded into ``air_ms`` as in the paper's inference).
    """

    air_ms: float
    wire_ms: float

    @property
    def total_ms(self) -> float:
        """Probe-to-ISP latency (the paper's USR-ISP segment)."""
        return self.air_ms + self.wire_ms

    def __post_init__(self) -> None:
        if self.air_ms < 0 or self.wire_ms < 0:
            raise ValueError(
                f"last-mile segments must be non-negative: {self.air_ms}, {self.wire_ms}"
            )


#: Parameter vector describing a last-mile model for batched sampling:
#: ``(air_median, air_sigma, wire_median, wire_sigma,
#: bufferbloat_probability, bufferbloat_inflation)``.  A zero median
#: means the segment is absent and always draws exactly zero.
LastMileParams = Tuple[float, float, float, float, float, float]


class LastMileModel(ABC):
    """A distribution over last-mile latency draws."""

    kind: AccessKind

    @abstractmethod
    def draw(self, rng: np.random.Generator) -> LastMileDraw:
        """One last-mile latency sample."""

    @abstractmethod
    def batch_params(self) -> LastMileParams:
        """The model's :data:`LastMileParams` for vectorized sampling."""

    def draw_batch(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``n`` last-mile samples as ``(air_ms, wire_ms)`` arrays.

        Distributionally identical to ``n`` :meth:`draw` calls but issues
        exactly three array draws (air noise, bufferbloat uniforms, wire
        noise) regardless of ``n``.
        """
        air_median, air_sigma, wire_median, wire_sigma, bloat_p, bloat_x = (
            self.batch_params()
        )
        z_air = rng.standard_normal(n)
        u_bloat = rng.random(n)
        z_wire = rng.standard_normal(n)
        air = lognormal_ms_array(air_median, air_sigma, z_air)
        if bloat_p > 0.0:
            air = np.where(u_bloat < bloat_p, air * bloat_x, air)
        wire = lognormal_ms_array(wire_median, wire_sigma, z_wire)
        return air, wire

    def median_total_ms(self) -> float:
        """Median of the USR-ISP total (analytic, for calibration tests)."""
        raise NotImplementedError


def lognormal_ms(
    median: float, sigma: float, rng: np.random.Generator
) -> float:
    """A lognormal latency draw parameterised by its median.

    Latency distributions at the access link are right-skewed with a
    hard floor; the lognormal is the standard fit in last-mile studies.
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    return float(median * np.exp(sigma * rng.standard_normal()))


def lognormal_ms_array(
    median: float, sigma: float, z: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`lognormal_ms` over pre-drawn standard normals.

    A zero ``median`` denotes an absent segment and yields exact zeros
    (the array analogue of not drawing the segment at all).
    """
    if median < 0:
        raise ValueError(f"median must be non-negative, got {median}")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if median == 0.0:
        return np.zeros(np.shape(z))
    return median * np.exp(sigma * z)
