"""A 5G last-mile model (the paper's forward-looking discussion).

Section 5 and the section-7 discussion note that 5G promises air-latency
down to 1 ms, but that early in-the-wild measurements (Narayanan et al.)
show only minimal improvements over LTE because the radio leg is a small
part of the last mile once the RAN, the packet core, and CGN middleboxes
are counted.  This model implements exactly that: a configurable radio
improvement over the cellular baseline plus an irreducible core-network
floor, so experiments can ask *how much 5G would actually help* the MTP
feasibility question.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LastMileConfig
from repro.lastmile.base import (
    AccessKind,
    LastMileDraw,
    LastMileModel,
    LastMileParams,
    lognormal_ms,
)


@dataclass
class FiveGLastMile(LastMileModel):
    """Cellular access with a 5G radio leg.

    ``radio_improvement`` scales the radio part of the cellular median
    (1.0 = no better than LTE, 0.1 = the promised 10x).  The packet-core
    floor is untouched by the radio generation, which is why measured
    end-to-end gains are modest.
    """

    config: LastMileConfig
    quality: float = 1.0
    radio_improvement: float = 0.5
    #: Share of the LTE cellular median attributable to the radio leg;
    #: the remainder is RAN backhaul + packet core + CGN.
    radio_share: float = 0.45
    kind = AccessKind.CELLULAR

    def __post_init__(self) -> None:
        if not 0.0 < self.radio_improvement <= 1.0:
            raise ValueError(
                f"radio improvement must be in (0, 1], got {self.radio_improvement}"
            )
        if not 0.0 < self.radio_share < 1.0:
            raise ValueError(
                f"radio share must be in (0, 1), got {self.radio_share}"
            )

    @property
    def _median_ms(self) -> float:
        baseline = self.config.cellular_median_ms * self.quality
        radio = baseline * self.radio_share * self.radio_improvement
        core = baseline * (1.0 - self.radio_share)
        return radio + core

    def draw(self, rng: np.random.Generator) -> LastMileDraw:
        air = lognormal_ms(self._median_ms, self.config.cellular_sigma, rng)
        if rng.random() < self.config.bufferbloat_probability:
            air *= self.config.bufferbloat_inflation
        return LastMileDraw(air_ms=air, wire_ms=0.0)

    def batch_params(self) -> LastMileParams:
        return (
            self._median_ms,
            self.config.cellular_sigma,
            0.0,
            0.0,
            self.config.bufferbloat_probability,
            self.config.bufferbloat_inflation,
        )

    def median_total_ms(self) -> float:
        return self._median_ms
