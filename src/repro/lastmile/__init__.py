"""Last-mile access models: home WiFi, cellular, and managed wired."""

from repro.lastmile.base import AccessKind, LastMileDraw, LastMileModel
from repro.lastmile.fiveg import FiveGLastMile
from repro.lastmile.models import (
    CellularLastMile,
    HomeWifiLastMile,
    WiredLastMile,
    model_for,
)

__all__ = [
    "AccessKind",
    "CellularLastMile",
    "FiveGLastMile",
    "HomeWifiLastMile",
    "LastMileDraw",
    "LastMileModel",
    "WiredLastMile",
    "model_for",
]
