"""Fault-injecting wrappers around the platform, engine, and file layers.

Each wrapper delegates to a real object and consults the per-attempt
fault generators in an :class:`~repro.faults.plan.AttemptFaults` before
(or after) the real operation:

- :class:`FaultySpeedchecker` / :class:`FaultyAtlas` fail platform API
  calls with timeouts, HTTP-5xx-style errors, and mid-unit quota races;
- :class:`FaultyEngine` loses ping replies, disconnects a probe
  mid-batch, and truncates traceroutes;
- :class:`FaultyFileOps` tears shard writes, flips bytes, and fails
  fsyncs.

Every fired fault appends a human-readable event to the attempt's log so
the resilient runner can journal exactly what happened.  All draws come
from the attempt's forked generators -- the schedule is a pure function
of (seed, unit, attempt, config), never of wall-clock or call order
across units.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.faults.errors import FsyncFailure, PlatformError, PlatformTimeout, TornWrite
from repro.faults.plan import AttemptFaults
from repro.measure.batch import PingRequest, TraceRequest
from repro.measure.engine import BatchEngine
from repro.measure.results import PingBlock, TracerouteMeasurement
from repro.platforms.probe import Probe
from repro.platforms.protocols import AtlasLike, SpeedcheckerLike
from repro.platforms.speedchecker import VPSnapshot
from repro.store.fileops import FileOps


def _draw_api_fault(faults: AttemptFaults, platform: str, operation: str) -> None:
    """One API-fault draw; raises if the call should fail."""
    config = faults.config
    if config.api_timeout_rate + config.api_error_rate <= 0.0:
        return
    draw = float(faults.api.random())
    if draw < config.api_timeout_rate:
        faults.record(f"api-timeout:{operation}")
        raise PlatformTimeout(f"{platform}: {operation} timed out")
    if draw < config.api_timeout_rate + config.api_error_rate:
        faults.record(f"api-error:{operation}")
        raise PlatformError(f"{platform}: {operation} returned HTTP 503")


class FaultySpeedchecker:
    """A Speedchecker platform whose API calls can fail.

    Structurally a :class:`~repro.platforms.protocols.SpeedcheckerLike`.
    Inventory queries (``countries`` etc.) are pure local bookkeeping
    and pass straight through; the remote-API-shaped operations --
    snapshots and probe selection -- draw for timeout/error faults, and
    quota charging can lose a race against a simulated concurrent
    consumer that drains part of the remaining budget.
    """

    def __init__(self, inner: SpeedcheckerLike, faults: AttemptFaults) -> None:
        self._inner = inner
        self._faults = faults
        self._race_checked = False

    @property
    def name(self) -> str:
        return self._inner.name

    # -- pure passthrough --------------------------------------------------

    def countries(self) -> List[str]:
        return self._inner.countries()

    def countries_with_at_least(self, minimum: int) -> List[str]:
        return self._inner.countries_with_at_least(minimum)

    def connected_in_country(
        self, iso: str, snapshot: VPSnapshot
    ) -> List[Probe]:
        return self._inner.connected_in_country(iso, snapshot)

    @property
    def daily_quota(self) -> int:
        return self._inner.daily_quota

    @property
    def remaining_quota(self) -> int:
        return self._inner.remaining_quota

    def refresh_quota(self) -> None:
        self._inner.refresh_quota()

    # -- faulted API calls -------------------------------------------------

    def snapshot(
        self, day: int, hour: int, rng: Optional[np.random.Generator] = None
    ) -> VPSnapshot:
        _draw_api_fault(self._faults, self.name, "snapshot")
        return self._inner.snapshot(day, hour, rng=rng)

    def select_probes(
        self,
        iso: str,
        snapshot: VPSnapshot,
        count: int,
        pool: Optional[List[Probe]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Probe]:
        _draw_api_fault(self._faults, self.name, "select_probes")
        return self._inner.select_probes(iso, snapshot, count, pool=pool, rng=rng)

    def _maybe_quota_race(self) -> None:
        """At most once per attempt, a concurrent consumer may steal quota."""
        if self._race_checked:
            return
        self._race_checked = True
        config = self._faults.config
        if config.quota_race_rate <= 0.0:
            return
        if float(self._faults.api.random()) >= config.quota_race_rate:
            return
        stolen = int(self._inner.remaining_quota * config.quota_race_fraction)
        if stolen <= 0:
            return
        self._inner.charge(stolen)
        self._faults.record(f"quota-race:{stolen}")

    def charge(self, requests: int = 1) -> None:
        self._maybe_quota_race()
        self._inner.charge(requests)

    def charge_up_to(self, requests: int) -> int:
        self._maybe_quota_race()
        return self._inner.charge_up_to(requests)


class FaultyAtlas:
    """An Atlas platform whose connected-set query can fail."""

    def __init__(self, inner: AtlasLike, faults: AttemptFaults) -> None:
        self._inner = inner
        self._faults = faults

    @property
    def name(self) -> str:
        return self._inner.name

    def connected_probes(
        self, rng: Optional[np.random.Generator] = None
    ) -> List[Probe]:
        _draw_api_fault(self._faults, self.name, "connected_probes")
        return self._inner.connected_probes(rng=rng)


class FaultyEngine:
    """A batch engine with reply loss, probe disconnects, and truncation.

    Structurally a :class:`~repro.measure.engine.BatchEngine`.  The
    disconnect decision is made once per attempt, on the ping batch: the
    victim probe keeps only the pings issued before the disconnect and
    loses all of its traceroutes (a disconnected device answers
    nothing).  Reply loss and trace truncation are per-request draws
    from the measurement fault stream.
    """

    def __init__(self, inner: BatchEngine, faults: AttemptFaults) -> None:
        self._inner = inner
        self._faults = faults
        self._disconnect_decided = False
        self._disconnect_victim: Optional[str] = None
        self._disconnect_after = 0

    def _decide_disconnect(self, requests: Sequence[PingRequest]) -> None:
        """One disconnect draw per attempt, over the ping batch."""
        if self._disconnect_decided:
            return
        self._disconnect_decided = True
        config = self._faults.config
        if config.probe_disconnect_rate <= 0.0 or not requests:
            return
        if float(self._faults.measure.random()) >= config.probe_disconnect_rate:
            return
        probe_ids = sorted({request.probe.probe_id for request in requests})
        victim = probe_ids[int(self._faults.measure.integers(len(probe_ids)))]
        owned = sum(
            1 for request in requests if request.probe.probe_id == victim
        )
        self._disconnect_victim = victim
        self._disconnect_after = int(self._faults.measure.integers(owned))
        self._faults.record(
            f"probe-disconnect:{victim}@{self._disconnect_after}"
        )

    def _surviving_pings(
        self, requests: List[PingRequest]
    ) -> List[PingRequest]:
        if self._disconnect_victim is None:
            return requests
        kept: List[PingRequest] = []
        seen_of_victim = 0
        for request in requests:
            if request.probe.probe_id == self._disconnect_victim:
                if seen_of_victim >= self._disconnect_after:
                    continue
                seen_of_victim += 1
            kept.append(request)
        return kept

    def ping_batch(
        self,
        requests: Sequence[PingRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> PingBlock:
        batch = list(requests)
        self._decide_disconnect(batch)
        batch = self._surviving_pings(batch)
        config = self._faults.config
        if config.reply_loss_rate > 0.0 and batch:
            draws = self._faults.measure.random(len(batch))
            lost = int(np.count_nonzero(draws < config.reply_loss_rate))
            if lost:
                batch = [
                    request
                    for request, draw in zip(batch, draws)
                    if draw >= config.reply_loss_rate
                ]
                self._faults.record(f"reply-loss:{lost}")
        return self._inner.ping_batch(batch, rng=rng)

    def traceroute_batch(
        self,
        requests: Sequence[TraceRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> List[TracerouteMeasurement]:
        batch = list(requests)
        if self._disconnect_victim is not None:
            survivors = [
                request
                for request in batch
                if request.probe.probe_id != self._disconnect_victim
            ]
            if len(survivors) != len(batch):
                self._faults.record(
                    f"trace-drop:{len(batch) - len(survivors)}"
                )
            batch = survivors
        records = self._inner.traceroute_batch(batch, rng=rng)
        config = self._faults.config
        if config.trace_truncation_rate > 0.0 and records:
            draws = self._faults.measure.random(len(records))
            truncated = 0
            for index, record in enumerate(records):
                if draws[index] >= config.trace_truncation_rate:
                    continue
                hops = record.hops
                if len(hops) <= 1:
                    continue
                keep = 1 + int(self._faults.measure.integers(len(hops) - 1))
                records[index] = dataclasses.replace(
                    record, hops=hops[:keep]
                )
                truncated += 1
            if truncated:
                self._faults.record(f"trace-truncated:{truncated}")
        return records


class FaultyFileOps(FileOps):
    """Shard file operations that can tear, corrupt, or fail fsync.

    One storage draw per shard write decides its fate: a *torn write*
    leaves an unsynced prefix on disk and raises; a *corrupt write*
    flips one byte and returns silently (only the post-write CRC
    verification catches it); an *fsync failure* writes everything but
    raises before durability is guaranteed.
    """

    def __init__(self, faults: AttemptFaults) -> None:
        self._faults = faults

    def write_bytes(self, path: Path, payload: bytes) -> None:
        config = self._faults.config
        total = (
            config.torn_write_rate
            + config.corrupt_write_rate
            + config.fsync_failure_rate
        )
        if total <= 0.0 or not payload:
            super().write_bytes(path, payload)
            return
        draw = float(self._faults.storage.random())
        if draw < config.torn_write_rate:
            cut = int(self._faults.storage.integers(len(payload)))
            with open(path, "wb") as fh:
                fh.write(payload[:cut])
            self._faults.record(f"torn-write:{path.name}@{cut}")
            raise TornWrite(f"{path}: write torn at byte {cut}")
        if draw < config.torn_write_rate + config.corrupt_write_rate:
            index = int(self._faults.storage.integers(len(payload)))
            corrupted = bytearray(payload)
            corrupted[index] ^= 0xFF
            super().write_bytes(path, bytes(corrupted))
            self._faults.record(f"corrupt-write:{path.name}@{index}")
            return
        if draw < total:
            with open(path, "wb") as fh:
                fh.write(payload)
                fh.flush()
            self._faults.record(f"fsync-failure:{path.name}")
            raise FsyncFailure(f"{path}: fsync failed after write")
        super().write_bytes(path, payload)
