"""The injected-fault taxonomy.

Every failure raised by :mod:`repro.faults` derives from
:class:`InjectedFault`, so the resilient campaign runner can tell a
deterministic, retryable injection apart from a genuine bug: the retry
machinery catches :class:`InjectedFault` (plus shard corruption surfaced
as :class:`~repro.store.format.ShardFormatError` by post-write
verification) and never a broad ``Exception`` -- anything else
propagates and fails the run loudly.
"""

from __future__ import annotations


class InjectedFault(RuntimeError):
    """Base class of every deterministically injected failure."""


class PlatformTimeout(InjectedFault):
    """A platform API call timed out (the commercial API stalling)."""


class PlatformError(InjectedFault):
    """A platform API call failed with an HTTP-5xx-style server error."""


class StorageFault(InjectedFault):
    """Base class of injected shard-write failures."""


class TornWrite(StorageFault):
    """A shard write stopped partway: only a prefix reached the disk."""


class FsyncFailure(StorageFault):
    """The shard's fsync failed: bytes were written but durability is
    unknown, so the writer must treat the shard as lost."""
