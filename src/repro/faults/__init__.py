"""Deterministic fault injection for chaos-testing the campaign runner.

The package splits into four layers:

- :mod:`repro.faults.config` -- :class:`FaultConfig` (per-class fault
  rates) and :class:`RetryPolicy` (retry budgets, virtual backoff,
  circuit-breaker thresholds);
- :mod:`repro.faults.plan` -- :class:`FaultPlan`, the seeded factory
  turning (seed, config) into per-(unit, attempt) fault generators;
- :mod:`repro.faults.injectors` -- wrappers that inject faults at the
  platform API, batch engine, and shard file-ops boundaries;
- :mod:`repro.faults.errors` -- the :class:`InjectedFault` taxonomy the
  resilient runner retries on.

Faults are an overlay: nothing here touches
:class:`~repro.core.config.SimulationConfig`, and an inactive (all-zero)
config is byte-identical to running without fault injection at all.
"""

from repro.faults.config import (
    FaultConfig,
    RetryPolicy,
    fault_digest,
    load_fault_config,
)
from repro.faults.errors import (
    FsyncFailure,
    InjectedFault,
    PlatformError,
    PlatformTimeout,
    StorageFault,
    TornWrite,
)
from repro.faults.injectors import (
    FaultyAtlas,
    FaultyEngine,
    FaultyFileOps,
    FaultySpeedchecker,
)
from repro.faults.plan import AttemptFaults, FaultPlan

__all__ = [
    "AttemptFaults",
    "FaultConfig",
    "FaultPlan",
    "FaultyAtlas",
    "FaultyEngine",
    "FaultyFileOps",
    "FaultySpeedchecker",
    "FsyncFailure",
    "InjectedFault",
    "PlatformError",
    "PlatformTimeout",
    "RetryPolicy",
    "StorageFault",
    "TornWrite",
    "fault_digest",
    "load_fault_config",
]
