"""Fault-injection and resilience configuration.

:class:`FaultConfig` is deliberately *not* a field of
:class:`~repro.core.config.SimulationConfig`: the simulation config's
digest is journaled by every checkpointed run, and folding fault rates
into it would change the digest -- and therefore the journal bytes -- of
every existing fault-free store.  Fault injection is an overlay passed
separately to
:func:`~repro.measure.campaign.run_campaign_checkpointed`; an inactive
(all-zero) config is equivalent to passing none at all, which is what
keeps the fault-free path byte-identical.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

from repro.core.config import dataclass_digest

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FaultConfig:
    """Per-class fault probabilities, all ``0.0`` (off) by default.

    Rates are per *draw site*: an API rate of 0.1 fails roughly one in
    ten platform calls, a storage rate of 0.1 roughly one in ten shard
    writes.  The realized schedule for a given config is a pure function
    of the campaign seed -- see :class:`~repro.faults.plan.FaultPlan`.
    """

    # -- platform API faults (Speedchecker/Atlas boundary) -----------------
    #: Probability an API call (snapshot, probe selection, connected-set
    #: query) times out.
    api_timeout_rate: float = 0.0
    #: Probability an API call fails with an HTTP-5xx-style error.
    api_error_rate: float = 0.0
    #: Probability that, once per attempt, a concurrent quota consumer
    #: drains part of the remaining daily budget between scheduling and
    #: charging (the mid-unit :class:`QuotaExhausted` scenario).
    quota_race_rate: float = 0.0
    #: Fraction of the remaining quota a winning race steals.
    quota_race_fraction: float = 0.5

    # -- measurement-level faults (batch engine boundary) ------------------
    #: Probability each scheduled ping request is lost without a reply.
    reply_loss_rate: float = 0.0
    #: Probability one probe disconnects mid-batch, losing its remaining
    #: pings and all of its traceroutes.
    probe_disconnect_rate: float = 0.0
    #: Probability each traceroute comes back truncated mid-path.
    trace_truncation_rate: float = 0.0

    # -- storage faults (shard file-ops boundary) --------------------------
    #: Probability a shard write tears, leaving a prefix on disk.
    torn_write_rate: float = 0.0
    #: Probability a shard write silently flips one byte (caught only by
    #: post-write CRC verification).
    corrupt_write_rate: float = 0.0
    #: Probability the shard's fsync fails after a complete write.
    fsync_failure_rate: float = 0.0

    def __post_init__(self) -> None:
        for config_field in dataclasses.fields(self):
            value = getattr(self, config_field.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{config_field.name} must be in [0, 1], got {value}"
                )
        if self.api_timeout_rate + self.api_error_rate > 1.0:
            raise ValueError(
                "api_timeout_rate + api_error_rate must not exceed 1"
            )
        storage = (
            self.torn_write_rate
            + self.corrupt_write_rate
            + self.fsync_failure_rate
        )
        if storage > 1.0:
            raise ValueError("storage fault rates must not sum past 1")

    # -- activity ----------------------------------------------------------

    @property
    def rates(self) -> Dict[str, float]:
        """Every ``*_rate`` field by name (parameters like the quota-race
        fraction are excluded)."""
        return {
            config_field.name: float(getattr(self, config_field.name))
            for config_field in dataclasses.fields(self)
            if config_field.name.endswith("_rate")
        }

    @property
    def api_active(self) -> bool:
        return (
            self.api_timeout_rate + self.api_error_rate + self.quota_race_rate
            > 0.0
        )

    @property
    def measure_active(self) -> bool:
        return (
            self.reply_loss_rate
            + self.probe_disconnect_rate
            + self.trace_truncation_rate
            > 0.0
        )

    @property
    def storage_active(self) -> bool:
        return (
            self.torn_write_rate
            + self.corrupt_write_rate
            + self.fsync_failure_rate
            > 0.0
        )

    @property
    def active(self) -> bool:
        """Whether any fault class can fire.  An inactive config is
        treated exactly like no fault injection at all."""
        return self.api_active or self.measure_active or self.storage_active

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultConfig":
        """Build a config from a plain mapping, rejecting unknown keys."""
        known = {config_field.name for config_field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown fault config keys: {', '.join(unknown)}")
        return cls(**{key: float(value) for key, value in payload.items()})


def load_fault_config(path: PathLike) -> FaultConfig:
    """Load a :class:`FaultConfig` from a JSON file of rate overrides."""
    with open(Path(path), "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: fault config must be a JSON object")
    return FaultConfig.from_dict(payload)


def fault_digest(config: FaultConfig) -> str:
    """A stable hex digest of a fault config.

    Journaled in the ``begin`` entry of fault-injected runs and checked
    on resume, so a faulted campaign can only be continued under the
    exact fault schedule that started it.
    """
    return dataclass_digest(config)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget, backoff shape, and circuit-breaker thresholds.

    Backoff is *virtual*: nothing sleeps.  The would-be wait after each
    failed attempt is computed deterministically (exponential growth
    with seeded jitter) and accounted in the run journal, which keeps
    every campaign unit a pure function of (seed, config, unit id) --
    the repro determinism rules (DET001) forbid wall-clock reads in the
    measurement core.
    """

    #: Execution attempts per unit before it is journaled as skipped.
    max_attempts: int = 3
    #: Virtual wait after the first failed attempt, milliseconds.
    backoff_base_ms: float = 500.0
    #: Growth factor between consecutive backoffs.
    backoff_multiplier: float = 2.0
    #: Symmetric jitter fraction: each wait is scaled by a seeded draw
    #: from ``[1 - jitter, 1 + jitter]``.
    backoff_jitter: float = 0.1
    #: Consecutive unit failures on one platform that open its breaker.
    breaker_threshold: int = 3
    #: Units skipped outright while a platform's breaker is open.
    breaker_cooldown_units: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_ms < 0.0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_units < 1:
            raise ValueError("breaker_cooldown_units must be >= 1")

    def backoff_ms(self, attempt: int, rng: np.random.Generator) -> float:
        """The virtual wait after failed attempt ``attempt`` (0-based).

        ``rng`` must be the per-(unit, attempt) jitter stream from
        :meth:`~repro.faults.plan.FaultPlan.backoff_rng` so the full
        backoff schedule is seed-reproducible.
        """
        delay = self.backoff_base_ms * self.backoff_multiplier**attempt
        if self.backoff_jitter > 0.0:
            delay *= 1.0 + self.backoff_jitter * (2.0 * float(rng.random()) - 1.0)
        return round(delay, 3)
