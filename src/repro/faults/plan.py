"""Deterministic fault schedules.

A :class:`FaultPlan` turns ``(seed, FaultConfig)`` into per-(unit,
attempt) fault draws, following the same forked-stream discipline as the
checkpointed campaign scheduler in :mod:`repro.measure.campaign`: every
channel of every attempt owns a generator derived from
``RngStreams(seed).fork``, so

- the full fault schedule is a pure function of seed + config,
- retrying a unit re-draws its faults (attempt ``k`` and ``k + 1`` are
  independent streams, so a retried timeout can succeed), and
- units never share fault randomness, whatever the execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.rng import RngStreams
from repro.faults.config import FaultConfig


@dataclass
class AttemptFaults:
    """The fault context of one execution attempt of one unit.

    Carries one independent generator per fault channel (API,
    measurement, storage) plus the event log the injectors append to as
    faults fire -- the resilient runner journals those events so
    coverage accounting can name exactly what happened to a unit.
    """

    config: FaultConfig
    api: np.random.Generator
    measure: np.random.Generator
    storage: np.random.Generator
    #: Human-readable events in firing order, e.g.
    #: ``api-timeout:snapshot``, ``reply-loss:12``, ``torn-write:...``.
    events: List[str] = field(default_factory=list)

    def record(self, event: str) -> None:
        self.events.append(event)


class FaultPlan:
    """Seeded factory of per-(unit, attempt) fault draws."""

    def __init__(self, seed: int, config: FaultConfig) -> None:
        self._rngs = RngStreams(seed)
        self._config = config

    @property
    def seed(self) -> int:
        return self._rngs.seed

    @property
    def config(self) -> FaultConfig:
        return self._config

    @property
    def active(self) -> bool:
        return self._config.active

    def attempt(self, unit: str, attempt: int) -> AttemptFaults:
        """Fresh fault generators for attempt ``attempt`` of ``unit``."""
        index = int(attempt)
        return AttemptFaults(
            config=self._config,
            api=self._rngs.fork(f"faults.api.{unit}", index),
            measure=self._rngs.fork(f"faults.measure.{unit}", index),
            storage=self._rngs.fork(f"faults.storage.{unit}", index),
        )

    def backoff_rng(self, unit: str, attempt: int) -> np.random.Generator:
        """The jitter stream for the backoff after attempt ``attempt``."""
        return self._rngs.fork(f"faults.backoff.{unit}", int(attempt))

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, active={self.active})"
