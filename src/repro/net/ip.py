"""IPv4 addresses, prefixes, and a sequential prefix allocator.

Addresses are plain ``int`` values (0..2^32-1) throughout the simulator;
this module provides parsing/formatting, private-range checks, and the
prefix machinery used both by the address allocator and by the
longest-prefix-match resolver in :mod:`repro.resolve.pyasn`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

MAX_IPV4 = 2**32 - 1

#: RFC 1918 private ranges plus RFC 6598 CGN space, as (base, prefix_len).
_PRIVATE_RANGES: Tuple[Tuple[int, int], ...] = (
    (0x0A000000, 8),   # 10.0.0.0/8
    (0xAC100000, 12),  # 172.16.0.0/12
    (0xC0A80000, 16),  # 192.168.0.0/16
    (0x64400000, 10),  # 100.64.0.0/10 (carrier-grade NAT)
)


def parse_ip(text: str) -> int:
    """Parse dotted-quad notation into an integer address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(address: int) -> str:
    """Format an integer address as dotted-quad notation."""
    if not 0 <= address <= MAX_IPV4:
        raise ValueError(f"address out of range: {address}")
    return ".".join(
        str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def is_private_ip(address: int) -> bool:
    """True if the address lies in RFC 1918 or CGN (RFC 6598) space."""
    for base, length in _PRIVATE_RANGES:
        mask = ((1 << length) - 1) << (32 - length)
        if (address & mask) == base:
            return True
    return False


@dataclass(frozen=True)
class IPv4Prefix:
    """An IPv4 prefix ``base/length`` with canonical (masked) base."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if not 0 <= self.base <= MAX_IPV4:
            raise ValueError(f"prefix base out of range: {self.base}")
        if self.base & ~self.mask:
            raise ValueError(
                f"prefix base {format_ip(self.base)} has host bits set for /{self.length}"
            )

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << (32 - self.length)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains(self, address: int) -> bool:
        return (address & self.mask) == self.base

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains(other.base)

    def address_at(self, offset: int) -> int:
        """The ``offset``-th address inside the prefix."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside /{self.length}")
        return self.base + offset

    def hosts(self) -> Iterator[int]:
        """All addresses in the prefix (use only for small prefixes)."""
        return iter(range(self.base, self.base + self.size))

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        try:
            addr_text, len_text = text.split("/")
        except ValueError:
            raise ValueError(f"malformed prefix {text!r}") from None
        return cls(parse_ip(addr_text), int(len_text))

    def __str__(self) -> str:
        return f"{format_ip(self.base)}/{self.length}"


class PrefixAllocator:
    """Sequentially allocates disjoint prefixes out of a public supernet.

    The simulator gives every AS one or more prefixes from this pool so
    that the IP-to-ASN resolver can be exercised with a realistic,
    non-overlapping address plan.
    """

    def __init__(self, supernet: IPv4Prefix = IPv4Prefix.parse("11.0.0.0/8")):
        if is_private_ip(supernet.base):
            raise ValueError("supernet must not be private address space")
        self._supernet = supernet
        self._cursor = supernet.base
        self._allocated: List[IPv4Prefix] = []

    @property
    def supernet(self) -> IPv4Prefix:
        return self._supernet

    @property
    def allocated(self) -> List[IPv4Prefix]:
        """All prefixes handed out so far, in allocation order."""
        return list(self._allocated)

    def allocate(self, length: int) -> IPv4Prefix:
        """Allocate the next free prefix of the given length."""
        if length < self._supernet.length:
            raise ValueError(
                f"cannot allocate /{length} out of {self._supernet}"
            )
        size = 1 << (32 - length)
        # Align the cursor to the prefix size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        end = self._supernet.base + self._supernet.size
        if aligned + size > end:
            raise RuntimeError(
                f"address pool {self._supernet} exhausted allocating /{length}"
            )
        prefix = IPv4Prefix(aligned, length)
        self._cursor = aligned + size
        self._allocated.append(prefix)
        return prefix
