"""Network substrate: IP prefixes, ASes, relationships, routing, IXPs."""

from repro.net.asn import AS, ASKind, ASRegistry
from repro.net.ip import IPv4Prefix, PrefixAllocator, format_ip, is_private_ip, parse_ip
from repro.net.ixp import IXP, IXPRegistry
from repro.net.relationships import Relationship, RelationshipGraph
from repro.net.routing import RoutePolicy, RoutingTable, compute_routes

__all__ = [
    "AS",
    "ASKind",
    "ASRegistry",
    "IPv4Prefix",
    "IXP",
    "IXPRegistry",
    "PrefixAllocator",
    "Relationship",
    "RelationshipGraph",
    "RoutePolicy",
    "RoutingTable",
    "compute_routes",
    "format_ip",
    "is_private_ip",
    "parse_ip",
]
