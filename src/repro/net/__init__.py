"""Network substrate: IP prefixes, ASes, relationships, routing, IXPs."""

from repro.net.asn import AS, ASKind, ASRegistry
from repro.net.ip import IPv4Prefix, PrefixAllocator, format_ip, is_private_ip, parse_ip
from repro.net.ixp import IXP, IXPRegistry
from repro.net.relationships import AdjacencyArrays, Relationship, RelationshipGraph
from repro.net.routing import (
    ArrayRoutingTable,
    RoutePolicy,
    RoutingTable,
    clear_route_cache,
    compute_routes,
    compute_routes_reference,
)

__all__ = [
    "AS",
    "ASKind",
    "ASRegistry",
    "AdjacencyArrays",
    "ArrayRoutingTable",
    "IPv4Prefix",
    "IXP",
    "IXPRegistry",
    "PrefixAllocator",
    "Relationship",
    "RelationshipGraph",
    "RoutePolicy",
    "RoutingTable",
    "clear_route_cache",
    "compute_routes",
    "compute_routes_reference",
    "format_ip",
    "is_private_ip",
    "parse_ip",
]
