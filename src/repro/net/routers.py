"""Router-level expansion of AS paths.

The traceroute engine works on *router* hops, each owned by an AS and
placed geographically along the way from the probe to the datacenter, so
that per-hop RTTs accumulate plausibly and the paper's pervasiveness
metric (provider-owned routers / path length, Fig. 11) can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.coords import GeoPoint, interpolate
from repro.net.asn import AS, ASKind


@dataclass(frozen=True)
class RouterHop:
    """One router on a forwarding path."""

    address: int
    asn: int
    position: GeoPoint
    #: IXP id if this hop is on an exchange peering LAN.
    ixp_id: Optional[int] = None


#: Router hops contributed per AS on a path, by kind: (low, high) before
#: weighting.  Cloud WANs contribute more hops -- traffic entering a
#: hypergiant's network near the user traverses the WAN's internal
#: backbone for most of the geographic distance (paper Fig. 11).
_HOPS_BY_KIND = {
    ASKind.ACCESS: (2, 3),
    ASKind.TRANSIT: (2, 4),
    ASKind.TIER1: (2, 4),
    ASKind.CLOUD: (2, 4),
}


def hops_for_as(
    autonomous_system: AS,
    rng: np.random.Generator,
    geographic_share: float = 0.0,
) -> int:
    """Number of router hops an AS contributes to one path.

    ``geographic_share`` is the fraction of the end-to-end distance the
    AS carries; ASes carrying most of the path (e.g. a private WAN
    ingressing near the user) expose proportionally more routers.
    """
    low, high = _HOPS_BY_KIND[autonomous_system.kind]
    base = int(rng.integers(low, high + 1))
    extra = int(round(4 * max(0.0, min(1.0, geographic_share))))
    return base + extra


def place_hops(
    start: GeoPoint,
    end: GeoPoint,
    counts: Sequence[int],
) -> List[List[GeoPoint]]:
    """Geographic positions for router hops of consecutive path segments.

    ``counts[i]`` routers are placed for segment *i*; positions advance
    monotonically from ``start`` to ``end`` along the great circle, so
    cumulative distances (and therefore per-hop RTTs) are monotone.
    """
    total = sum(counts)
    if total == 0:
        return [[] for _ in counts]
    positions: List[List[GeoPoint]] = []
    placed = 0
    for count in counts:
        segment: List[GeoPoint] = []
        for _ in range(count):
            placed += 1
            fraction = placed / (total + 1)
            segment.append(interpolate(start, end, fraction))
        positions.append(segment)
    return positions
