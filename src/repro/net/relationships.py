"""AS business relationships (Gao-Rexford model).

Two relationship types exist between adjacent ASes:

- **customer-to-provider (C2P)**: the customer pays the provider for
  transit.  Stored directed: ``add_customer_provider(customer, provider)``.
- **peer-to-peer (P2P)**: settlement-free exchange of each other's
  customer routes.  Stored undirected.

Edges may be annotated with the IXP at which the session is established
(public peering over an exchange fabric) -- the traceroute engine uses the
annotation to decide whether an IXP hop appears on the forwarding path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np


class Relationship(str, Enum):
    """Business relationship between two adjacent ASes."""

    CUSTOMER_TO_PROVIDER = "c2p"
    PEER_TO_PEER = "p2p"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Link:
    """One adjacency as seen from a specific AS."""

    neighbor: int
    relationship: Relationship
    #: IXP id if the session rides an exchange fabric, else ``None``.
    ixp_id: Optional[int] = None


@dataclass(frozen=True)
class AdjacencyArrays:
    """CSR-form adjacency of a :class:`RelationshipGraph` snapshot.

    Nodes are the graph's ASNs in ascending order; ``index`` maps an ASN
    to its row.  Each relation is stored as a compressed sparse row pair
    (``offsets``, ``targets``) whose target lists are sorted, so batched
    route computation can gather whole frontiers with one fancy index.
    ``digest`` hashes the edge structure (not IXP annotations -- routing
    does not depend on them) and keys the shared cross-world route cache.
    """

    asns: np.ndarray
    index: Dict[int, int]
    provider_offsets: np.ndarray
    provider_targets: np.ndarray
    customer_offsets: np.ndarray
    customer_targets: np.ndarray
    peer_offsets: np.ndarray
    peer_targets: np.ndarray
    digest: str

    def __len__(self) -> int:
        return len(self.asns)


def _packed_edge_keys(
    adjacency: "AdjacencyArrays", edges: Iterable[Tuple[int, int]]
) -> np.ndarray:
    """Directed row-pair keys (``src_row * n + dst_row``, both directions)
    for every unordered AS pair present in ``adjacency``."""
    n = len(adjacency)
    keys: List[int] = []
    for a, b in edges:
        row_a = adjacency.index.get(int(a))
        row_b = adjacency.index.get(int(b))
        if row_a is None or row_b is None:
            continue
        keys.append(row_a * n + row_b)
        keys.append(row_b * n + row_a)
    return np.asarray(sorted(keys), dtype=np.int64)


def _filter_csr(
    offsets: np.ndarray,
    targets: np.ndarray,
    keys: np.ndarray,
    n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop every CSR edge whose directed row-pair key is in ``keys``."""
    counts = np.diff(offsets)
    sources = np.repeat(np.arange(n, dtype=np.int64), counts)
    keep = ~np.isin(sources * n + targets, keys, assume_unique=False)
    kept_targets = targets[keep]
    kept_counts = np.bincount(sources[keep], minlength=n)
    new_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=new_offsets[1:])
    return new_offsets, kept_targets


def adjacency_without_edges(
    adjacency: "AdjacencyArrays", edges: Iterable[Tuple[int, int]]
) -> "AdjacencyArrays":
    """An incremental re-convergence input: ``adjacency`` with every
    relationship on the given unordered AS pairs removed.

    The node set (``asns``/``index``) is shared with the input; only the
    three relation CSR pairs are filtered, vectorized, and the structure
    digest is recomputed -- so downed-epoch tables key the shared route
    cache under their own digest while untouched epochs reuse the
    baseline's.  Pairs naming ASes absent from the graph are ignored
    (a scoped graph may not contain every candidate edge endpoint).
    """
    keys = _packed_edge_keys(adjacency, edges)
    if keys.size == 0:
        return adjacency
    n = len(adjacency)
    provider = _filter_csr(
        adjacency.provider_offsets, adjacency.provider_targets, keys, n
    )
    customer = _filter_csr(
        adjacency.customer_offsets, adjacency.customer_targets, keys, n
    )
    peer = _filter_csr(adjacency.peer_offsets, adjacency.peer_targets, keys, n)
    hasher = hashlib.sha256()
    for array in (
        adjacency.asns,
        provider[0],
        provider[1],
        customer[0],
        customer[1],
        peer[0],
        peer[1],
    ):
        hasher.update(array.tobytes())
        hasher.update(b"\0")
    return AdjacencyArrays(
        asns=adjacency.asns,
        index=adjacency.index,
        provider_offsets=provider[0],
        provider_targets=provider[1],
        customer_offsets=customer[0],
        customer_targets=customer[1],
        peer_offsets=peer[0],
        peer_targets=peer[1],
        digest=hasher.hexdigest(),
    )


def _csr(
    table: Dict[int, Dict[int, "Link"]],
    asns: np.ndarray,
    index: Dict[int, int],
) -> Tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(asns) + 1, dtype=np.int64)
    targets: List[int] = []
    for row, asn in enumerate(asns.tolist()):
        neighbors = table.get(asn)
        if neighbors:
            targets.extend(sorted(index[n] for n in neighbors))
        offsets[row + 1] = len(targets)
    return offsets, np.asarray(targets, dtype=np.int64)


class RelationshipGraph:
    """The annotated AS-level adjacency structure."""

    def __init__(self) -> None:
        # asn -> {neighbor_asn: Link}
        self._providers: Dict[int, Dict[int, Link]] = {}
        self._customers: Dict[int, Dict[int, Link]] = {}
        self._peers: Dict[int, Dict[int, Link]] = {}
        self._adjacency: Optional[AdjacencyArrays] = None

    # -- construction ----------------------------------------------------

    def add_customer_provider(
        self, customer: int, provider: int, ixp_id: Optional[int] = None
    ) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise ValueError(f"AS {customer} cannot be its own provider")
        if self.relationship_between(customer, provider) is not None:
            raise ValueError(
                f"ASes {customer} and {provider} already have a relationship"
            )
        self._providers.setdefault(customer, {})[provider] = Link(
            provider, Relationship.CUSTOMER_TO_PROVIDER, ixp_id
        )
        self._customers.setdefault(provider, {})[customer] = Link(
            customer, Relationship.CUSTOMER_TO_PROVIDER, ixp_id
        )
        self._adjacency = None

    def add_peering(
        self, a: int, b: int, ixp_id: Optional[int] = None
    ) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        if a == b:
            raise ValueError(f"AS {a} cannot peer with itself")
        if self.relationship_between(a, b) is not None:
            raise ValueError(f"ASes {a} and {b} already have a relationship")
        self._peers.setdefault(a, {})[b] = Link(b, Relationship.PEER_TO_PEER, ixp_id)
        self._peers.setdefault(b, {})[a] = Link(a, Relationship.PEER_TO_PEER, ixp_id)
        self._adjacency = None

    def clone(self) -> "RelationshipGraph":
        """An independent copy; used to scope provider edges per continent."""
        copy = RelationshipGraph()
        copy._providers = {asn: dict(links) for asn, links in self._providers.items()}
        copy._customers = {asn: dict(links) for asn, links in self._customers.items()}
        copy._peers = {asn: dict(links) for asn, links in self._peers.items()}
        return copy

    def without_edges(
        self, edges: Iterable[Tuple[int, int]]
    ) -> "RelationshipGraph":
        """A clone with every relationship on the given unordered AS
        pairs removed -- the graph-level twin of
        :func:`adjacency_without_edges`, used by the reference parity
        oracle and the SHORTEST-policy ablation.  Pairs without an
        existing relationship are ignored."""
        copy = self.clone()
        for a, b in edges:
            for table in (copy._providers, copy._customers, copy._peers):
                for src, dst in ((a, b), (b, a)):
                    links = table.get(src)
                    if links is not None:
                        links.pop(dst, None)
        return copy

    # -- queries ----------------------------------------------------------

    def adjacency(self) -> AdjacencyArrays:
        """The CSR adjacency snapshot, rebuilt lazily after mutations."""
        if self._adjacency is None:
            asns = np.asarray(sorted(self.all_asns()), dtype=np.int64)
            index = {int(asn): row for row, asn in enumerate(asns)}
            provider = _csr(self._providers, asns, index)
            customer = _csr(self._customers, asns, index)
            peer = _csr(self._peers, asns, index)
            hasher = hashlib.sha256()
            for array in (
                asns,
                provider[0],
                provider[1],
                customer[0],
                customer[1],
                peer[0],
                peer[1],
            ):
                hasher.update(array.tobytes())
                hasher.update(b"\0")
            self._adjacency = AdjacencyArrays(
                asns=asns,
                index=index,
                provider_offsets=provider[0],
                provider_targets=provider[1],
                customer_offsets=customer[0],
                customer_targets=customer[1],
                peer_offsets=peer[0],
                peer_targets=peer[1],
                digest=hasher.hexdigest(),
            )
        return self._adjacency

    def providers_of(self, asn: int) -> List[int]:
        return list(self._providers.get(asn, {}))

    def customers_of(self, asn: int) -> List[int]:
        return list(self._customers.get(asn, {}))

    def peers_of(self, asn: int) -> List[int]:
        return list(self._peers.get(asn, {}))

    def neighbors_of(self, asn: int) -> Set[int]:
        """All adjacent ASes regardless of relationship."""
        return (
            set(self._providers.get(asn, {}))
            | set(self._customers.get(asn, {}))
            | set(self._peers.get(asn, {}))
        )

    def relationship_between(self, a: int, b: int) -> Optional[Relationship]:
        """Relationship on the (a, b) adjacency, or ``None``."""
        if b in self._peers.get(a, {}):
            return Relationship.PEER_TO_PEER
        if b in self._providers.get(a, {}) or b in self._customers.get(a, {}):
            return Relationship.CUSTOMER_TO_PROVIDER
        return None

    def ixp_on_link(self, a: int, b: int) -> Optional[int]:
        """IXP id annotated on the (a, b) adjacency, if any."""
        for table in (self._peers, self._providers, self._customers):
            link = table.get(a, {}).get(b)
            if link is not None:
                return link.ixp_id
        return None

    def all_asns(self) -> Set[int]:
        """Every AS that appears on at least one edge."""
        asns: Set[int] = set()
        for table in (self._peers, self._providers, self._customers):
            for asn, links in table.items():
                asns.add(asn)
                asns.update(links)
        return asns

    def edge_count(self) -> int:
        """Number of distinct adjacencies."""
        seen: Set[Tuple[int, int]] = set()
        for table in (self._peers, self._providers, self._customers):
            for asn, links in table.items():
                for neighbor in links:
                    seen.add((min(asn, neighbor), max(asn, neighbor)))
        return len(seen)
