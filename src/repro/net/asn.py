"""Autonomous systems and the AS registry.

Every network entity in the simulator -- access ISPs, regional transit
carriers, Tier-1 backbones, and cloud providers -- is an :class:`AS` with
an ASN, an organisational home, and one or more announced IPv4 prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.geo.continents import Continent
from repro.geo.coords import GeoPoint
from repro.net.ip import IPv4Prefix


class ASKind(str, Enum):
    """Role of an AS in the topology."""

    #: Global transit backbone (settlement-free peers with other Tier-1s).
    TIER1 = "tier1"
    #: Regional/national transit provider.
    TRANSIT = "transit"
    #: Eyeball / access ISP serving end users.
    ACCESS = "access"
    #: Cloud provider network (private WAN or island datacenters).
    CLOUD = "cloud"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class AS:
    """An autonomous system.

    ``home`` is the AS' operational centre of gravity and is used to
    geolocate routers that cannot be tied to a more specific site.
    """

    asn: int
    name: str
    kind: ASKind
    country: Optional[str]
    continent: Optional[Continent]
    home: GeoPoint
    prefixes: List[IPv4Prefix] = field(default_factory=list)
    #: For CLOUD ASes: the provider code (e.g. ``"AMZN"``).
    provider_code: Optional[str] = None

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")

    def announces(self, address: int) -> bool:
        """True if the address falls inside one of this AS' prefixes."""
        return any(prefix.contains(address) for prefix in self.prefixes)

    def __hash__(self) -> int:
        return hash(self.asn)

    def __repr__(self) -> str:
        return f"AS(asn={self.asn}, name={self.name!r}, kind={self.kind})"


class ASRegistry:
    """All ASes in a world, with index lookups used by the analyses."""

    def __init__(self) -> None:
        self._by_asn: Dict[int, AS] = {}
        self._by_kind: Dict[ASKind, List[AS]] = {kind: [] for kind in ASKind}
        self._access_by_country: Dict[str, List[AS]] = {}
        self._cloud_by_provider: Dict[str, AS] = {}

    def add(self, autonomous_system: AS) -> AS:
        """Register an AS; ASNs must be unique."""
        asn = autonomous_system.asn
        if asn in self._by_asn:
            raise ValueError(f"duplicate ASN {asn}")
        self._by_asn[asn] = autonomous_system
        self._by_kind[autonomous_system.kind].append(autonomous_system)
        if autonomous_system.kind is ASKind.ACCESS and autonomous_system.country:
            self._access_by_country.setdefault(
                autonomous_system.country, []
            ).append(autonomous_system)
        if (
            autonomous_system.kind is ASKind.CLOUD
            and autonomous_system.provider_code
        ):
            self._cloud_by_provider[autonomous_system.provider_code] = (
                autonomous_system
            )
        return autonomous_system

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self):
        return iter(self._by_asn.values())

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def get(self, asn: int) -> AS:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise KeyError(f"unknown ASN {asn}") from None

    def find(self, asn: int) -> Optional[AS]:
        return self._by_asn.get(asn)

    def of_kind(self, kind: ASKind) -> List[AS]:
        """All ASes of a kind, in registration order."""
        return list(self._by_kind[ASKind(kind)])

    def access_in_country(self, iso: str) -> List[AS]:
        """Access ISPs registered to a country."""
        return list(self._access_by_country.get(iso, []))

    def cloud_for_provider(self, provider_code: str) -> AS:
        """The cloud AS operated by a provider."""
        try:
            return self._cloud_by_provider[provider_code]
        except KeyError:
            raise KeyError(f"no cloud AS for provider {provider_code!r}") from None

    def prefix_table(self) -> List[Tuple[IPv4Prefix, int]]:
        """(prefix, asn) pairs for every announced prefix.

        This is the synthetic equivalent of a RouteViews/RIB dump and is
        the input to the PyASN-style resolver.
        """
        table: List[Tuple[IPv4Prefix, int]] = []
        for autonomous_system in self._by_asn.values():
            for prefix in autonomous_system.prefixes:
                table.append((prefix, autonomous_system.asn))
        return table


def next_free_asn(registry: ASRegistry, start: int) -> int:
    """Smallest ASN >= ``start`` not yet present in ``registry``."""
    asn = start
    while asn in registry:
        asn += 1
    return asn
