"""Inter-domain route computation.

Implements Gao-Rexford valley-free policy routing: every AS prefers
routes learned from customers over routes learned from peers over routes
learned from providers, breaking ties on AS-path length and then on the
lowest next-hop ASN (determinism).  Export rules are the standard ones:

- routes learned from a customer are exported to everyone;
- routes learned from a peer or a provider are exported to customers only.

Routes are computed per destination with the classic three-stage sweep
(customer cone, one peer hop, provider propagation), which yields exactly
the set of valley-free best paths.  A plain shortest-path mode is provided
as an ablation (``RoutePolicy.SHORTEST``).

Two implementations of the valley-free sweep exist:

- :func:`_valley_free_routes_arrays` (the default behind
  :func:`compute_routes`) runs all three stages as batched NumPy passes
  over the graph's CSR adjacency arrays -- level-synchronous BFS over
  provider edges, one vectorized peer-edge relaxation, and a bucketed
  (Dial-style) BFS for provider propagation;
- :func:`compute_routes_reference` keeps the original per-node Python
  sweep.  It is the parity oracle: ``tests/unit/test_routing.py``
  asserts the two produce entry-for-entry identical tables, and the
  full-scale benchmark uses it as the pre-optimization baseline.

Computed tables are also memoized in a process-wide cache keyed by
(adjacency digest, destination, policy), so every world built on the
same topology -- across campaign days, resumes, and benchmark repeats in
one process -- reuses the same immutable tables instead of recomputing
them per (provider network, continent) scope.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.net.relationships import (
    AdjacencyArrays,
    RelationshipGraph,
    adjacency_without_edges,
)


class RoutePolicy(str, Enum):
    """Route selection policy."""

    VALLEY_FREE = "valley_free"
    SHORTEST = "shortest"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RouteClass(str, Enum):
    """How the best route at an AS was learned."""

    SELF = "self"
    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RouteEntry:
    """Best route from one AS towards the table's destination."""

    next_hop: int
    distance: int
    route_class: RouteClass


class RoutingTable:
    """All best routes towards a single destination AS."""

    def __init__(self, destination: int, entries: Dict[int, RouteEntry]):
        self._destination = destination
        self._entries = entries
        self._path_cache: Dict[int, Optional[Tuple[int, ...]]] = {}

    @property
    def destination(self) -> int:
        return self._destination

    def __contains__(self, asn: int) -> bool:
        return asn == self._destination or asn in self._entries

    def __len__(self) -> int:
        return len(self._entries) + 1

    def entry(self, source: int) -> Optional[RouteEntry]:
        """The best-route entry at ``source``, or ``None`` if unreachable."""
        if source == self._destination:
            return RouteEntry(source, 0, RouteClass.SELF)
        return self._entries.get(source)

    def distance(self, source: int) -> Optional[int]:
        """AS-hop count from ``source`` to the destination, or ``None``."""
        entry = self.entry(source)
        return None if entry is None else entry.distance

    def as_path(self, source: int) -> Optional[List[int]]:
        """The AS-level path [source, ..., destination], or ``None``.

        Paths are loop-free by construction; a defensive bound guards
        against corrupted tables.  Reconstructed paths are memoized per
        source (the planner asks for the same ISP paths tens of
        thousands of times per campaign day); callers receive a fresh
        list they may mutate.
        """
        if source in self._path_cache:
            cached = self._path_cache[source]
            return None if cached is None else list(cached)
        path = self._walk_path(source)
        self._path_cache[source] = None if path is None else tuple(path)
        return path

    def _walk_path(self, source: int) -> Optional[List[int]]:
        if source == self._destination:
            return [source]
        if source not in self._entries:
            return None
        path = [source]
        current = source
        for _ in range(len(self._entries) + 2):
            entry = self._entries.get(current)
            if entry is None:
                return None
            current = entry.next_hop
            path.append(current)
            if current == self._destination:
                return path
        raise RuntimeError(
            f"routing loop reconstructing path {source} -> {self._destination}"
        )


#: Integer route-class codes used by the array table (index = code).
_CLASS_BY_CODE = (RouteClass.CUSTOMER, RouteClass.PEER, RouteClass.PROVIDER)


class ArrayRoutingTable(RoutingTable):
    """A routing table backed by the solver's flat arrays.

    Behaviourally identical to :class:`RoutingTable` (same entries, same
    tie-breaks) but entries stay columnar: no per-AS ``RouteEntry``
    objects are materialized unless :meth:`entry` is called, which keeps
    full-scale worlds -- hundreds of scoped tables -- cheap to build and
    cheap for forked workers to share.
    """

    def __init__(
        self,
        destination: int,
        asns: np.ndarray,
        index: Dict[int, int],
        next_hop: np.ndarray,
        distance: np.ndarray,
        class_code: np.ndarray,
    ) -> None:
        self._destination = destination
        self._asns = asns
        self._index = index
        self._next = next_hop
        self._dist = distance
        self._class = class_code
        self._reachable = int(np.count_nonzero(class_code >= 0))
        self._path_cache = {}

    def __contains__(self, asn: int) -> bool:
        if asn == self._destination:
            return True
        row = self._index.get(asn)
        return row is not None and self._class[row] >= 0

    def __len__(self) -> int:
        return self._reachable + 1

    def entry(self, source: int) -> Optional[RouteEntry]:
        if source == self._destination:
            return RouteEntry(source, 0, RouteClass.SELF)
        row = self._index.get(source)
        if row is None or self._class[row] < 0:
            return None
        return RouteEntry(
            int(self._asns[self._next[row]]),
            int(self._dist[row]),
            _CLASS_BY_CODE[self._class[row]],
        )

    def distance(self, source: int) -> Optional[int]:
        if source == self._destination:
            return 0
        row = self._index.get(source)
        if row is None or self._class[row] < 0:
            return None
        return int(self._dist[row])

    def _walk_path(self, source: int) -> Optional[List[int]]:
        if source == self._destination:
            return [source]
        row = self._index.get(source)
        if row is None or self._class[row] < 0:
            return None
        path = [source]
        for _ in range(len(self._asns) + 2):
            row = int(self._next[row])
            asn = int(self._asns[row])
            path.append(asn)
            if asn == self._destination:
                return path
            if self._class[row] < 0:
                return None
        raise RuntimeError(
            f"routing loop reconstructing path {source} -> {self._destination}"
        )


#: Process-wide memo of computed tables, keyed by (adjacency digest,
#: destination, policy).  Tables are immutable once built, so sharing
#: them across worlds (same seed/scale => same scoped graphs) is safe;
#: the bound is generous -- a full-scale world needs ~8 networks x 6
#: continents x 2 policies worth of entries.
#:
#: EXE101 (worker-purity) rightly observes that this is module-global
#: mutable state reachable from forked campaign workers.  It is exempt
#: by design: every entry is a pure function of its key, so whether a
#: worker hits the parent's COW-prewarmed entry (see
#: ``_prewarm_route_tables``) or recomputes it in its private copy, the
#: resulting table is byte-identical -- the memo can never make results
#: depend on execution order, only on how much work is repeated.
# repro-lint: disable-file=EXE101
_SHARED_ROUTE_CACHE: "OrderedDict[Tuple[str, int, RoutePolicy], RoutingTable]"
_SHARED_ROUTE_CACHE = OrderedDict()
_SHARED_ROUTE_CACHE_MAX = 512


def clear_route_cache() -> None:
    """Drop the process-wide route memo (benchmarks and tests)."""
    _SHARED_ROUTE_CACHE.clear()


def compute_routes(
    graph: RelationshipGraph,
    destination: int,
    policy: RoutePolicy = RoutePolicy.VALLEY_FREE,
) -> RoutingTable:
    """Best routes from every AS towards ``destination`` under ``policy``.

    Results are memoized process-wide by the graph's adjacency digest:
    two worlds built on byte-identical edge structures share one table
    object per (destination, policy).
    """
    adjacency = graph.adjacency()
    key = (adjacency.digest, destination, policy)
    cached = _SHARED_ROUTE_CACHE.get(key)
    if cached is not None:
        return cached
    if policy is RoutePolicy.SHORTEST:
        table: RoutingTable = _shortest_routes(graph, destination)
    else:
        table = _valley_free_routes_arrays(adjacency, destination)
    if len(_SHARED_ROUTE_CACHE) >= _SHARED_ROUTE_CACHE_MAX:
        _SHARED_ROUTE_CACHE.popitem(last=False)
    _SHARED_ROUTE_CACHE[key] = table
    return table


def compute_routes_without_edges(
    graph: RelationshipGraph,
    destination: int,
    policy: RoutePolicy = RoutePolicy.VALLEY_FREE,
    edges: Iterable[Tuple[int, int]] = (),
) -> RoutingTable:
    """Re-converged routes after removing the given unordered AS pairs.

    The epoch-transition entry point of the netfault subsystem: the
    valley-free sweep runs directly over the incrementally filtered CSR
    adjacency (:func:`~repro.net.relationships.adjacency_without_edges`),
    and results share the process-wide memo under the filtered
    structure's own digest -- epochs with identical downed-edge sets hit
    the same cached table across days, resumes, and workers.  With no
    effective removals this is exactly :func:`compute_routes`.
    """
    if policy is RoutePolicy.SHORTEST:
        return compute_routes(graph.without_edges(edges), destination, policy)
    adjacency = adjacency_without_edges(graph.adjacency(), edges)
    key = (adjacency.digest, destination, policy)
    cached = _SHARED_ROUTE_CACHE.get(key)
    if cached is not None:
        return cached
    table = _valley_free_routes_arrays(adjacency, destination)
    if len(_SHARED_ROUTE_CACHE) >= _SHARED_ROUTE_CACHE_MAX:
        _SHARED_ROUTE_CACHE.popitem(last=False)
    _SHARED_ROUTE_CACHE[key] = table
    return table


def table_uses_edges(
    table: RoutingTable, edges: Iterable[Tuple[int, int]]
) -> bool:
    """Whether any selected (source, next-hop) adjacency of ``table``
    rides one of the unordered AS pairs in ``edges``.

    Sound fast-path test for epoch re-convergence: removing edges only
    shrinks the candidate route set, so if no selected pair (and hence
    no edge of any selected path -- paths compose table entries) uses a
    removed pair, the re-converged table is identical to ``table`` and
    the sweep can be skipped.
    """
    pairs = {
        (min(int(a), int(b)), max(int(a), int(b))) for a, b in edges
    }
    if not pairs:
        return False
    if isinstance(table, ArrayRoutingTable):
        rows = np.nonzero(table._class >= 0)[0]
        if rows.size == 0:
            return False
        src_asns = table._asns[rows]
        next_asns = table._asns[table._next[rows]]
        packed = np.minimum(src_asns, next_asns) * np.int64(
            2**32
        ) + np.maximum(src_asns, next_asns)
        wanted = np.asarray(
            sorted(a * 2**32 + b for a, b in pairs), dtype=np.int64
        )
        return bool(np.isin(packed, wanted).any())
    return any(
        (min(source, entry.next_hop), max(source, entry.next_hop)) in pairs
        for source, entry in table._entries.items()
    )


def compute_routes_reference(
    graph: RelationshipGraph,
    destination: int,
    policy: RoutePolicy = RoutePolicy.VALLEY_FREE,
) -> RoutingTable:
    """The original per-node Python sweep (parity oracle, uncached)."""
    if policy is RoutePolicy.SHORTEST:
        return _shortest_routes(graph, destination)
    return _valley_free_routes(graph, destination)


def _gather(
    offsets: np.ndarray, targets: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(source row, target row) pairs for every CSR edge out of ``rows``."""
    starts = offsets[rows]
    counts = offsets[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    sources = np.repeat(rows, counts)
    # Flat positions: each segment is a contiguous run starting at its
    # row's CSR offset.
    segment_starts = np.repeat(starts, counts)
    segment_bases = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.arange(total, dtype=np.int64) - segment_bases + segment_starts
    return sources, targets[flat]


def _valley_free_routes_arrays(
    adjacency: AdjacencyArrays, destination: int
) -> ArrayRoutingTable:
    """The three-stage valley-free sweep as batched array passes.

    Produces entries identical to :func:`_valley_free_routes`, including
    every tie-break: stage 1 keeps the lowest-ASN customer among
    equally-short cone routes, stage 2 takes the lexicographic minimum of
    (distance, neighbor ASN) over peer candidates, and stage 3 settles
    provider routes level-by-level keeping the lowest-ASN provider at the
    minimal distance.  Because rows are assigned in ascending ASN order,
    "lowest ASN" and "lowest row" coincide, so every tie-break is a
    plain ``minimum`` reduction over row indices.
    """
    n = len(adjacency)
    dest_row = adjacency.index.get(destination)
    if dest_row is None:
        raise KeyError(f"destination AS{destination} not in graph")

    # Stage 1 -- customer routes: level-synchronous BFS from the
    # destination along provider edges (the destination's transitive
    # providers are exactly the ASes whose customer cone contains it).
    cone_dist = np.full(n, -1, dtype=np.int64)
    cone_dist[dest_row] = 0
    frontier = np.array([dest_row], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        _, reached = _gather(
            adjacency.provider_offsets, adjacency.provider_targets, frontier
        )
        if reached.size == 0:
            break
        reached = np.unique(reached)
        frontier = reached[cone_dist[reached] < 0]
        cone_dist[frontier] = level

    # Stage-1 next hops: for every provider edge (x -> customer c) with
    # cone_dist[c] == cone_dist[x] - 1, keep the lowest customer row.
    customer_next = np.full(n, n, dtype=np.int64)
    edge_src, edge_dst = _gather(
        adjacency.customer_offsets,
        adjacency.customer_targets,
        np.arange(n, dtype=np.int64),
    )
    in_cone = (cone_dist[edge_src] > 0) & (cone_dist[edge_dst] >= 0)
    downhill = in_cone & (cone_dist[edge_src] == cone_dist[edge_dst] + 1)
    np.minimum.at(customer_next, edge_src[downhill], edge_dst[downhill])

    # Stage 2 -- peer routes: one settlement-free hop into the cone.
    # Candidates (a peers-with p, a in cone incl. the destination, p
    # outside the cone) relax to the lexicographic minimum of
    # (cone_dist[a] + 1, a); packing (distance, row) into one integer
    # key makes the reduction a single unbuffered minimum.
    no_peer = np.iinfo(np.int64).max
    peer_best = np.full(n, no_peer, dtype=np.int64)
    peer_src, peer_dst = _gather(
        adjacency.peer_offsets,
        adjacency.peer_targets,
        np.arange(n, dtype=np.int64),
    )
    usable = (cone_dist[peer_src] >= 0) & (cone_dist[peer_dst] < 0)
    key = (cone_dist[peer_src[usable]] + 1) * (n + 1) + peer_src[usable]
    np.minimum.at(peer_best, peer_dst[usable], key)
    has_peer = peer_best < no_peer
    peer_dist = np.where(has_peer, peer_best // (n + 1), -1)
    peer_next = np.where(has_peer, peer_best % (n + 1), n)

    # Stage 3 -- provider routes: every route holder exports its best
    # route to its customers; distances accumulate hop by hop.  All
    # edges have unit weight, so the Dijkstra of the reference sweep
    # degenerates to a bucketed BFS over distance levels: the frontier
    # at level L is every AS whose final distance is L, and an AS first
    # reached at level L+1 settles with the lowest-ASN exporter of that
    # level as its next hop.
    final_dist = np.where(cone_dist >= 0, cone_dist, peer_dist)
    provider_next = np.full(n, n, dtype=np.int64)
    is_provider_route = np.zeros(n, dtype=bool)
    level = 0
    # Assignments made at level L always land at L + 1, so the running
    # maximum of ``final_dist`` is a sound loop bound.
    while level <= int(final_dist.max()):
        frontier = np.nonzero(final_dist == level)[0]
        if frontier.size:
            src, dst = _gather(
                adjacency.customer_offsets, adjacency.customer_targets, frontier
            )
            fresh = final_dist[dst] < 0
            if np.any(fresh):
                src, dst = src[fresh], dst[fresh]
                np.minimum.at(provider_next, dst, src)
                final_dist[dst] = level + 1
                is_provider_route[dst] = True
        level += 1

    # Assemble the columnar table: class codes 0/1/2 = customer/peer/
    # provider, -1 = unreachable; the destination row stays -1 (SELF is
    # synthesized by ``entry``).
    class_code = np.full(n, -1, dtype=np.int8)
    next_row = np.full(n, n, dtype=np.int64)
    customer_mask = cone_dist > 0
    class_code[customer_mask] = 0
    next_row[customer_mask] = customer_next[customer_mask]
    class_code[has_peer] = 1
    next_row[has_peer] = peer_next[has_peer]
    class_code[is_provider_route] = 2
    next_row[is_provider_route] = provider_next[is_provider_route]
    return ArrayRoutingTable(
        destination=destination,
        asns=adjacency.asns,
        index=adjacency.index,
        next_hop=next_row,
        distance=final_dist,
        class_code=class_code,
    )


def _valley_free_routes(
    graph: RelationshipGraph, destination: int
) -> RoutingTable:
    entries: Dict[int, RouteEntry] = {}

    # Stage 1 -- customer routes: every AS whose customer cone contains the
    # destination hears the route from a customer.  These are the ancestors
    # of the destination along provider edges.
    customer_dist: Dict[int, int] = {destination: 0}
    queue = deque([destination])
    while queue:
        current = queue.popleft()
        for provider in sorted(graph.providers_of(current)):
            if provider in customer_dist:
                continue
            customer_dist[provider] = customer_dist[current] + 1
            entries[provider] = RouteEntry(
                current, customer_dist[provider], RouteClass.CUSTOMER
            )
            queue.append(provider)
    # Re-sweep stage 1 for shortest customer routes: BFS above already
    # yields shortest distances because all edges have unit weight, but an
    # AS may have several customers in the cone; pick the lowest-ASN
    # next hop among equally-short options for determinism.
    for asn in list(entries):
        best = entries[asn]
        for customer in sorted(graph.customers_of(asn)):
            dist = customer_dist.get(customer)
            if dist is None:
                continue
            if dist + 1 < best.distance or (
                dist + 1 == best.distance and customer < best.next_hop
            ):
                best = RouteEntry(customer, dist + 1, RouteClass.CUSTOMER)
        entries[asn] = best

    # Stage 2 -- peer routes: one settlement-free hop into the customer
    # cone.  Customer routes always win over peer routes at the same AS.
    for asn_with_route in sorted(customer_dist):
        for peer in sorted(graph.peers_of(asn_with_route)):
            if peer == destination or peer in customer_dist:
                continue
            candidate = RouteEntry(
                asn_with_route,
                customer_dist[asn_with_route] + 1,
                RouteClass.PEER,
            )
            existing = entries.get(peer)
            if (
                existing is None
                or candidate.distance < existing.distance
                or (
                    candidate.distance == existing.distance
                    and candidate.next_hop < existing.next_hop
                )
            ):
                entries[peer] = candidate

    # Stage 3 -- provider routes: any AS holding a route exports it to its
    # customers; distances accumulate.  Dijkstra over customer edges with
    # the stage-1/2 holders as multi-source seeds.
    seeds = []
    for asn, entry in entries.items():
        seeds.append((entry.distance, asn))
    seeds.append((0, destination))
    heap = [(dist, asn) for dist, asn in sorted(seeds)]
    settled_provider_dist: Dict[int, int] = {}
    while heap:
        dist, asn = heapq.heappop(heap)
        if settled_provider_dist.get(asn, dist + 1) <= dist:
            continue
        settled_provider_dist[asn] = dist
        for customer in sorted(graph.customers_of(asn)):
            candidate_dist = dist + 1
            existing = entries.get(customer)
            if existing is not None and existing.route_class in (
                RouteClass.CUSTOMER,
                RouteClass.PEER,
            ):
                # Customer/peer routes always beat provider routes, and the
                # AS will not switch -- but it still propagates its *best*
                # route downward, which is the existing one (already seeded).
                continue
            if customer == destination:
                continue
            if (
                existing is None
                or candidate_dist < existing.distance
                or (
                    candidate_dist == existing.distance
                    and asn < existing.next_hop
                )
            ):
                entries[customer] = RouteEntry(
                    asn, candidate_dist, RouteClass.PROVIDER
                )
                heapq.heappush(heap, (candidate_dist, customer))

    return RoutingTable(destination, entries)


def _shortest_routes(graph: RelationshipGraph, destination: int) -> RoutingTable:
    """Policy-free shortest paths over the undirected adjacency (ablation)."""
    entries: Dict[int, RouteEntry] = {}
    dist: Dict[int, int] = {destination: 0}
    queue = deque([destination])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors_of(current)):
            if neighbor in dist:
                continue
            dist[neighbor] = dist[current] + 1
            entries[neighbor] = RouteEntry(
                current, dist[neighbor], RouteClass.PROVIDER
            )
            queue.append(neighbor)
    return RoutingTable(destination, entries)
