"""Inter-domain route computation.

Implements Gao-Rexford valley-free policy routing: every AS prefers
routes learned from customers over routes learned from peers over routes
learned from providers, breaking ties on AS-path length and then on the
lowest next-hop ASN (determinism).  Export rules are the standard ones:

- routes learned from a customer are exported to everyone;
- routes learned from a peer or a provider are exported to customers only.

Routes are computed per destination with the classic three-stage sweep
(customer cone, one peer hop, provider propagation), which yields exactly
the set of valley-free best paths.  A plain shortest-path mode is provided
as an ablation (``RoutePolicy.SHORTEST``).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.net.relationships import RelationshipGraph


class RoutePolicy(str, Enum):
    """Route selection policy."""

    VALLEY_FREE = "valley_free"
    SHORTEST = "shortest"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RouteClass(str, Enum):
    """How the best route at an AS was learned."""

    SELF = "self"
    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RouteEntry:
    """Best route from one AS towards the table's destination."""

    next_hop: int
    distance: int
    route_class: RouteClass


class RoutingTable:
    """All best routes towards a single destination AS."""

    def __init__(self, destination: int, entries: Dict[int, RouteEntry]):
        self._destination = destination
        self._entries = entries

    @property
    def destination(self) -> int:
        return self._destination

    def __contains__(self, asn: int) -> bool:
        return asn == self._destination or asn in self._entries

    def __len__(self) -> int:
        return len(self._entries) + 1

    def entry(self, source: int) -> Optional[RouteEntry]:
        """The best-route entry at ``source``, or ``None`` if unreachable."""
        if source == self._destination:
            return RouteEntry(source, 0, RouteClass.SELF)
        return self._entries.get(source)

    def distance(self, source: int) -> Optional[int]:
        """AS-hop count from ``source`` to the destination, or ``None``."""
        entry = self.entry(source)
        return None if entry is None else entry.distance

    def as_path(self, source: int) -> Optional[List[int]]:
        """The AS-level path [source, ..., destination], or ``None``.

        Paths are loop-free by construction; a defensive bound guards
        against corrupted tables.
        """
        if source == self._destination:
            return [source]
        if source not in self._entries:
            return None
        path = [source]
        current = source
        for _ in range(len(self._entries) + 2):
            entry = self._entries.get(current)
            if entry is None:
                return None
            current = entry.next_hop
            path.append(current)
            if current == self._destination:
                return path
        raise RuntimeError(
            f"routing loop reconstructing path {source} -> {self._destination}"
        )


def compute_routes(
    graph: RelationshipGraph,
    destination: int,
    policy: RoutePolicy = RoutePolicy.VALLEY_FREE,
) -> RoutingTable:
    """Best routes from every AS towards ``destination`` under ``policy``."""
    if policy is RoutePolicy.SHORTEST:
        return _shortest_routes(graph, destination)
    return _valley_free_routes(graph, destination)


def _valley_free_routes(
    graph: RelationshipGraph, destination: int
) -> RoutingTable:
    entries: Dict[int, RouteEntry] = {}

    # Stage 1 -- customer routes: every AS whose customer cone contains the
    # destination hears the route from a customer.  These are the ancestors
    # of the destination along provider edges.
    customer_dist: Dict[int, int] = {destination: 0}
    queue = deque([destination])
    while queue:
        current = queue.popleft()
        for provider in sorted(graph.providers_of(current)):
            if provider in customer_dist:
                continue
            customer_dist[provider] = customer_dist[current] + 1
            entries[provider] = RouteEntry(
                current, customer_dist[provider], RouteClass.CUSTOMER
            )
            queue.append(provider)
    # Re-sweep stage 1 for shortest customer routes: BFS above already
    # yields shortest distances because all edges have unit weight, but an
    # AS may have several customers in the cone; pick the lowest-ASN
    # next hop among equally-short options for determinism.
    for asn in list(entries):
        best = entries[asn]
        for customer in sorted(graph.customers_of(asn)):
            dist = customer_dist.get(customer)
            if dist is None:
                continue
            if dist + 1 < best.distance or (
                dist + 1 == best.distance and customer < best.next_hop
            ):
                best = RouteEntry(customer, dist + 1, RouteClass.CUSTOMER)
        entries[asn] = best

    # Stage 2 -- peer routes: one settlement-free hop into the customer
    # cone.  Customer routes always win over peer routes at the same AS.
    for asn_with_route in sorted(customer_dist):
        for peer in sorted(graph.peers_of(asn_with_route)):
            if peer == destination or peer in customer_dist:
                continue
            candidate = RouteEntry(
                asn_with_route,
                customer_dist[asn_with_route] + 1,
                RouteClass.PEER,
            )
            existing = entries.get(peer)
            if (
                existing is None
                or candidate.distance < existing.distance
                or (
                    candidate.distance == existing.distance
                    and candidate.next_hop < existing.next_hop
                )
            ):
                entries[peer] = candidate

    # Stage 3 -- provider routes: any AS holding a route exports it to its
    # customers; distances accumulate.  Dijkstra over customer edges with
    # the stage-1/2 holders as multi-source seeds.
    seeds = []
    for asn, entry in entries.items():
        seeds.append((entry.distance, asn))
    seeds.append((0, destination))
    heap = [(dist, asn) for dist, asn in sorted(seeds)]
    settled_provider_dist: Dict[int, int] = {}
    while heap:
        dist, asn = heapq.heappop(heap)
        if settled_provider_dist.get(asn, dist + 1) <= dist:
            continue
        settled_provider_dist[asn] = dist
        for customer in sorted(graph.customers_of(asn)):
            candidate_dist = dist + 1
            existing = entries.get(customer)
            if existing is not None and existing.route_class in (
                RouteClass.CUSTOMER,
                RouteClass.PEER,
            ):
                # Customer/peer routes always beat provider routes, and the
                # AS will not switch -- but it still propagates its *best*
                # route downward, which is the existing one (already seeded).
                continue
            if customer == destination:
                continue
            if (
                existing is None
                or candidate_dist < existing.distance
                or (
                    candidate_dist == existing.distance
                    and asn < existing.next_hop
                )
            ):
                entries[customer] = RouteEntry(
                    asn, candidate_dist, RouteClass.PROVIDER
                )
                heapq.heappush(heap, (candidate_dist, customer))

    return RoutingTable(destination, entries)


def _shortest_routes(graph: RelationshipGraph, destination: int) -> RoutingTable:
    """Policy-free shortest paths over the undirected adjacency (ablation)."""
    entries: Dict[int, RouteEntry] = {}
    dist: Dict[int, int] = {destination: 0}
    queue = deque([destination])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors_of(current)):
            if neighbor in dist:
                continue
            dist[neighbor] = dist[current] + 1
            entries[neighbor] = RouteEntry(
                current, dist[neighbor], RouteClass.PROVIDER
            )
            queue.append(neighbor)
    return RoutingTable(destination, entries)
