"""Internet eXchange Points.

IXPs are layer-2 fabrics where member ASes establish peering sessions.
They are not ASes themselves, but their peering-LAN prefixes show up as
hops in traceroutes -- the paper identifies and strips them using the
CAIDA IXP dataset before classifying interconnection types (section 6.1).
This module is the synthetic equivalent of that dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.geo.continents import Continent
from repro.geo.coords import GeoPoint
from repro.net.ip import IPv4Prefix


@dataclass
class IXP:
    """An exchange point with a peering-LAN prefix and a member list."""

    ixp_id: int
    name: str
    location: GeoPoint
    continent: Continent
    peering_lan: IPv4Prefix
    members: Set[int] = field(default_factory=set)

    def add_member(self, asn: int) -> None:
        self.members.add(asn)

    def lan_address_for(self, asn: int) -> int:
        """Deterministic peering-LAN address for a member AS."""
        if asn not in self.members:
            raise ValueError(f"AS {asn} is not a member of {self.name}")
        offset = (asn % (self.peering_lan.size - 2)) + 1
        return self.peering_lan.address_at(offset)

    def __repr__(self) -> str:
        return (
            f"IXP(id={self.ixp_id}, name={self.name!r}, "
            f"members={len(self.members)})"
        )


class IXPRegistry:
    """All IXPs in a world; the synthetic CAIDA IXP dataset."""

    def __init__(self) -> None:
        self._by_id: Dict[int, IXP] = {}

    def add(self, ixp: IXP) -> IXP:
        if ixp.ixp_id in self._by_id:
            raise ValueError(f"duplicate IXP id {ixp.ixp_id}")
        self._by_id[ixp.ixp_id] = ixp
        return ixp

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())

    def get(self, ixp_id: int) -> IXP:
        try:
            return self._by_id[ixp_id]
        except KeyError:
            raise KeyError(f"unknown IXP id {ixp_id}") from None

    def in_continent(self, continent: Continent) -> List[IXP]:
        return [
            ixp
            for ixp in self._by_id.values()
            if ixp.continent is Continent(continent)
        ]

    def ixp_for_address(self, address: int) -> Optional[IXP]:
        """The IXP whose peering LAN contains ``address``, if any.

        This is the lookup the paper performs against the CAIDA dataset
        to tag IXP hops in traceroutes.
        """
        for ixp in self._by_id.values():
            if ixp.peering_lan.contains(address):
                return ixp
        return None

    def peering_lan_prefixes(self) -> List[IPv4Prefix]:
        return [ixp.peering_lan for ixp in self._by_id.values()]
