"""Pluggable file operations for shard writes.

:func:`repro.store.format.write_shard` funnels its file I/O through a
:class:`FileOps` object.  The default implementation is the plain
write-then-fsync path the warehouse has always used; the fault-injection
layer (:class:`repro.faults.injectors.FaultyFileOps`) substitutes one
that can tear writes, flip bytes, or fail the fsync -- deterministically
-- so the chaos harness exercises every storage recovery path without
patching the operating system.
"""

from __future__ import annotations

import os
from pathlib import Path


class FileOps:
    """Durable file primitives used by the shard writer and merger."""

    def write_bytes(self, path: Path, payload: bytes) -> None:
        """Write ``payload`` to ``path`` and fsync before returning."""
        with open(path, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())

    def replace(self, source: Path, destination: Path) -> None:
        """Atomically rename ``source`` over ``destination`` and fsync.

        Used by the parallel commit phase to publish staged shard files
        into the main store without copying: the staged bytes (already
        fsynced by :meth:`write_bytes`) move unchanged, and the
        destination is fsynced again so the rename itself is durable
        before the unit's journal entry is appended.
        """
        os.replace(source, destination)
        fd = os.open(destination, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


#: Shared default instance (stateless).
DEFAULT_FILEOPS = FileOps()
