"""The binary shard container format.

A *shard* is one self-describing file holding a set of named NumPy
columns plus a JSON header:

.. code-block:: text

    offset  size          content
    0       8             magic ``b"RPROSHRD"``
    8       4             container version, little-endian uint32
    12      8             header length in bytes, little-endian uint64
    20      header_len    header JSON (UTF-8, sorted keys)
    ...     padding       zero bytes up to the next 64-byte boundary
    ...                   column payloads, each 64-byte aligned

The header carries a ``columns`` list -- one descriptor per column with
its dtype string, shape, offset *relative to the data section*, byte
length and CRC32 -- plus arbitrary caller metadata (shard kind, interned
probe/region tables, counts).  Column payloads are raw C-contiguous
little-endian array bytes, so a reader can map any column with
:class:`numpy.memmap` without parsing or copying: loads are O(columns),
not O(measurements).

Writes are deterministic: the same columns and metadata always produce
byte-identical shards (sorted-key JSON, no timestamps), which is what
lets the resume tests compare whole run directories bit-for-bit.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.store.fileops import DEFAULT_FILEOPS, FileOps

PathLike = Union[str, Path]

#: Shard file magic.
MAGIC = b"RPROSHRD"
#: Container format version.
CONTAINER_VERSION = 1
#: Alignment (bytes) of the data section and of every column payload.
ALIGNMENT = 64
#: Fixed-size preamble: magic + version (u32) + header length (u64).
_PREAMBLE = struct.Struct("<4x")  # placeholder, real layout built inline
_PREAMBLE_LEN = len(MAGIC) + 4 + 8


class ShardFormatError(ValueError):
    """A shard file is malformed, truncated, or corrupt."""


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _column_bytes(array: np.ndarray) -> bytes:
    """A column's payload: C-contiguous little-endian raw bytes."""
    contiguous = np.ascontiguousarray(array)
    little = contiguous.dtype.newbyteorder("<")
    return contiguous.astype(little, copy=False).tobytes()


def write_shard(
    path: PathLike,
    columns: Mapping[str, np.ndarray],
    metadata: Mapping[str, Any],
    fileops: Optional[FileOps] = None,
) -> Dict[str, Any]:
    """Write one shard file; returns the header that was written.

    ``columns`` order is preserved in the layout.  ``metadata`` is any
    JSON-serializable mapping; the keys ``columns``, ``container`` and
    ``container_version`` are reserved.  The file is fsynced before
    returning so a journal entry written afterwards never references a
    shard the OS could still lose.  ``fileops`` substitutes the file
    primitives (the fault-injection hook); the default is the plain
    write-then-fsync path.
    """
    descriptors = []
    payloads = []
    offset = 0
    for name, array in columns.items():
        blob = _column_bytes(np.asarray(array))
        offset = _align(offset)
        descriptors.append(
            {
                "name": name,
                "dtype": np.asarray(array).dtype.newbyteorder("<").str,
                "shape": list(np.asarray(array).shape),
                "offset": offset,
                "nbytes": len(blob),
                "crc32": zlib.crc32(blob),
            }
        )
        payloads.append((offset, blob))
        offset += len(blob)

    for reserved in ("columns", "container", "container_version"):
        if reserved in metadata:
            raise ValueError(f"metadata key {reserved!r} is reserved")
    header: Dict[str, Any] = dict(metadata)
    header["container"] = "repro-shard"
    header["container_version"] = CONTAINER_VERSION
    header["columns"] = descriptors
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")

    data_start = _align(_PREAMBLE_LEN + len(header_bytes))
    # The whole file image is assembled in memory and handed to the
    # file-ops layer in one call, so a substituted FileOps sees (and can
    # fault) the complete payload -- and the default path produces bytes
    # identical to the historical streaming writer.
    image = bytearray()
    image += MAGIC
    image += struct.pack("<IQ", CONTAINER_VERSION, len(header_bytes))
    image += header_bytes
    image += b"\0" * (data_start - _PREAMBLE_LEN - len(header_bytes))
    position = 0
    for column_offset, blob in payloads:
        image += b"\0" * (column_offset - position)
        image += blob
        position = column_offset + len(blob)
    ops = fileops if fileops is not None else DEFAULT_FILEOPS
    ops.write_bytes(Path(path), bytes(image))
    return header


def read_header(path: PathLike) -> Tuple[Dict[str, Any], int]:
    """Read a shard's JSON header; returns ``(header, data_start)``."""
    path = Path(path)
    with open(path, "rb") as fh:
        preamble = fh.read(_PREAMBLE_LEN)
        if len(preamble) < _PREAMBLE_LEN or preamble[: len(MAGIC)] != MAGIC:
            raise ShardFormatError(f"{path}: not a repro shard file")
        version, header_len = struct.unpack(
            "<IQ", preamble[len(MAGIC) :]
        )
        if version != CONTAINER_VERSION:
            raise ShardFormatError(
                f"{path}: unsupported container version {version}"
            )
        header_bytes = fh.read(header_len)
        if len(header_bytes) != header_len:
            raise ShardFormatError(f"{path}: truncated header")
        try:
            header = json.loads(header_bytes)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ShardFormatError(f"{path}: corrupt header: {exc}") from exc
    return header, _align(_PREAMBLE_LEN + header_len)


def read_columns(
    path: PathLike, mmap: bool = True
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Read every column of a shard; returns ``(header, columns)``.

    With ``mmap=True`` (the default) columns are zero-copy
    :class:`numpy.memmap` views onto the file; pages are faulted in only
    as analyses touch them.  ``mmap=False`` reads plain in-memory arrays
    (useful when the caller will delete the file).
    """
    header, data_start = read_header(path)
    file_size = Path(path).stat().st_size
    columns: Dict[str, np.ndarray] = {}
    for descriptor in header["columns"]:
        dtype = np.dtype(descriptor["dtype"])
        shape = tuple(descriptor["shape"])
        offset = data_start + descriptor["offset"]
        if offset + descriptor["nbytes"] > file_size:
            raise ShardFormatError(
                f"{path}: column {descriptor['name']!r} extends past "
                "the end of the file"
            )
        if mmap:
            columns[descriptor["name"]] = np.memmap(
                path, dtype=dtype, mode="r", offset=offset, shape=shape
            )
        else:
            with open(path, "rb") as fh:
                fh.seek(offset)
                blob = fh.read(descriptor["nbytes"])
            columns[descriptor["name"]] = np.frombuffer(
                blob, dtype=dtype
            ).reshape(shape)
    return header, columns


def verify_shard_report(path: PathLike) -> List[str]:
    """Every integrity problem in one shard file (empty list = clean).

    Unlike :func:`verify_shard` this never stops early: all truncated or
    CRC-failing columns are listed, which is what lets
    ``python -m repro.store verify`` report every corrupt shard in one
    pass instead of bailing at the first.
    """
    try:
        header, data_start = read_header(path)
    except ShardFormatError as exc:
        return [str(exc)]
    problems: List[str] = []
    with open(path, "rb") as fh:
        for descriptor in header["columns"]:
            fh.seek(data_start + descriptor["offset"])
            blob = fh.read(descriptor["nbytes"])
            if len(blob) != descriptor["nbytes"]:
                problems.append(
                    f"{path}: column {descriptor['name']!r} is truncated"
                )
                continue
            if zlib.crc32(blob) != descriptor["crc32"]:
                problems.append(
                    f"{path}: column {descriptor['name']!r} fails its CRC32"
                )
    return problems


def verify_shard(path: PathLike) -> Dict[str, Any]:
    """Re-checksum every column of a shard against its header.

    Returns the header on success; raises :class:`ShardFormatError`
    naming the first problem otherwise.  Use
    :func:`verify_shard_report` to collect *all* problems at once.
    """
    problems = verify_shard_report(path)
    if problems:
        raise ShardFormatError(problems[0])
    header, _ = read_header(path)
    return header
