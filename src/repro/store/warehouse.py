"""The on-disk dataset warehouse.

A *store* is one run directory:

.. code-block:: text

    run_dir/
        manifest.json        static run metadata (format, seed, config hash)
        journal.jsonl        append-only completion journal (source of truth)
        shards/
            speedchecker-000-pings.shard
            speedchecker-000-traces.shard
            atlas-000-pings.shard
            ...

One *unit* -- a (platform, day) slice of a campaign, or one import
batch -- maps to at most one ping shard and one trace shard.  Shards are
written and fsynced **before** the unit's journal entry, so the journal
never references bytes the OS could still lose; conversely, any shard
without a journal entry is a crash leftover that the next resume
overwrites.

Reads are lazy: :meth:`DatasetStore.iter_ping_blocks` decodes one shard
at a time as memmap-backed blocks, so analyses stream a dataset far
larger than RAM.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.measure.results import (
    MeasurementDataset,
    PingBlock,
    TraceBlock,
)
from repro.store.format import ShardFormatError, verify_shard
from repro.store.journal import BEGIN_ENTRY, UNIT_ENTRY, RunJournal
from repro.store.shards import (
    read_ping_shard,
    read_trace_shard,
    write_ping_shard,
    write_trace_shard,
)

PathLike = Union[str, Path]

#: Store layout file names.
MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
SHARD_DIR = "shards"

#: Manifest format tag and version.
STORE_FORMAT = "repro-store"
STORE_VERSION = 1


class StoreError(RuntimeError):
    """A store directory is missing, malformed, or inconsistent."""


def unit_file_stem(unit: str) -> str:
    """The shard file stem for a unit id (``speedchecker:003`` ->
    ``speedchecker-003``; colons are not portable in file names)."""
    return unit.replace(":", "-")


class DatasetStore:
    """One on-disk measurement dataset: manifest + journal + shards."""

    def __init__(self, run_dir: Path, journal: RunJournal, manifest: Dict[str, Any]) -> None:
        self._run_dir = run_dir
        self._journal = journal
        self._manifest = manifest

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        run_dir: PathLike,
        seed: Optional[int] = None,
        config_hash: Optional[str] = None,
        scale: Optional[float] = None,
        source: str = "campaign",
    ) -> "DatasetStore":
        """Initialise a new store; refuses a directory that already holds one."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        if manifest_path.exists():
            raise StoreError(f"{run_dir}: already contains a store manifest")
        (run_dir / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Any] = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "seed": seed,
            "config_hash": config_hash,
            "scale": scale,
            "source": source,
        }
        # Atomic publish: a crash mid-write leaves no manifest, and open()
        # then correctly reports "not a store" instead of half a file.
        tmp_path = manifest_path.with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, sort_keys=True, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, manifest_path)
        return cls(run_dir, RunJournal(run_dir / JOURNAL_NAME), manifest)

    @classmethod
    def open(cls, run_dir: PathLike) -> "DatasetStore":
        """Open an existing store directory."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"{run_dir}: no store manifest found")
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("format") != STORE_FORMAT:
            raise StoreError(f"{run_dir}: not a {STORE_FORMAT} directory")
        if manifest.get("version") != STORE_VERSION:
            raise StoreError(
                f"{run_dir}: unsupported store version {manifest.get('version')}"
            )
        return cls(run_dir, RunJournal(run_dir / JOURNAL_NAME), manifest)

    @classmethod
    def open_or_create(
        cls,
        run_dir: PathLike,
        seed: Optional[int] = None,
        config_hash: Optional[str] = None,
        scale: Optional[float] = None,
        source: str = "campaign",
    ) -> "DatasetStore":
        """Open ``run_dir`` if it already holds a store, else create one."""
        if (Path(run_dir) / MANIFEST_NAME).exists():
            return cls.open(run_dir)
        return cls.create(
            run_dir,
            seed=seed,
            config_hash=config_hash,
            scale=scale,
            source=source,
        )

    # -- identity ----------------------------------------------------------

    @property
    def run_dir(self) -> Path:
        return self._run_dir

    @property
    def manifest(self) -> Dict[str, Any]:
        return dict(self._manifest)

    @property
    def journal(self) -> RunJournal:
        return self._journal

    @property
    def shard_dir(self) -> Path:
        return self._run_dir / SHARD_DIR

    # -- write side --------------------------------------------------------

    def begin_run(self, plan: Dict[str, Any]) -> None:
        """Journal a campaign's ``begin`` entry (once per store)."""
        if self._journal.begin_entry() is not None:
            raise StoreError(f"{self._run_dir}: run already begun")
        entry = dict(plan)
        entry["type"] = BEGIN_ENTRY
        self._journal.append(entry)

    def flush_unit(
        self,
        unit: str,
        ping_block: Optional[PingBlock] = None,
        trace_block: Optional[TraceBlock] = None,
    ) -> Dict[str, Any]:
        """Durably persist one completed unit and journal it.

        Shards are written (and fsynced) first; the journal entry is
        appended only afterwards, so a crash at any point leaves the
        store consistent.  Returns the journal entry.
        """
        if unit in self.completed_units():
            raise StoreError(f"{self._run_dir}: unit {unit!r} already completed")
        stem = unit_file_stem(unit)
        entry: Dict[str, Any] = {
            "type": UNIT_ENTRY,
            "unit": unit,
            "pings": 0,
            "ping_samples": 0,
            "traceroutes": 0,
            "shards": [],
        }
        if ping_block is not None and len(ping_block):
            name = f"{stem}-pings.shard"
            write_ping_shard(self.shard_dir / name, ping_block, unit)
            entry["pings"] = len(ping_block)
            entry["ping_samples"] = ping_block.sample_count
            entry["shards"].append(name)
        if trace_block is not None and len(trace_block):
            name = f"{stem}-traces.shard"
            write_trace_shard(self.shard_dir / name, trace_block, unit)
            entry["traceroutes"] = len(trace_block)
            entry["shards"].append(name)
        self._journal.append(entry)
        return entry

    # -- read side ---------------------------------------------------------

    def completed_units(self) -> List[str]:
        """Ids of journaled units, in completion order."""
        return self._journal.completed_units()

    def unit_entries(self) -> List[Dict[str, Any]]:
        return self._journal.unit_entries()

    def _shard_paths(self, suffix: str) -> List[Path]:
        paths = []
        for entry in self.unit_entries():
            for name in entry["shards"]:
                if name.endswith(suffix):
                    paths.append(self.shard_dir / name)
        return paths

    def iter_ping_blocks(self, mmap: bool = True) -> Iterator[PingBlock]:
        """Decode journaled ping shards lazily, one block at a time."""
        for path in self._shard_paths("-pings.shard"):
            yield read_ping_shard(path, mmap=mmap)

    def iter_trace_blocks(self, mmap: bool = True) -> Iterator[TraceBlock]:
        """Decode journaled trace shards lazily, one block at a time."""
        for path in self._shard_paths("-traces.shard"):
            yield read_trace_shard(path, mmap=mmap)

    @property
    def ping_count(self) -> int:
        """Total journaled ping requests (no shard reads needed)."""
        return sum(entry["pings"] for entry in self.unit_entries())

    @property
    def ping_sample_count(self) -> int:
        return sum(entry["ping_samples"] for entry in self.unit_entries())

    @property
    def traceroute_count(self) -> int:
        return sum(entry["traceroutes"] for entry in self.unit_entries())

    def dataset(self) -> "StoredDataset":
        """The lazy, dataset-compatible read view (shard-at-a-time)."""
        from repro.store.view import StoredDataset

        return StoredDataset(self)

    def materialize(self) -> MeasurementDataset:
        """Load the whole store into an in-memory dataset.

        Blocks are decoded without memmaps so the result stays valid if
        the run directory is later deleted.
        """
        dataset = MeasurementDataset()
        for ping_block in self.iter_ping_blocks(mmap=False):
            dataset.add_ping_block(ping_block)
        for trace_block in self.iter_trace_blocks(mmap=False):
            dataset.add_trace_block(trace_block)
        return dataset

    # -- integrity ---------------------------------------------------------

    def verify(self) -> List[str]:
        """Check the whole store; returns a list of problems (empty = ok).

        Verifies that every journaled shard exists, passes its per-column
        CRC32s, decodes into a schema-valid block, and that decoded
        counts match the journal's.
        """
        problems: List[str] = []
        for entry in self.unit_entries():
            unit = entry["unit"]
            counted_pings = 0
            counted_samples = 0
            counted_traces = 0
            for name in entry["shards"]:
                path = self.shard_dir / name
                if not path.exists():
                    problems.append(f"{unit}: missing shard {name}")
                    continue
                try:
                    verify_shard(path)
                except ShardFormatError as exc:
                    problems.append(f"{unit}: {exc}")
                    continue
                try:
                    if name.endswith("-pings.shard"):
                        block = read_ping_shard(path)
                        counted_pings += len(block)
                        counted_samples += block.sample_count
                    else:
                        trace_block = read_trace_shard(path)
                        counted_traces += len(trace_block)
                except (ShardFormatError, TypeError, ValueError) as exc:
                    problems.append(f"{unit}: {name} fails to decode: {exc}")
            if counted_pings != entry["pings"]:
                problems.append(
                    f"{unit}: journal records {entry['pings']} pings, "
                    f"shards hold {counted_pings}"
                )
            if counted_samples != entry["ping_samples"]:
                problems.append(
                    f"{unit}: journal records {entry['ping_samples']} ping "
                    f"samples, shards hold {counted_samples}"
                )
            if counted_traces != entry["traceroutes"]:
                problems.append(
                    f"{unit}: journal records {entry['traceroutes']} "
                    f"traceroutes, shards hold {counted_traces}"
                )
        return problems

    def __repr__(self) -> str:
        return (
            f"DatasetStore({str(self._run_dir)!r}, "
            f"units={len(self.completed_units())}, "
            f"pings={self.ping_count}, traceroutes={self.traceroute_count})"
        )
