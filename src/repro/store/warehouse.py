"""The on-disk dataset warehouse.

A *store* is one run directory:

.. code-block:: text

    run_dir/
        manifest.json        static run metadata (format, seed, config hash)
        journal.jsonl        append-only completion journal (source of truth)
        shards/
            speedchecker-000-pings.shard
            speedchecker-000-traces.shard
            atlas-000-pings.shard
            ...

One *unit* -- a (platform, day) slice of a campaign, or one import
batch -- maps to at most one ping shard and one trace shard.  Shards are
written and fsynced **before** the unit's journal entry, so the journal
never references bytes the OS could still lose; conversely, any shard
without a journal entry is a crash leftover that the next resume
overwrites.

Reads are lazy: :meth:`DatasetStore.iter_ping_blocks` decodes one shard
at a time as memmap-backed blocks, so analyses stream a dataset far
larger than RAM.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.measure.results import (
    MeasurementDataset,
    PingBlock,
    TraceBlock,
)
from repro.store.fileops import FileOps
from repro.store.format import (
    ShardFormatError,
    read_columns,
    verify_shard_report,
)
from repro.store.journal import BEGIN_ENTRY, SKIP_ENTRY, UNIT_ENTRY, RunJournal
from repro.store.shards import (
    PING_SHARD_KIND,
    TRACE_SHARD_KIND,
    read_ping_shard,
    read_trace_shard,
    write_ping_shard,
    write_trace_shard,
    zone_problems,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.builder import QueryBuilder

PathLike = Union[str, Path]

#: Store layout file names.
MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
SHARD_DIR = "shards"

#: Manifest format tag and version.
STORE_FORMAT = "repro-store"
STORE_VERSION = 1


class StoreError(RuntimeError):
    """A store directory is missing, malformed, or inconsistent."""


def unit_file_stem(unit: str) -> str:
    """The shard file stem for a unit id (``speedchecker:003`` ->
    ``speedchecker-003``; colons are not portable in file names)."""
    return unit.replace(":", "-")


@dataclass(frozen=True)
class Coverage:
    """Unit-level coverage accounting for one store.

    ``planned`` comes from the ``begin`` entry's unit list (falling back
    to the journaled unit count for imported stores); ``completed``
    counts fully-populated units, ``partial`` those journaled with
    degraded results (quota ran out, probes disconnected), ``skipped``
    those the resilient runner gave up on.
    """

    planned: int
    completed: int
    partial: int
    skipped: int

    @property
    def pending(self) -> int:
        """Planned units not yet journaled either way."""
        return max(0, self.planned - self.completed - self.partial - self.skipped)

    @property
    def measured_fraction(self) -> float:
        """Fraction of planned units holding data (complete or partial)."""
        if self.planned <= 0:
            return 1.0
        return (self.completed + self.partial) / self.planned

    def as_dict(self) -> Dict[str, Any]:
        return {
            "planned": self.planned,
            "completed": self.completed,
            "partial": self.partial,
            "skipped": self.skipped,
            "pending": self.pending,
            "measured_fraction": round(self.measured_fraction, 6),
        }


def report_problems(report: Dict[str, Any]) -> List[str]:
    """Flatten a :meth:`DatasetStore.verify_report` into problem strings.

    Each string is ``"{unit}: {problem}"`` -- the exact format
    :meth:`DatasetStore.verify` has always returned.
    """
    problems: List[str] = []
    for unit_report in report["units"]:
        unit = unit_report["unit"]
        for shard_report in unit_report["shards"]:
            for problem in shard_report["problems"]:
                problems.append(f"{unit}: {problem}")
        for problem in unit_report["problems"]:
            problems.append(f"{unit}: {problem}")
    return problems


def _check_shard(task: Tuple[str, str]) -> Dict[str, Any]:
    """Verify one shard file: existence, CRCs, decodability, counts,
    and zone-map consistency.

    The unit of work of :meth:`DatasetStore.verify_report` -- a
    top-level function so the parallel verifier can fan shard checks
    out to worker processes (see :func:`repro.exec.parallel_map`).
    Returns the shard report plus the decoded record counts the caller
    cross-checks against the journal.
    """
    path_str, name = task
    path = Path(path_str)
    counts = {"pings": 0, "ping_samples": 0, "traceroutes": 0}
    if not path.exists():
        return {
            "name": name,
            "status": "missing",
            "problems": [f"missing shard {name}"],
            "counts": counts,
        }
    problems = verify_shard_report(path)
    if not problems:
        try:
            if name.endswith("-pings.shard"):
                block = read_ping_shard(path)
                counts["pings"] = len(block)
                counts["ping_samples"] = block.sample_count
            else:
                trace_block = read_trace_shard(path)
                counts["traceroutes"] = len(trace_block)
        except (ShardFormatError, TypeError, ValueError) as exc:
            problems.append(f"{name} fails to decode: {exc}")
        else:
            # The zone map the query planner prunes by must agree with
            # the column contents it summarizes.
            header, columns = read_columns(path)
            problems.extend(zone_problems(path, header, columns))
    return {
        "name": name,
        "status": "corrupt" if problems else "ok",
        "problems": problems,
        "counts": counts,
    }


@dataclass(frozen=True)
class ShardEntry:
    """One journaled shard in canonical (journal) order.

    The scan planner's unit of work: ``kind`` is the shard's record
    family (``pings``/``traces``), ``ordinal`` its position in the
    canonical shard sequence of that kind -- the merge order every
    parallel scan must reproduce.
    """

    unit: str
    name: str
    kind: str
    ordinal: int
    path: Path


class DatasetStore:
    """One on-disk measurement dataset: manifest + journal + shards."""

    def __init__(self, run_dir: Path, journal: RunJournal, manifest: Dict[str, Any]) -> None:
        self._run_dir = run_dir
        self._journal = journal
        self._manifest = manifest

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        run_dir: PathLike,
        seed: Optional[int] = None,
        config_hash: Optional[str] = None,
        scale: Optional[float] = None,
        source: str = "campaign",
    ) -> "DatasetStore":
        """Initialise a new store; refuses a directory that already holds one."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        if manifest_path.exists():
            raise StoreError(f"{run_dir}: already contains a store manifest")
        (run_dir / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Any] = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "seed": seed,
            "config_hash": config_hash,
            "scale": scale,
            "source": source,
        }
        # Atomic publish: a crash mid-write leaves no manifest, and open()
        # then correctly reports "not a store" instead of half a file.
        tmp_path = manifest_path.with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, sort_keys=True, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, manifest_path)
        return cls(run_dir, RunJournal(run_dir / JOURNAL_NAME), manifest)

    @classmethod
    def open(cls, run_dir: PathLike) -> "DatasetStore":
        """Open an existing store directory."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"{run_dir}: no store manifest found")
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("format") != STORE_FORMAT:
            raise StoreError(f"{run_dir}: not a {STORE_FORMAT} directory")
        if manifest.get("version") != STORE_VERSION:
            raise StoreError(
                f"{run_dir}: unsupported store version {manifest.get('version')}"
            )
        return cls(run_dir, RunJournal(run_dir / JOURNAL_NAME), manifest)

    @classmethod
    def open_or_create(
        cls,
        run_dir: PathLike,
        seed: Optional[int] = None,
        config_hash: Optional[str] = None,
        scale: Optional[float] = None,
        source: str = "campaign",
    ) -> "DatasetStore":
        """Open ``run_dir`` if it already holds a store, else create one."""
        if (Path(run_dir) / MANIFEST_NAME).exists():
            return cls.open(run_dir)
        return cls.create(
            run_dir,
            seed=seed,
            config_hash=config_hash,
            scale=scale,
            source=source,
        )

    # -- identity ----------------------------------------------------------

    @property
    def run_dir(self) -> Path:
        return self._run_dir

    @property
    def manifest(self) -> Dict[str, Any]:
        return dict(self._manifest)

    @property
    def journal(self) -> RunJournal:
        return self._journal

    @property
    def shard_dir(self) -> Path:
        return self._run_dir / SHARD_DIR

    # -- write side --------------------------------------------------------

    def begin_run(self, plan: Dict[str, Any]) -> None:
        """Journal a campaign's ``begin`` entry (once per store)."""
        if self._journal.begin_entry() is not None:
            raise StoreError(f"{self._run_dir}: run already begun")
        entry = dict(plan)
        entry["type"] = BEGIN_ENTRY
        self._journal.append(entry)

    def write_unit_shards(
        self,
        unit: str,
        ping_block: Optional[PingBlock] = None,
        trace_block: Optional[TraceBlock] = None,
        fileops: Optional[FileOps] = None,
    ) -> Dict[str, Any]:
        """Write (and fsync) one unit's shards; returns the journal entry
        *without appending it*.

        The write half of :meth:`flush_unit`.  The resilient runner
        splits the two so it can verify the shards (and retry a faulted
        write) before anything is journaled.  ``fileops`` substitutes
        the shard file primitives (the storage fault-injection hook).
        """
        if unit in self.completed_units():
            raise StoreError(f"{self._run_dir}: unit {unit!r} already completed")
        stem = unit_file_stem(unit)
        entry: Dict[str, Any] = {
            "type": UNIT_ENTRY,
            "unit": unit,
            "pings": 0,
            "ping_samples": 0,
            "traceroutes": 0,
            "shards": [],
        }
        if ping_block is not None and len(ping_block):
            name = f"{stem}-pings.shard"
            write_ping_shard(
                self.shard_dir / name, ping_block, unit, fileops=fileops
            )
            entry["pings"] = len(ping_block)
            entry["ping_samples"] = ping_block.sample_count
            entry["shards"].append(name)
        if trace_block is not None and len(trace_block):
            name = f"{stem}-traces.shard"
            write_trace_shard(
                self.shard_dir / name, trace_block, unit, fileops=fileops
            )
            entry["traceroutes"] = len(trace_block)
            entry["shards"].append(name)
        return entry

    def verify_unit_shards(self, entry: Dict[str, Any]) -> None:
        """Re-checksum the shards named by a pending unit entry.

        Raises :class:`~repro.store.format.ShardFormatError` on the
        first problem.  The resilient runner calls this between a
        fault-injected write and the journal append, so a silently
        corrupted shard is caught while the unit can still be retried.
        """
        for name in entry["shards"]:
            problems = verify_shard_report(self.shard_dir / name)
            if problems:
                raise ShardFormatError(problems[0])

    def journal_unit(
        self, entry: Dict[str, Any], extra: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Append a pending unit entry (from :meth:`write_unit_shards`).

        ``extra`` merges additional accounting into the entry before the
        append -- attempt counts, virtual backoff, fault events, and the
        ``"status": "partial"`` marker for degraded units.
        """
        unit = entry["unit"]
        if unit in self.completed_units():
            raise StoreError(f"{self._run_dir}: unit {unit!r} already completed")
        if unit in self.skipped_units():
            raise StoreError(f"{self._run_dir}: unit {unit!r} already skipped")
        if extra:
            entry = {**entry, **extra}
        self._journal.append(entry)
        return entry

    def flush_unit(
        self,
        unit: str,
        ping_block: Optional[PingBlock] = None,
        trace_block: Optional[TraceBlock] = None,
    ) -> Dict[str, Any]:
        """Durably persist one completed unit and journal it.

        Shards are written (and fsynced) first; the journal entry is
        appended only afterwards, so a crash at any point leaves the
        store consistent.  Returns the journal entry.
        """
        entry = self.write_unit_shards(unit, ping_block, trace_block)
        return self.journal_unit(entry)

    def journal_skip(
        self,
        unit: str,
        reason: str,
        attempts: int,
        backoff_ms: float = 0.0,
        faults: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """Journal a unit the resilient runner gave up on.

        A skipped unit is closed: it counts against coverage and resume
        will not re-run it (use store repair to re-open units).
        """
        if unit in self.completed_units():
            raise StoreError(f"{self._run_dir}: unit {unit!r} already completed")
        if unit in self.skipped_units():
            raise StoreError(f"{self._run_dir}: unit {unit!r} already skipped")
        entry: Dict[str, Any] = {
            "type": SKIP_ENTRY,
            "unit": unit,
            "reason": reason,
            "attempts": attempts,
        }
        if backoff_ms:
            entry["backoff_ms"] = round(backoff_ms, 3)
        if faults:
            entry["faults"] = list(faults)
        self._journal.append(entry)
        return entry

    # -- read side ---------------------------------------------------------

    def completed_units(self) -> List[str]:
        """Ids of journaled units, in completion order."""
        return self._journal.completed_units()

    def unit_entries(self) -> List[Dict[str, Any]]:
        return self._journal.unit_entries()

    def skipped_units(self) -> List[str]:
        """Ids of units the resilient runner journaled as skipped."""
        return self._journal.skipped_units()

    def skip_entries(self) -> List[Dict[str, Any]]:
        return self._journal.skip_entries()

    def coverage(self) -> Coverage:
        """Unit-level coverage accounting (planned/completed/partial/skipped)."""
        unit_entries = self.unit_entries()
        partial = sum(
            1 for entry in unit_entries if entry.get("status") == "partial"
        )
        completed = len(self._journal.completed_units()) - partial
        skipped = len(self.skipped_units())
        begin = self._journal.begin_entry()
        if begin is not None and "units" in begin:
            planned = len(begin["units"])
        else:
            planned = completed + partial + skipped
        return Coverage(
            planned=planned,
            completed=completed,
            partial=partial,
            skipped=skipped,
        )

    def _shard_paths(self, suffix: str) -> List[Path]:
        paths = []
        for entry in self.unit_entries():
            for name in entry["shards"]:
                if name.endswith(suffix):
                    paths.append(self.shard_dir / name)
        return paths

    def shard_entries(self, kind: Optional[str] = None) -> List[ShardEntry]:
        """Every journaled shard in canonical journal order.

        ``kind`` restricts the listing to one record family
        (:data:`~repro.store.shards.PING_SHARD_KIND` or
        :data:`~repro.store.shards.TRACE_SHARD_KIND`).  Ordinals number
        the shards *within* their family, so the canonical merge order
        of a ping scan is independent of interleaved trace shards.
        """
        entries: List[ShardEntry] = []
        ordinals = {PING_SHARD_KIND: 0, TRACE_SHARD_KIND: 0}
        for entry in self.unit_entries():
            for name in entry["shards"]:
                shard_kind = (
                    PING_SHARD_KIND
                    if name.endswith("-pings.shard")
                    else TRACE_SHARD_KIND
                )
                if kind is not None and shard_kind != kind:
                    continue
                entries.append(
                    ShardEntry(
                        unit=entry["unit"],
                        name=name,
                        kind=shard_kind,
                        ordinal=ordinals[shard_kind],
                        path=self.shard_dir / name,
                    )
                )
                ordinals[shard_kind] += 1
        return entries

    def manifest_digest(self) -> str:
        """sha256 over the manifest file -- the store's static identity."""
        return hashlib.sha256(
            (self._run_dir / MANIFEST_NAME).read_bytes()
        ).hexdigest()

    def journal_digest(self) -> str:
        """sha256 over the journal's well-formed prefix.

        The query-result cache keys on this: any appended unit (or a
        repair rewrite) changes the digest, so cached results are
        invalidated exactly when the set of journaled shards changes.
        A complete journal ends with a newline, so for quiescent stores
        this is the whole-file digest; on a live store an in-flight torn
        tail is excluded, matching what the entry accessors return.
        """
        return self._journal.digest()

    def snapshot(self) -> "DatasetStore":
        """A read view of this store pinned to one journal prefix.

        Every journal-derived accessor of the returned store (units,
        coverage, digests, verify) answers from a single consistent read
        taken now, so inspecting a store *while a campaign is writing to
        it* can never mix two commit states.  Shards are write-ahead
        (durable before their journal entry), so every shard the pinned
        journal references exists on disk.
        """
        return DatasetStore(self._run_dir, self._journal.pin(), self._manifest)

    def query(self) -> "QueryBuilder":
        """A :class:`repro.query.QueryBuilder` over this store."""
        from repro.query.builder import QueryBuilder

        return QueryBuilder(self)

    def iter_ping_blocks(self, mmap: bool = True) -> Iterator[PingBlock]:
        """Decode journaled ping shards lazily, one block at a time."""
        for path in self._shard_paths("-pings.shard"):
            yield read_ping_shard(path, mmap=mmap)

    def iter_trace_blocks(self, mmap: bool = True) -> Iterator[TraceBlock]:
        """Decode journaled trace shards lazily, one block at a time."""
        for path in self._shard_paths("-traces.shard"):
            yield read_trace_shard(path, mmap=mmap)

    @property
    def ping_count(self) -> int:
        """Total journaled ping requests (no shard reads needed)."""
        return sum(entry["pings"] for entry in self.unit_entries())

    @property
    def ping_sample_count(self) -> int:
        return sum(entry["ping_samples"] for entry in self.unit_entries())

    @property
    def traceroute_count(self) -> int:
        return sum(entry["traceroutes"] for entry in self.unit_entries())

    def dataset(self) -> "StoredDataset":
        """The lazy, dataset-compatible read view (shard-at-a-time)."""
        from repro.store.view import StoredDataset

        return StoredDataset(self)

    def materialize(self) -> MeasurementDataset:
        """Load the whole store into an in-memory dataset.

        Blocks are decoded without memmaps so the result stays valid if
        the run directory is later deleted.
        """
        dataset = MeasurementDataset()
        for ping_block in self.iter_ping_blocks(mmap=False):
            dataset.add_ping_block(ping_block)
        for trace_block in self.iter_trace_blocks(mmap=False):
            dataset.add_trace_block(trace_block)
        return dataset

    # -- integrity ---------------------------------------------------------

    def verify_report(self, workers: int = 1) -> Dict[str, Any]:
        """Check the whole store; returns a structured per-shard report.

        Every journaled shard is checked -- existence, per-column CRC32s,
        decodability, and journal/shard count agreement -- and *all*
        problems are collected, never just the first.  The report shape::

            {"ok": bool,
             "units": [{"unit": ..., "status": "ok"|"corrupt",
                        "problems": [...],          # count mismatches
                        "shards": [{"name": ..., "status":
                                    "ok"|"missing"|"corrupt",
                                    "problems": [...]}]}],
             "coverage": {...}}

        ``workers`` > 1 fans the per-shard checks out to that many
        forked worker processes (:func:`repro.exec.parallel_map`); the
        report -- unit order, shard order, every problem string -- is
        identical to the serial result by construction.
        """
        entries = self.unit_entries()
        tasks: List[Tuple[str, str]] = [
            (str(self.shard_dir / name), name)
            for entry in entries
            for name in entry["shards"]
        ]
        if workers > 1 and len(tasks) > 1:
            from repro.exec.pool import parallel_map

            checks = parallel_map(_check_shard, tasks, workers)
        else:
            checks = [_check_shard(task) for task in tasks]
        check_iter = iter(checks)

        units: List[Dict[str, Any]] = []
        for entry in entries:
            unit = entry["unit"]
            counted_pings = 0
            counted_samples = 0
            counted_traces = 0
            shard_reports: List[Dict[str, Any]] = []
            for name in entry["shards"]:
                check = next(check_iter)
                counted_pings += check["counts"]["pings"]
                counted_samples += check["counts"]["ping_samples"]
                counted_traces += check["counts"]["traceroutes"]
                shard_reports.append(
                    {
                        "name": check["name"],
                        "status": check["status"],
                        "problems": check["problems"],
                    }
                )
            unit_problems: List[str] = []
            if counted_pings != entry["pings"]:
                unit_problems.append(
                    f"journal records {entry['pings']} pings, "
                    f"shards hold {counted_pings}"
                )
            if counted_samples != entry["ping_samples"]:
                unit_problems.append(
                    f"journal records {entry['ping_samples']} ping "
                    f"samples, shards hold {counted_samples}"
                )
            if counted_traces != entry["traceroutes"]:
                unit_problems.append(
                    f"journal records {entry['traceroutes']} "
                    f"traceroutes, shards hold {counted_traces}"
                )
            clean = not unit_problems and all(
                shard["status"] == "ok" for shard in shard_reports
            )
            units.append(
                {
                    "unit": unit,
                    "status": "ok" if clean else "corrupt",
                    "problems": unit_problems,
                    "shards": shard_reports,
                }
            )
        return {
            "ok": all(unit["status"] == "ok" for unit in units),
            "units": units,
            "coverage": self.coverage().as_dict(),
        }

    def verify(self, workers: int = 1) -> List[str]:
        """Check the whole store; returns a list of problems (empty = ok).

        The flat-string view of :meth:`verify_report`: every journaled
        shard's existence, per-column CRC32s, decodability, and
        journal/shard count agreement.  ``workers`` > 1 parallelizes the
        shard checks without changing the problem list.
        """
        return report_problems(self.verify_report(workers=workers))

    def quarantine_units(self, units: List[str]) -> List[str]:
        """Drop the journal entries and shard files of corrupt units.

        The journal is rewritten (atomically) *first*, then the orphaned
        shard files are unlinked -- the same write-ahead discipline as
        the forward path, so a crash mid-quarantine leaves at worst
        unjournaled shard leftovers that the re-run overwrites.  Returns
        the unit ids actually dropped.
        """
        doomed = set(units)
        if not doomed:
            return []
        dropped: List[str] = []
        kept: List[Dict[str, Any]] = []
        shard_names: List[str] = []
        for entry in self._journal.entries():
            if (
                entry["type"] in (UNIT_ENTRY, SKIP_ENTRY)
                and entry["unit"] in doomed
            ):
                if entry["unit"] not in dropped:
                    dropped.append(entry["unit"])
                shard_names.extend(entry.get("shards", []))
                continue
            kept.append(entry)
        if not dropped:
            return []
        self._journal.rewrite(kept)
        for name in shard_names:
            path = self.shard_dir / name
            if path.exists():
                path.unlink()
        return dropped

    def __repr__(self) -> str:
        return (
            f"DatasetStore({str(self._run_dir)!r}, "
            f"units={len(self.completed_units())}, "
            f"pings={self.ping_count}, traceroutes={self.traceroute_count})"
        )
