"""repro.store: the binary columnar dataset warehouse.

Persists campaign measurements as memmap-friendly binary shards (one
per campaign unit) under a journaled run directory, and serves them back
lazily -- see ``docs/STORAGE.md`` for the format and the resume
semantics, and ``python -m repro.store --help`` for the CLI.
"""

from repro.store.fileops import DEFAULT_FILEOPS, FileOps
from repro.store.format import (
    ShardFormatError,
    read_columns,
    verify_shard,
    verify_shard_report,
    write_shard,
)
from repro.store.journal import (
    JournalError,
    JournalSnapshot,
    JournalTailer,
    RunJournal,
)
from repro.store.shards import (
    column_zone,
    compute_zones,
    header_zones,
    read_ping_shard,
    read_trace_shard,
    write_ping_shard,
    write_trace_shard,
    zone_problems,
)
from repro.store.view import StoredDataset
from repro.store.warehouse import (
    Coverage,
    DatasetStore,
    ShardEntry,
    StoreError,
    report_problems,
)

__all__ = [
    "Coverage",
    "DEFAULT_FILEOPS",
    "DatasetStore",
    "FileOps",
    "JournalError",
    "JournalSnapshot",
    "JournalTailer",
    "RunJournal",
    "ShardEntry",
    "ShardFormatError",
    "StoreError",
    "StoredDataset",
    "column_zone",
    "compute_zones",
    "header_zones",
    "read_columns",
    "read_ping_shard",
    "read_trace_shard",
    "report_problems",
    "verify_shard",
    "verify_shard_report",
    "write_ping_shard",
    "write_trace_shard",
    "write_shard",
    "zone_problems",
]
