"""The warehouse command-line interface.

Subcommands::

    python -m repro.store info <run_dir>
    python -m repro.store verify <run_dir>
    python -m repro.store export-jsonl <run_dir> <out.jsonl[.gz]>
    python -m repro.store import-jsonl <in.jsonl[.gz]> <run_dir>

``export-jsonl`` streams the store shard-at-a-time through the columnar
JSONL writer, so arbitrarily large stores export in bounded memory.
``import-jsonl`` columnarizes a JSONL dataset into one store unit per
(platform, day), which both shrinks it and makes subsequent loads
memmap-fast.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.measure.io import load_dataset, save_dataset
from repro.measure.results import (
    PingMeasurement,
    TracerouteMeasurement,
    ping_block_from_records,
    trace_block_from_records,
)
from repro.store.format import read_header
from repro.store.shards import header_zones
from repro.store.warehouse import DatasetStore, StoreError, report_problems


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.store",
        description="Inspect, verify and convert binary dataset stores",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="print a store's inventory")
    info.add_argument("run_dir", help="store run directory")
    info.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit a machine-readable inventory including each shard's "
        "per-column zone map (row count, value min/max)",
    )

    verify = subparsers.add_parser(
        "verify", help="checksum every shard and cross-check the journal"
    )
    verify.add_argument("run_dir", help="store run directory")
    verify.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the full per-shard report as JSON",
    )
    verify.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for shard checks (default 1; the report "
        "is identical at any worker count)",
    )

    export = subparsers.add_parser(
        "export-jsonl", help="export a store as line-delimited JSON"
    )
    export.add_argument("run_dir", help="store run directory")
    export.add_argument("output", help="output path (.jsonl or .jsonl.gz)")

    imp = subparsers.add_parser(
        "import-jsonl", help="columnarize a JSONL dataset into a new store"
    )
    imp.add_argument("input", help="input path (.jsonl or .jsonl.gz)")
    imp.add_argument("run_dir", help="new store run directory")

    return parser


def _info_json(store: DatasetStore) -> Dict[str, object]:
    """The machine-readable inventory: manifest, counts, per-shard zones.

    The planner-facing part is ``shards[*].zones``: each shard's
    per-column zone map straight from its header, so operators can see
    exactly what ``repro.query`` pruning has to work with.  Shards
    written before zone maps existed report ``zones: null``.
    """
    shards = []
    for entry in store.shard_entries():
        header, _ = read_header(entry.path)
        shards.append(
            {
                "unit": entry.unit,
                "name": entry.name,
                "kind": entry.kind,
                "ordinal": entry.ordinal,
                "bytes": entry.path.stat().st_size,
                "zones": header_zones(header),
            }
        )
    return {
        "run_dir": str(store.run_dir),
        "manifest": store.manifest,
        "units": len(store.unit_entries()),
        "coverage": store.coverage().as_dict(),
        "pings": store.ping_count,
        "ping_samples": store.ping_sample_count,
        "traceroutes": store.traceroute_count,
        "manifest_digest": store.manifest_digest(),
        "journal_digest": store.journal_digest(),
        "shards": shards,
    }


def _command_info(args: argparse.Namespace) -> int:
    # Pin one journal prefix up front: info touches the journal through
    # many accessors, and a live campaign appending between them would
    # otherwise yield a mixed-commit-state inventory (counts from one
    # prefix, digest from another).
    store = DatasetStore.open(args.run_dir).snapshot()
    if args.as_json:
        print(json.dumps(_info_json(store), indent=2, sort_keys=True))
        return 0
    manifest = store.manifest
    print(f"store:       {store.run_dir}")
    print(f"format:      {manifest['format']} v{manifest['version']}")
    print(f"source:      {manifest.get('source')}")
    print(f"seed:        {manifest.get('seed')}")
    print(f"scale:       {manifest.get('scale')}")
    print(f"config_hash: {manifest.get('config_hash')}")
    entries = store.unit_entries()
    shard_files = [name for entry in entries for name in entry["shards"]]
    total_bytes = sum(
        (store.shard_dir / name).stat().st_size
        for name in shard_files
        if (store.shard_dir / name).exists()
    )
    begin = store.journal.begin_entry()
    if begin is not None:
        planned = len(begin.get("units", []))
        print(f"plan:        {begin['days']} days x {begin['platforms']}")
        print(f"progress:    {len(entries)}/{planned} units complete")
    else:
        print(f"units:       {len(entries)}")
    coverage = store.coverage()
    if coverage.partial or coverage.skipped:
        print(
            f"coverage:    {coverage.completed} complete, "
            f"{coverage.partial} partial, {coverage.skipped} skipped"
        )
    print(f"shards:      {len(shard_files)} files, {total_bytes} bytes")
    print(
        f"contents:    {store.ping_count} pings "
        f"({store.ping_sample_count} samples), "
        f"{store.traceroute_count} traceroutes"
    )
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    # Same pinning as info: shards are write-ahead, so every shard the
    # pinned journal references is durable even mid-campaign.
    store = DatasetStore.open(args.run_dir).snapshot()
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    report = store.verify_report(workers=args.workers)
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    problems = report_problems(report)
    units = len(store.unit_entries())
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        print(f"{len(problems)} problem(s) across {units} unit(s)")
        return 1
    print(
        f"OK {units} unit(s), {store.ping_count} pings, "
        f"{store.traceroute_count} traceroutes"
    )
    coverage = store.coverage()
    if coverage.partial or coverage.skipped or coverage.pending:
        print(
            f"coverage: {coverage.completed} complete, "
            f"{coverage.partial} partial, {coverage.skipped} skipped, "
            f"{coverage.pending} pending of {coverage.planned} planned"
        )
    return 0


def _command_export(args: argparse.Namespace) -> int:
    store = DatasetStore.open(args.run_dir)
    lines = save_dataset(store.dataset(), args.output)
    print(f"Wrote {lines} measurements to {args.output}", file=sys.stderr)
    return 0


def _command_import(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.input)
    pings_by_unit: Dict[Tuple[str, int], List[PingMeasurement]] = defaultdict(list)
    traces_by_unit: Dict[Tuple[str, int], List[TracerouteMeasurement]] = (
        defaultdict(list)
    )
    for ping in dataset.pings():
        pings_by_unit[(ping.meta.platform, ping.meta.day)].append(ping)
    for trace in dataset.traceroutes():
        traces_by_unit[(trace.meta.platform, trace.meta.day)].append(trace)

    store = DatasetStore.create(Path(args.run_dir), source="import")
    # Units keep the input's first-seen order, so exporting the imported
    # store reproduces the original file byte-for-byte.
    units = list(
        dict.fromkeys(list(pings_by_unit) + list(traces_by_unit))
    )
    for platform, day in units:
        unit = f"{platform}:{day:03d}"
        store.flush_unit(
            unit,
            ping_block=ping_block_from_records(
                pings_by_unit.get((platform, day), [])
            ),
            trace_block=trace_block_from_records(
                traces_by_unit.get((platform, day), [])
            ),
        )
    print(
        f"Imported {store.ping_count} pings and {store.traceroute_count} "
        f"traceroutes into {store.run_dir} ({len(units)} units)",
        file=sys.stderr,
    )
    return 0


_COMMANDS = {
    "info": _command_info,
    "verify": _command_verify,
    "export-jsonl": _command_export,
    "import-jsonl": _command_import,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
