"""The append-only run journal.

The journal is the store's source of truth for *what completed*.  Every
line is one JSON object with a ``type`` tag:

- ``begin`` -- written once when a campaign starts: master seed, config
  hash, scale, the planned day count, platform list and unit ids.
- ``unit`` -- written after a unit's shards are durably on disk: the
  unit id, shard file names, and record counts (plus, for resilient
  runs, the attempt count, accounted virtual backoff, fault events and
  a ``partial`` status when degradation lost some scheduled requests).
- ``skip`` -- written when the resilient runner gives a unit up: the
  unit id, the reason (last failure or an open circuit breaker), and the
  attempts spent.  Skipped units count against coverage, never silently
  vanish.

Shard writes happen *before* their journal entry (write-ahead on the
data, not the log), so a crash at any instant leaves either a journaled
unit with complete shards or an unjournaled partial shard that resume
simply overwrites.  Each append is flushed and fsynced; a torn final
line from a crash mid-append is detected and ignored on read.

No timestamps, hostnames or pids appear anywhere: two runs of the same
campaign produce byte-identical journals, which the resume-equivalence
tests rely on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]

#: ``type`` tags of journal entries.
BEGIN_ENTRY = "begin"
UNIT_ENTRY = "unit"
SKIP_ENTRY = "skip"


class JournalError(ValueError):
    """The journal is malformed beyond a torn trailing line."""


class RunJournal:
    """An append-only JSONL journal for one store run directory."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    def exists(self) -> bool:
        return self._path.exists()

    def append(self, entry: Dict[str, Any]) -> None:
        """Durably append one entry (flush + fsync before returning).

        A torn trailing line left by a crash mid-append is truncated
        away first -- reads already ignore it, but appending after it
        without the trim would fuse the torn fragment and the new entry
        into one corrupt line.
        """
        if "type" not in entry:
            raise JournalError("journal entries must carry a 'type' tag")
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with open(self._path, "a+b") as fh:
            size = fh.seek(0, os.SEEK_END)
            if size:
                fh.seek(size - 1)
                if fh.read(1) != b"\n":
                    fh.seek(0)
                    fh.truncate(fh.read().rfind(b"\n") + 1)
            fh.write((line + "\n").encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())

    def entries(self) -> List[Dict[str, Any]]:
        """All well-formed entries, in append order.

        A torn final line (crash mid-append) is silently dropped; a
        malformed line anywhere *before* the end means real corruption
        and raises :class:`JournalError`.
        """
        if not self._path.exists():
            return []
        with open(self._path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        # A complete journal ends with "\n", so the final split element
        # is empty; anything else there is a torn append and is dropped.
        lines.pop()
        entries: List[Dict[str, Any]] = []
        for number, line in enumerate(lines, start=1):
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalError(
                    f"{self._path}:{number}: corrupt journal line: {exc}"
                ) from exc
            if not isinstance(entry, dict) or "type" not in entry:
                raise JournalError(
                    f"{self._path}:{number}: journal line is not a tagged object"
                )
            entries.append(entry)
        return entries

    def begin_entry(self) -> Optional[Dict[str, Any]]:
        """The run's ``begin`` entry, or ``None`` for an empty journal."""
        for entry in self.entries():
            if entry["type"] == BEGIN_ENTRY:
                return entry
        return None

    def unit_entries(self) -> List[Dict[str, Any]]:
        """All ``unit`` completion entries, in completion order."""
        return [e for e in self.entries() if e["type"] == UNIT_ENTRY]

    def completed_units(self) -> List[str]:
        """Ids of journaled (i.e. durably completed) units, in order."""
        seen = set()
        ordered: List[str] = []
        for entry in self.unit_entries():
            unit = entry["unit"]
            if unit not in seen:
                seen.add(unit)
                ordered.append(unit)
        return ordered

    def skip_entries(self) -> List[Dict[str, Any]]:
        """All ``skip`` (gave-up unit) entries, in journal order."""
        return [e for e in self.entries() if e["type"] == SKIP_ENTRY]

    def skipped_units(self) -> List[str]:
        """Ids of journaled skipped units, deduplicated, in order."""
        seen = set()
        ordered: List[str] = []
        for entry in self.skip_entries():
            unit = entry["unit"]
            if unit not in seen:
                seen.add(unit)
                ordered.append(unit)
        return ordered

    def rewrite(self, entries: List[Dict[str, Any]]) -> None:
        """Atomically replace the journal's contents with ``entries``.

        Used by store repair (quarantining corrupt units before a
        re-run): the new journal is written to a temp file, fsynced, and
        published with :func:`os.replace`, so a crash leaves either the
        old journal or the new one -- never a half-written mix.
        """
        for entry in entries:
            if "type" not in entry:
                raise JournalError("journal entries must carry a 'type' tag")
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(
                    json.dumps(entry, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, self._path)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.entries())

    def __repr__(self) -> str:
        return f"RunJournal({str(self._path)!r})"
