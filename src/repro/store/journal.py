"""The append-only run journal.

The journal is the store's source of truth for *what completed*.  Every
line is one JSON object with a ``type`` tag:

- ``begin`` -- written once when a campaign starts: master seed, config
  hash, scale, the planned day count, platform list and unit ids.
- ``unit`` -- written after a unit's shards are durably on disk: the
  unit id, shard file names, and record counts (plus, for resilient
  runs, the attempt count, accounted virtual backoff, fault events and
  a ``partial`` status when degradation lost some scheduled requests).
- ``skip`` -- written when the resilient runner gives a unit up: the
  unit id, the reason (last failure or an open circuit breaker), and the
  attempts spent.  Skipped units count against coverage, never silently
  vanish.

Shard writes happen *before* their journal entry (write-ahead on the
data, not the log), so a crash at any instant leaves either a journaled
unit with complete shards or an unjournaled partial shard that resume
simply overwrites.  Each append is flushed and fsynced; a torn final
line from a crash mid-append is detected and ignored on read.

No timestamps, hostnames or pids appear anywhere: two runs of the same
campaign produce byte-identical journals, which the resume-equivalence
tests rely on.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]

#: ``type`` tags of journal entries.
BEGIN_ENTRY = "begin"
UNIT_ENTRY = "unit"
SKIP_ENTRY = "skip"


class JournalError(ValueError):
    """The journal is malformed beyond a torn trailing line."""


def _well_formed_prefix(data: bytes) -> bytes:
    """The journal bytes up to (and including) the last newline.

    A writer crash -- or a *live* writer caught mid-append -- leaves a
    torn final line with no trailing newline; everything before it is a
    complete, durable prefix.  All consistent reads (entries, digests,
    snapshots, tailing) operate on this prefix, so a reader racing an
    appender sees some valid prefix of the journal, never a half line.
    """
    end = data.rfind(b"\n")
    return data[: end + 1] if end >= 0 else b""


def _parse_prefix(path: Path, prefix: bytes) -> List[Dict[str, Any]]:
    """Parse a well-formed journal prefix into tagged entries."""
    entries: List[Dict[str, Any]] = []
    for number, raw in enumerate(prefix.split(b"\n"), start=1):
        if not raw:
            continue
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise JournalError(
                f"{path}:{number}: corrupt journal line: {exc}"
            ) from exc
        if not isinstance(entry, dict) or "type" not in entry:
            raise JournalError(
                f"{path}:{number}: journal line is not a tagged object"
            )
        entries.append(entry)
    return entries


class RunJournal:
    """An append-only JSONL journal for one store run directory."""

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    def exists(self) -> bool:
        return self._path.exists()

    def append(self, entry: Dict[str, Any]) -> None:
        """Durably append one entry (flush + fsync before returning).

        A torn trailing line left by a crash mid-append is truncated
        away first -- reads already ignore it, but appending after it
        without the trim would fuse the torn fragment and the new entry
        into one corrupt line.
        """
        if "type" not in entry:
            raise JournalError("journal entries must carry a 'type' tag")
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with open(self._path, "a+b") as fh:
            size = fh.seek(0, os.SEEK_END)
            if size:
                fh.seek(size - 1)
                if fh.read(1) != b"\n":
                    fh.seek(0)
                    fh.truncate(fh.read().rfind(b"\n") + 1)
            fh.write((line + "\n").encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())

    def _read_prefix(self) -> bytes:
        """One consistent read of the well-formed journal prefix."""
        if not self._path.exists():
            return b""
        return _well_formed_prefix(self._path.read_bytes())

    def entries(self) -> List[Dict[str, Any]]:
        """All well-formed entries, in append order.

        A torn final line (crash mid-append, or a live writer caught
        between write and newline) is silently dropped; a malformed line
        anywhere *before* the end means real corruption and raises
        :class:`JournalError`.
        """
        return _parse_prefix(self._path, self._read_prefix())

    def digest(self) -> str:
        """sha256 over the well-formed journal prefix.

        Complete journals always end with a newline, so for a quiescent
        store this is the digest of the whole file; on a journal with an
        in-flight append only the durable prefix is hashed, keeping the
        digest consistent with what :meth:`entries` returns.
        """
        return hashlib.sha256(self._read_prefix()).hexdigest()

    def pin(self) -> "JournalSnapshot":
        """Freeze one consistent view of the journal.

        The file is read exactly once; every accessor of the returned
        snapshot (entries, units, digest) answers from that single read,
        so a reader racing a live writer gets internally consistent
        results -- entry lists, coverage and digest all describe the
        same journal prefix.  :meth:`entries` alone already tolerates a
        torn tail, but two *separate* calls may straddle a commit; the
        snapshot is how multi-accessor readers (``repro.store verify`` /
        ``info --json``, the service's live result tail) stay coherent.
        """
        prefix = self._read_prefix()
        return JournalSnapshot(
            self._path,
            _parse_prefix(self._path, prefix),
            hashlib.sha256(prefix).hexdigest(),
        )

    def begin_entry(self) -> Optional[Dict[str, Any]]:
        """The run's ``begin`` entry, or ``None`` for an empty journal."""
        for entry in self.entries():
            if entry["type"] == BEGIN_ENTRY:
                return entry
        return None

    def unit_entries(self) -> List[Dict[str, Any]]:
        """All ``unit`` completion entries, in completion order."""
        return [e for e in self.entries() if e["type"] == UNIT_ENTRY]

    def completed_units(self) -> List[str]:
        """Ids of journaled (i.e. durably completed) units, in order."""
        seen = set()
        ordered: List[str] = []
        for entry in self.unit_entries():
            unit = entry["unit"]
            if unit not in seen:
                seen.add(unit)
                ordered.append(unit)
        return ordered

    def skip_entries(self) -> List[Dict[str, Any]]:
        """All ``skip`` (gave-up unit) entries, in journal order."""
        return [e for e in self.entries() if e["type"] == SKIP_ENTRY]

    def skipped_units(self) -> List[str]:
        """Ids of journaled skipped units, deduplicated, in order."""
        seen = set()
        ordered: List[str] = []
        for entry in self.skip_entries():
            unit = entry["unit"]
            if unit not in seen:
                seen.add(unit)
                ordered.append(unit)
        return ordered

    def rewrite(self, entries: List[Dict[str, Any]]) -> None:
        """Atomically replace the journal's contents with ``entries``.

        Used by store repair (quarantining corrupt units before a
        re-run): the new journal is written to a temp file, fsynced, and
        published with :func:`os.replace`, so a crash leaves either the
        old journal or the new one -- never a half-written mix.
        """
        for entry in entries:
            if "type" not in entry:
                raise JournalError("journal entries must carry a 'type' tag")
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(
                    json.dumps(entry, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, self._path)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.entries())

    def __repr__(self) -> str:
        return f"RunJournal({str(self._path)!r})"


class JournalSnapshot(RunJournal):
    """A read-only, internally consistent view of one journal prefix.

    Produced by :meth:`RunJournal.pin`.  All read accessors answer from
    the single read taken at pin time; the write side is disabled, so a
    snapshot can never be confused for the live journal.
    """

    def __init__(
        self, path: Path, entries: List[Dict[str, Any]], digest: str
    ) -> None:
        super().__init__(path)
        self._entries = entries
        self._digest = digest

    def entries(self) -> List[Dict[str, Any]]:
        return list(self._entries)

    def digest(self) -> str:
        return self._digest

    def pin(self) -> "JournalSnapshot":
        return self

    def append(self, entry: Dict[str, Any]) -> None:
        raise JournalError(f"{self._path}: journal snapshot is read-only")

    def rewrite(self, entries: List[Dict[str, Any]]) -> None:
        raise JournalError(f"{self._path}: journal snapshot is read-only")

    def __repr__(self) -> str:
        return (
            f"JournalSnapshot({str(self._path)!r}, "
            f"entries={len(self._entries)})"
        )


class JournalTailer:
    """Incremental reader of a journal that is still being written.

    Each :meth:`poll` returns the entries that became durable (newline-
    terminated) since the previous poll, tolerating a torn final line
    exactly like :meth:`RunJournal.entries`.  The tailer tracks a byte
    offset, so polling is O(new bytes), not O(journal): the measurement
    service polls one tailer per running campaign to stream unit/skip
    events to clients as they commit.

    If the journal shrinks between polls (an atomic
    :meth:`RunJournal.rewrite`, e.g. quarantine), the tailer resets and
    re-emits from the start -- callers that need exactly-once delivery
    on top of a rewrite should deduplicate on unit id.
    """

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        self._offset = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def offset(self) -> int:
        """Bytes of journal consumed so far."""
        return self._offset

    def poll(self) -> List[Dict[str, Any]]:
        """Entries appended (and newline-terminated) since the last poll."""
        if not self._path.exists():
            return []
        with open(self._path, "rb") as fh:
            size = fh.seek(0, os.SEEK_END)
            if size < self._offset:
                self._offset = 0
            fh.seek(self._offset)
            chunk = fh.read()
        prefix = _well_formed_prefix(chunk)
        if not prefix:
            return []
        self._offset += len(prefix)
        return _parse_prefix(self._path, prefix)
