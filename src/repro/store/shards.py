"""Encoding :class:`PingBlock`/:class:`TraceBlock` as shard files.

A *ping shard* holds one :class:`~repro.measure.results.PingBlock`: the
six canonical columns as raw arrays plus the interned probe/region
tables serialized into the shard header.  A *trace shard* does the same
for a :class:`~repro.measure.results.TraceBlock`.  Decoding reverses the
mapping exactly -- ``write`` then ``read`` yields a block whose
``records()`` equal the original's.

Probe and region tables are small (hundreds of rows per shard) relative
to the measurement columns (tens of thousands), so they live as JSON in
the header where they stay human-inspectable; only the bulk numeric
columns take the binary path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.cloud.regions import CloudRegion
from repro.geo.continents import Continent
from repro.geo.coords import GeoPoint
from repro.lastmile.base import AccessKind
from repro.measure.results import (
    PING_COLUMN_DTYPES,
    PING_OPTIONAL_COLUMN_DTYPES,
    TRACE_COLUMN_DTYPES,
    TRACE_OPTIONAL_COLUMN_DTYPES,
    PingBlock,
    TraceBlock,
)
from repro.platforms.probe import Probe
from repro.store.fileops import FileOps
from repro.store.format import (
    PathLike,
    ShardFormatError,
    read_columns,
    write_shard,
)

#: ``kind`` tags in shard headers.
PING_SHARD_KIND = "pings"
TRACE_SHARD_KIND = "traces"

#: Header key carrying the per-column zone map (shard version >= zones).
ZONES_KEY = "zones"


def column_zone(array: np.ndarray) -> Dict[str, Any]:
    """The zone-map entry for one column: row count and value min/max.

    NaN entries (unresponsive-hop RTTs) are ignored; a column that is
    empty or all-NaN carries ``min``/``max`` of ``None``.  Integer
    columns keep integer bounds so the JSON round-trips exactly.
    """
    array = np.asarray(array)
    zone: Dict[str, Any] = {"rows": int(array.size)}
    finite = array
    if array.dtype.kind == "f":
        finite = array[~np.isnan(array)]
    if finite.size == 0:
        zone["min"] = None
        zone["max"] = None
    elif array.dtype.kind == "f":
        zone["min"] = float(finite.min())
        zone["max"] = float(finite.max())
    else:
        zone["min"] = int(finite.min())
        zone["max"] = int(finite.max())
    return zone


def compute_zones(columns: Mapping[str, np.ndarray]) -> Dict[str, Dict[str, Any]]:
    """Zone-map metadata for a set of named columns."""
    return {name: column_zone(array) for name, array in columns.items()}


def header_zones(header: Mapping[str, Any]) -> Optional[Dict[str, Dict[str, Any]]]:
    """The zone map embedded in a shard header, or ``None`` for shards
    written before zone maps existed (backward compatible read)."""
    zones = header.get(ZONES_KEY)
    if zones is None:
        return None
    return dict(zones)


def probe_to_dict(probe: Probe) -> Dict[str, Any]:
    """Serialize one interned probe-table row."""
    return {
        "probe_id": probe.probe_id,
        "platform": probe.platform,
        "country": probe.country,
        "continent": probe.continent.value,
        "location": [probe.location.lat, probe.location.lon],
        "isp_asn": probe.isp_asn,
        "access": probe.access.value,
        "device_address": probe.device_address,
        "public_address": probe.public_address,
        "quality": probe.quality,
        "availability": probe.availability,
        "managed": probe.managed,
    }


def probe_from_dict(payload: Dict[str, Any]) -> Probe:
    """Deserialize one probe-table row."""
    return Probe(
        probe_id=payload["probe_id"],
        platform=payload["platform"],
        country=payload["country"],
        continent=Continent(payload["continent"]),
        location=GeoPoint(payload["location"][0], payload["location"][1]),
        isp_asn=payload["isp_asn"],
        access=AccessKind(payload["access"]),
        device_address=payload["device_address"],
        public_address=payload["public_address"],
        quality=payload["quality"],
        availability=payload["availability"],
        managed=payload["managed"],
    )


def region_to_dict(region: CloudRegion) -> Dict[str, Any]:
    """Serialize one interned region-table row."""
    return {
        "provider_code": region.provider_code,
        "region_id": region.region_id,
        "city": region.city,
        "country": region.country,
        "continent": region.continent.value,
        "location": [region.location.lat, region.location.lon],
    }


def region_from_dict(payload: Dict[str, Any]) -> CloudRegion:
    """Deserialize one region-table row."""
    return CloudRegion(
        provider_code=payload["provider_code"],
        region_id=payload["region_id"],
        city=payload["city"],
        country=payload["country"],
        continent=Continent(payload["continent"]),
        location=GeoPoint(payload["location"][0], payload["location"][1]),
    )


def _tables_metadata(
    kind: str,
    block: Any,
    unit: str,
    columns: Mapping[str, np.ndarray],
) -> Dict[str, Any]:
    return {
        "kind": kind,
        "unit": unit,
        "probes": [probe_to_dict(probe) for probe in block.probes],
        "regions": [region_to_dict(region) for region in block.regions],
        ZONES_KEY: compute_zones(columns),
    }


def write_ping_shard(
    path: PathLike,
    block: PingBlock,
    unit: str,
    fileops: "FileOps | None" = None,
) -> Dict[str, Any]:
    """Write one validated ping block as a shard file; returns the header.

    The header carries a per-column zone map (row count, min/max) that
    the query planner (:mod:`repro.query`) reads to prune shards without
    touching column bytes.
    """
    block.validate()
    columns = {name: getattr(block, name) for name in PING_COLUMN_DTYPES}
    for name in PING_OPTIONAL_COLUMN_DTYPES:
        column = getattr(block, name)
        if column is not None:
            columns[name] = column
    return write_shard(
        path,
        columns,
        _tables_metadata(PING_SHARD_KIND, block, unit, columns),
        fileops=fileops,
    )


def write_trace_shard(
    path: PathLike,
    block: TraceBlock,
    unit: str,
    fileops: "FileOps | None" = None,
) -> Dict[str, Any]:
    """Write one validated trace block as a shard file; returns the header."""
    block.validate()
    columns = {name: getattr(block, name) for name in TRACE_COLUMN_DTYPES}
    for name in TRACE_OPTIONAL_COLUMN_DTYPES:
        column = getattr(block, name)
        if column is not None:
            columns[name] = column
    return write_shard(
        path,
        columns,
        _tables_metadata(TRACE_SHARD_KIND, block, unit, columns),
        fileops=fileops,
    )


def zone_problems(
    path: PathLike,
    header: Mapping[str, Any],
    columns: Mapping[str, np.ndarray],
) -> List[str]:
    """Zone-map inconsistencies between a header and its column contents.

    Recomputes every column's zone entry and compares it with what the
    header claims; a mismatch means the shard was edited after writing
    (or the writer is broken), so ``python -m repro.store verify``
    treats it like any other corruption.  Shards written before zone
    maps existed carry none and report no problems.
    """
    declared = header_zones(header)
    if declared is None:
        return []
    problems: List[str] = []
    actual = compute_zones(columns)
    for name in sorted(set(declared) | set(actual)):
        if declared.get(name) != actual.get(name):
            problems.append(
                f"{path}: column {name!r} zone map "
                f"{declared.get(name)} disagrees with contents "
                f"{actual.get(name)}"
            )
    return problems


def _decoded_tables(
    path: PathLike, header: Dict[str, Any], kind: str
) -> "tuple[List[Probe], List[CloudRegion]]":
    if header.get("kind") != kind:
        raise ShardFormatError(
            f"{path}: expected a {kind!r} shard, found {header.get('kind')!r}"
        )
    probes = [probe_from_dict(row) for row in header["probes"]]
    regions = [region_from_dict(row) for row in header["regions"]]
    return probes, regions


def read_ping_shard(path: PathLike, mmap: bool = True) -> PingBlock:
    """Decode one ping shard back into a :class:`PingBlock`.

    With ``mmap=True`` the block's columns are read-only memmap views --
    record materialization faults pages in lazily and nothing is copied
    up front.
    """
    header, columns = read_columns(path, mmap=mmap)
    probes, regions = _decoded_tables(path, header, PING_SHARD_KIND)
    block = PingBlock(
        probes=probes,
        regions=regions,
        **{name: columns[name] for name in PING_COLUMN_DTYPES},
        **{
            name: columns[name]
            for name in PING_OPTIONAL_COLUMN_DTYPES
            if name in columns
        },
    )
    block.validate()
    return block


def read_trace_shard(path: PathLike, mmap: bool = True) -> TraceBlock:
    """Decode one trace shard back into a :class:`TraceBlock`."""
    header, columns = read_columns(path, mmap=mmap)
    probes, regions = _decoded_tables(path, header, TRACE_SHARD_KIND)
    block = TraceBlock(
        probes=probes,
        regions=regions,
        **{name: columns[name] for name in TRACE_COLUMN_DTYPES},
        **{
            name: columns[name]
            for name in TRACE_OPTIONAL_COLUMN_DTYPES
            if name in columns
        },
    )
    block.validate()
    return block
