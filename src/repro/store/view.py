"""A lazy, dataset-compatible read view over a :class:`DatasetStore`.

:class:`StoredDataset` duck-types the :class:`MeasurementDataset` read
API -- ``pings()``, ``traceroutes()``, the count properties, and the
columnar accessors used by the JSONL fast path -- but never holds more
than one decoded shard at a time.  Analyses (:class:`StudyContext`, the
experiment modules, :func:`repro.measure.io.save_dataset`) consume it
unchanged, which is what lets them stream datasets far larger than RAM
straight off the warehouse.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

from repro.measure.results import (
    PingBlock,
    PingMeasurement,
    Protocol,
    TraceBlock,
    TracerouteMeasurement,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.warehouse import DatasetStore


class StoredDataset:
    """Read-only :class:`MeasurementDataset` facade over a store.

    Shards are decoded lazily on every iteration pass: each ``pings()``
    call walks the journal, maps one shard, yields its records, and lets
    the block (and its page cache) go before touching the next.  Counts
    come straight from the journal, so ``len``-style queries read no
    shard bytes at all.
    """

    def __init__(self, store: "DatasetStore") -> None:
        self._store = store

    @property
    def store(self) -> "DatasetStore":
        return self._store

    # -- counts (journal-only, no shard I/O) -------------------------------

    @property
    def ping_count(self) -> int:
        return self._store.ping_count

    @property
    def ping_sample_count(self) -> int:
        return self._store.ping_sample_count

    @property
    def traceroute_count(self) -> int:
        return self._store.traceroute_count

    # -- record iteration --------------------------------------------------

    def pings(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[PingMeasurement], bool]] = None,
    ) -> Iterator[PingMeasurement]:
        """Iterate ping records, one shard resident at a time."""
        for block in self._store.iter_ping_blocks():
            for index in range(len(block)):
                measurement = block.record(index)
                if (
                    platform is not None
                    and measurement.meta.platform != platform
                ):
                    continue
                if protocol is not None and measurement.protocol is not Protocol(
                    protocol
                ):
                    continue
                if predicate is not None and not predicate(measurement):
                    continue
                yield measurement

    def traceroutes(
        self,
        platform: Optional[str] = None,
        protocol: Optional[Protocol] = None,
        predicate: Optional[Callable[[TracerouteMeasurement], bool]] = None,
    ) -> Iterator[TracerouteMeasurement]:
        """Iterate traceroute records, one shard resident at a time."""
        for block in self._store.iter_trace_blocks():
            for index in range(len(block)):
                measurement = block.record(index)
                if (
                    platform is not None
                    and measurement.meta.platform != platform
                ):
                    continue
                if protocol is not None and measurement.protocol is not Protocol(
                    protocol
                ):
                    continue
                if predicate is not None and not predicate(measurement):
                    continue
                yield measurement

    # -- columnar accessors (JSONL fast path compatibility) ----------------

    def iter_scalar_pings(self) -> Iterator[PingMeasurement]:
        """A store holds columnar blocks only; there are no scalar records."""
        return iter(())

    def iter_scalar_traceroutes(self) -> Iterator[TracerouteMeasurement]:
        return iter(())

    def iter_ping_blocks(self) -> Iterator[PingBlock]:
        """Yield ping blocks lazily, one decoded shard at a time.

        Shard-at-a-time consumers (JSONL export, columnar analyses)
        should iterate this instead of :meth:`ping_blocks` so only one
        block object is resident at a time.
        """
        yield from self._store.iter_ping_blocks()

    def iter_trace_blocks(self) -> Iterator[TraceBlock]:
        """Yield trace blocks lazily, one decoded shard at a time."""
        yield from self._store.iter_trace_blocks()

    def ping_blocks(self) -> List[PingBlock]:
        """All ping blocks.

        Note: this materializes every block *object* (columns stay
        memmapped).  Prefer :meth:`iter_ping_blocks` when streaming.
        """
        return list(self._store.iter_ping_blocks())

    def trace_blocks(self) -> List[TraceBlock]:
        return list(self._store.iter_trace_blocks())

    def __repr__(self) -> str:
        return (
            f"StoredDataset(pings={self.ping_count}, "
            f"traceroutes={self.traceroute_count})"
        )
