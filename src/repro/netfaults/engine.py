"""Fault-aware batch execution: the engine wrapper that reacts to events.

:class:`NetfaultEngine` wraps a batch engine the way
:class:`repro.faults.injectors.FaultyEngine` does for harness faults,
but instead of corrupting calls it *reshapes* them around the network:

- a unit's request list is mapped onto the day's virtual-time slots
  (request ``i`` of ``n`` executes at slot ``i * SLOTS_PER_DAY // n``),
  splitting the batch into contiguous per-epoch segments;
- each segment installs its epoch's :class:`EpochTopologyView` on the
  planner's :class:`~repro.measure.pathpolicy.FailoverPathPolicy`, so
  surviving requests plan over re-converged routes;
- requests towards a region under a regional outage, and requests whose
  serving ISP lost all routes to the provider in this epoch, are dropped
  (no measurement row) with the responsible event recorded;
- survivors execute through the inner engine *with the unit's own
  generator threaded sequentially through the segments*, so the wrapper
  adds no draws of its own and an event-free day is draw-for-draw
  identical to an unwrapped run.

Per-row provenance (routing epoch + rerouting event id) is attached to
the resulting blocks as the optional ``epochs`` / ``outage_ids``
columns; human-readable event effects accumulate in the journal drained
by :meth:`take_events`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.measure.batch import PingRequest, TraceRequest
from repro.measure.engine import BatchEngine
from repro.measure.pathpolicy import FailoverPathPolicy
from repro.measure.results import PingBlock, TracerouteMeasurement
from repro.netfaults.events import SLOTS_PER_DAY, DayTimeline, NetworkEvent
from repro.netfaults.plan import NetworkFaultPlan

#: Per-request annotation: (epoch, outage event id or -1).
_Annotation = Tuple[int, int]


def find_netfault_engine(engine: object) -> Optional["NetfaultEngine"]:
    """The :class:`NetfaultEngine` inside a wrapper chain, if any.

    Campaign units receive the engine behind zero or more wrappers
    (e.g. :class:`repro.faults.injectors.FaultyEngine`); this walks the
    conventional ``_inner`` links so units can drain the netfault
    journal and trace annotations without knowing the wrapping order.
    """
    current: object = engine
    for _ in range(8):
        if isinstance(current, NetfaultEngine):
            return current
        current = getattr(current, "_inner", None)
        if current is None:
            return None
    return None


def _merge_ping_blocks(
    segments: Sequence[PingBlock],
    epochs: np.ndarray,
    outage_ids: np.ndarray,
) -> PingBlock:
    """Concatenate per-segment blocks into one, re-interning codes.

    Probe/region tables are re-interned in first-seen order over the
    concatenated rows -- the same order a single-segment batch would
    have produced -- and sample offsets are shifted into one flat
    sample array.
    """
    probes: List[object] = []
    probe_code_by_id: Dict[str, int] = {}
    regions: List[object] = []
    region_code_by_key: Dict[Tuple[str, str], int] = {}
    probe_cols: List[np.ndarray] = []
    region_cols: List[np.ndarray] = []
    day_cols: List[np.ndarray] = []
    proto_cols: List[np.ndarray] = []
    value_cols: List[np.ndarray] = []
    offset_cols: List[np.ndarray] = [np.zeros(1, np.int64)]
    shift = 0
    for block in segments:
        probe_remap = np.empty(max(len(block.probes), 1), np.int32)
        for local, probe in enumerate(block.probes):
            code = probe_code_by_id.get(probe.probe_id)
            if code is None:
                code = len(probes)
                probes.append(probe)
                probe_code_by_id[probe.probe_id] = code
            probe_remap[local] = code
        region_remap = np.empty(max(len(block.regions), 1), np.int32)
        for local, region in enumerate(block.regions):
            key = (region.provider_code, region.region_id)
            code = region_code_by_key.get(key)
            if code is None:
                code = len(regions)
                regions.append(region)
                region_code_by_key[key] = code
            region_remap[local] = code
        probe_cols.append(probe_remap[block.probe_codes])
        region_cols.append(region_remap[block.region_codes])
        day_cols.append(block.days)
        proto_cols.append(block.protocol_codes)
        value_cols.append(block.sample_values)
        offset_cols.append(block.sample_offsets[1:] + shift)
        shift += int(block.sample_offsets[-1])
    return PingBlock(
        probes=probes,
        regions=regions,
        probe_codes=np.concatenate(probe_cols)
        if probe_cols
        else np.empty(0, np.int32),
        region_codes=np.concatenate(region_cols)
        if region_cols
        else np.empty(0, np.int32),
        days=np.concatenate(day_cols) if day_cols else np.empty(0, np.int32),
        protocol_codes=np.concatenate(proto_cols)
        if proto_cols
        else np.empty(0, np.uint8),
        sample_values=np.concatenate(value_cols)
        if value_cols
        else np.empty(0, np.float64),
        sample_offsets=np.concatenate(offset_cols),
        epochs=epochs,
        outage_ids=outage_ids,
    )


class NetfaultEngine:
    """A batch engine that executes through a network fault plan."""

    def __init__(
        self,
        inner: BatchEngine,
        plan: NetworkFaultPlan,
        policy: FailoverPathPolicy,
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._policy = policy
        self._events: List[str] = []
        #: (day, epoch, policy token) -> (provider, isp, continent) ->
        #: (keep, blame event id, reroute event id).  Routing verdicts
        #: are pure given the epoch's view and the policy state, and the
        #: key space collapses hard (probes share ISPs, regions share
        #: networks), so ping and trace batches resolve each scope once
        #: and the per-request loop is a single dict probe.
        self._verdicts: Dict[
            Tuple, Dict[Tuple, Tuple[bool, int, int]]
        ] = {}
        #: provider code -> network code (the topology is fixed for the
        #: engine's lifetime, so this never invalidates).
        self._network_of: Dict[str, str] = {}
        #: (epochs, outage_ids) of the most recent traceroute batch's
        #: returned records, in record order; the campaign executor
        #: attaches these to the trace block it builds.
        self.last_trace_annotations: Optional[
            Tuple[np.ndarray, np.ndarray]
        ] = None

    @property
    def inner(self) -> BatchEngine:
        return self._inner

    @property
    def plan(self) -> NetworkFaultPlan:
        return self._plan

    @property
    def policy(self) -> FailoverPathPolicy:
        return self._policy

    def take_events(self) -> List[str]:
        """Drain the accumulated event-effect journal."""
        events, self._events = self._events, []
        return events

    # -- segmentation ------------------------------------------------------

    def _segments(
        self, requests: Sequence
    ) -> List[Tuple[int, int, int, int]]:
        """Contiguous (start, end, day, epoch) runs of a request list.

        Request ``i`` of ``n`` executes at virtual slot
        ``i * SLOTS_PER_DAY // n``; the slot is non-decreasing in ``i``
        so equal-epoch runs are contiguous and the inner engine sees
        each epoch's survivors as one ordered sub-batch.
        """
        n = len(requests)
        segments: List[Tuple[int, int, int, int]] = []
        start = 0
        current: Optional[Tuple[int, int]] = None
        slots_day = -1
        slots: List[int] = []
        for i in range(n):
            day = int(requests[i].day)
            if day != slots_day:
                timeline = self._plan.timeline(day)
                slots = [
                    timeline.epoch_at(slot) for slot in range(SLOTS_PER_DAY)
                ]
                slots_day = day
            epoch = slots[i * SLOTS_PER_DAY // n]
            if current is None:
                current = (day, epoch)
            elif (day, epoch) != current:
                segments.append((start, i, current[0], current[1]))
                start = i
                current = (day, epoch)
        if current is not None:
            segments.append((start, n, current[0], current[1]))
        return segments

    def _filter_segment(
        self,
        requests: Sequence,
        timeline: DayTimeline,
        epoch: int,
        view,
    ) -> Tuple[List, List[_Annotation], Dict[int, List[int]]]:
        """Apply one epoch's events to a segment's requests.

        Returns the surviving requests, their (epoch, outage id)
        annotations, and per-event (dropped, rerouted) counters.
        """
        topology = self._plan.topology
        outages = timeline.outages(epoch)
        removed = timeline.removed_edges(epoch)
        graph_events = tuple(
            event
            for event in timeline.active[epoch]
            if event.edge is not None
        )
        effects: Dict[int, List[int]] = {}
        survivors: List = []
        annotations: List[_Annotation] = []
        outage_keys = {
            (event.network, event.continent): event.event_id
            for event in reversed(outages)
        }
        if not outage_keys and not removed:
            # Event-free epoch: everything survives on baseline routes.
            return (
                list(requests),
                [(epoch, -1)] * len(requests),
                effects,
            )
        network_of = self._network_of
        has_outages = bool(outage_keys)
        # Scopes whose table is the baseline object need no per-pair
        # verdict at all: every measured pair has a baseline route
        # (the planner raises otherwise), and a baseline table proves no
        # selected path rides a removed edge, so the verdict is always
        # (keep, no reroute).  Only valid while no path is explicitly
        # marked down -- down marks are per (isp, network, continent),
        # finer than scope.
        scope_fastpath = bool(removed) and not self._policy.down_paths
        verdicts: Dict[Tuple, Tuple[bool, int, int]] = {}
        if removed:
            verdicts = self._verdicts.setdefault(
                (timeline.day, epoch, self._policy.cache_token()), {}
            )
        keep_verdict = (True, -1, -1)
        for request in requests:
            probe = request.probe
            region = request.region
            provider_code = region.provider_code
            if has_outages:
                network = network_of.get(provider_code)
                if network is None:
                    network = topology.network_code(provider_code)
                    network_of[provider_code] = network
                outage_id = outage_keys.get((network, region.continent))
                if outage_id is not None:
                    effects.setdefault(outage_id, [0, 0])[0] += 1
                    continue
            reroute_id = -1
            if removed:
                vkey = (provider_code, probe.isp_asn, probe.continent)
                verdict = verdicts.get(vkey)
                if verdict is None:
                    if scope_fastpath and (
                        view.scope_token(provider_code, probe.continent)
                        is None
                    ):
                        verdict = keep_verdict
                    elif (
                        self._policy.as_path(
                            topology,
                            probe.isp_asn,
                            provider_code,
                            probe.continent,
                        )
                        is None
                    ):
                        blame = (
                            graph_events[0].event_id if graph_events else -1
                        )
                        verdict = (False, blame, -1)
                    else:
                        verdict = (
                            True,
                            -1,
                            self._reroute_event(
                                topology,
                                probe,
                                provider_code,
                                graph_events,
                            ),
                        )
                    verdicts[vkey] = verdict
                keep, blame, reroute_id = verdict
                if not keep:
                    if blame >= 0:
                        effects.setdefault(blame, [0, 0])[0] += 1
                    continue
                if reroute_id >= 0:
                    effects.setdefault(reroute_id, [0, 0])[1] += 1
            survivors.append(request)
            annotations.append((epoch, reroute_id))
        return survivors, annotations, effects

    @staticmethod
    def _reroute_event(
        topology,
        probe,
        provider_code: str,
        graph_events: Tuple[NetworkEvent, ...],
    ) -> int:
        """The lowest-id active event whose downed link the baseline
        route rode, or ``-1`` if the baseline route is unaffected."""
        base = topology.as_path(
            probe.isp_asn, provider_code, probe.continent
        )
        if base is None or len(base) < 2:
            return -1
        path_edges = {
            (min(a, b), max(a, b)) for a, b in zip(base, base[1:])
        }
        for event in graph_events:
            assert event.edge is not None
            a, b = event.edge
            if (min(a, b), max(a, b)) in path_edges:
                return event.event_id
        return -1

    def _journal(
        self,
        timeline: DayTimeline,
        effects: Dict[int, List[int]],
    ) -> None:
        by_id = {event.event_id: event for event in timeline.events}
        for event_id in sorted(effects):
            dropped, rerouted = effects[event_id]
            event = by_id[event_id]
            self._events.append(
                f"{event.label()} dropped={dropped} rerouted={rerouted}"
            )

    # -- batch surface -----------------------------------------------------

    def ping_batch(
        self,
        requests: Sequence[PingRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> PingBlock:
        blocks: List[PingBlock] = []
        annotations: List[_Annotation] = []
        try:
            for start, end, day, epoch in self._segments(requests):
                timeline = self._plan.timeline(day)
                view = self._plan.view(timeline.removed_edges(epoch))
                self._policy.set_view(view)
                survivors, notes, effects = self._filter_segment(
                    requests[start:end], timeline, epoch, view
                )
                self._journal(timeline, effects)
                if survivors:
                    blocks.append(self._inner.ping_batch(survivors, rng=rng))
                    annotations.extend(notes)
        finally:
            self._policy.set_view(None)
        epochs = np.array(
            [note[0] for note in annotations], np.int32
        )
        outage_ids = np.array(
            [note[1] for note in annotations], np.int32
        )
        if len(blocks) == 1:
            block = blocks[0]
            block.epochs = epochs
            block.outage_ids = outage_ids
            return block
        return _merge_ping_blocks(blocks, epochs, outage_ids)

    def traceroute_batch(
        self,
        requests: Sequence[TraceRequest],
        rng: Optional[np.random.Generator] = None,
    ) -> List[TracerouteMeasurement]:
        records: List[TracerouteMeasurement] = []
        annotations: List[_Annotation] = []
        try:
            for start, end, day, epoch in self._segments(requests):
                timeline = self._plan.timeline(day)
                view = self._plan.view(timeline.removed_edges(epoch))
                self._policy.set_view(view)
                survivors, notes, effects = self._filter_segment(
                    requests[start:end], timeline, epoch, view
                )
                self._journal(timeline, effects)
                if survivors:
                    records.extend(
                        self._inner.traceroute_batch(survivors, rng=rng)
                    )
                    annotations.extend(notes)
        finally:
            self._policy.set_view(None)
        self.last_trace_annotations = (
            np.array([note[0] for note in annotations], np.int32),
            np.array([note[1] for note in annotations], np.int32),
        )
        return records

    def __repr__(self) -> str:
        return f"NetfaultEngine(plan={self._plan!r})"
