"""Epoch-versioned topology: the read side of route re-convergence.

An :class:`EpochTopologyView` is an immutable overlay on a
:class:`~repro.core.topology.Topology`: the same scoped graphs, minus a
fixed set of downed AS-pair links.  Per (provider network, source
continent) scope it resolves the re-converged routing table with two
fast paths before ever running the sweep:

1. no downed pair touches the scope's graph -> the baseline table;
2. :func:`~repro.net.routing.table_uses_edges` shows no selected route
   rides a downed pair -> the baseline table (edge removal is monotone:
   an unused edge was never a winner, so the table cannot change);
3. otherwise the valley-free sweep re-runs over the incrementally
   filtered CSR arrays, memoized process-wide under the filtered
   structure's digest.

Views are the only legal way to read topology under network faults --
the FRZ002 lint rule flags direct relationship-graph mutation outside
the builder and this package.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.topology import Topology
from repro.geo.continents import Continent
from repro.net.routing import (
    RoutePolicy,
    RoutingTable,
    compute_routes_without_edges,
    table_uses_edges,
)

#: Process-wide memo of per-scope epoch tables, keyed by (scope
#: adjacency digest, destination ASN, policy, removed pair set).  The
#: epoch classification -- "does this scope's baseline table ride a
#: removed edge, and which table results" -- is a pure function of that
#: key, so campaigns re-building plans (benchmark rounds, resumes, unit
#: retries) skip both the edge filtering and the ``table_uses_edges``
#: scan after the first view over a given structure.
#:
#: EXE101 (worker-purity) rightly observes that this is module-global
#: mutable state reachable from forked campaign workers.  It is exempt
#: by design for the same reason as the route memo in
#: ``repro.net.routing``: every entry is a pure function of its key, so
#: a worker hitting the parent's COW-prewarmed entry and a worker
#: recomputing it privately produce byte-identical tables -- the memo
#: can never make results depend on execution order.
# repro-lint: disable-file=EXE101
_ScopeKey = Tuple[str, int, RoutePolicy, FrozenSet[Tuple[int, int]]]
_SCOPE_TABLE_MEMO: "OrderedDict[_ScopeKey, RoutingTable]" = OrderedDict()
_SCOPE_TABLE_MEMO_MAX = 2048


class EpochTopologyView:
    """A topology with a fixed set of downed links (one routing epoch)."""

    def __init__(
        self,
        topology: Topology,
        removed_edges: FrozenSet[Tuple[int, int]],
    ) -> None:
        self._topology = topology
        self._removed = frozenset(
            (min(int(a), int(b)), max(int(a), int(b)))
            for a, b in removed_edges
        )
        self._route_cache: Dict[Tuple[str, Continent], RoutingTable] = {}
        #: Hot-path memo keyed by the caller's raw (provider code,
        #: continent) arguments, skipping network resolution and enum
        #: normalization on repeat lookups.
        self._scope_cache: Dict[Tuple[str, Continent], RoutingTable] = {}
        self._scope_tokens: Dict[
            Tuple[str, Continent], Optional[FrozenSet[Tuple[int, int]]]
        ] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def removed_edges(self) -> FrozenSet[Tuple[int, int]]:
        return self._removed

    def cache_token(self) -> FrozenSet[Tuple[int, int]]:
        """Hashable identity of this view's effective topology.

        The baseline (no downed links) token equals the default path
        policy's token, so event-free epochs share planner cache entries
        with static runs.
        """
        return self._removed

    def routes_for(
        self, provider_code: str, source_continent: Continent
    ) -> RoutingTable:
        """The re-converged table for one scope under this epoch."""
        topology = self._topology
        if not self._removed:
            return topology.routes_for(provider_code, source_continent)
        scope = (provider_code, source_continent)
        hot = self._scope_cache.get(scope)
        if hot is not None:
            return hot
        base = topology.routes_for(provider_code, source_continent)
        network = topology.network_code(provider_code)
        key = (network, Continent(source_continent))
        cached = self._route_cache.get(key)
        if cached is not None:
            self._scope_cache[scope] = cached
            return cached
        graph = topology.graph_for(network, key[1])
        adjacency = graph.adjacency()
        memo_key: _ScopeKey = (
            adjacency.digest,
            topology.peerings[network].cloud_asn,
            topology.policy,
            self._removed,
        )
        table = _SCOPE_TABLE_MEMO.get(memo_key)
        if table is None:
            effective = [
                pair
                for pair in sorted(self._removed)
                if pair[0] in adjacency.index and pair[1] in adjacency.index
            ]
            if not effective or not table_uses_edges(base, effective):
                table = base
            else:
                table = compute_routes_without_edges(
                    graph,
                    topology.peerings[network].cloud_asn,
                    topology.policy,
                    effective,
                )
            if len(_SCOPE_TABLE_MEMO) >= _SCOPE_TABLE_MEMO_MAX:
                _SCOPE_TABLE_MEMO.popitem(last=False)
            _SCOPE_TABLE_MEMO[memo_key] = table
        self._route_cache[key] = table
        self._scope_cache[scope] = table
        return table

    def as_path(
        self, isp_asn: int, provider_code: str, source_continent: Continent
    ) -> Optional[List[int]]:
        """AS-level path under this epoch, or ``None`` if unreachable."""
        return self.routes_for(provider_code, source_continent).as_path(
            isp_asn
        )

    def scope_token(
        self, provider_code: str, source_continent: Continent
    ) -> Optional[FrozenSet[Tuple[int, int]]]:
        """Cache identity of one (provider, continent) scope.

        ``None`` when this epoch's table for the scope *is* the baseline
        table (no downed pair changed any selected route), so planners
        can share cache entries with static runs; the removed-edge set
        otherwise.
        """
        if not self._removed:
            return None
        scope = (provider_code, source_continent)
        try:
            return self._scope_tokens[scope]
        except KeyError:
            pass
        table = self.routes_for(provider_code, source_continent)
        token = (
            None
            if table
            is self._topology.routes_for(provider_code, source_continent)
            else self._removed
        )
        self._scope_tokens[scope] = token
        return token

    def __repr__(self) -> str:
        return f"EpochTopologyView(removed={sorted(self._removed)})"
