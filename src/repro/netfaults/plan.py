"""Deterministic network event schedules.

:class:`NetworkFaultPlan` extends the :class:`~repro.faults.plan.FaultPlan`
discipline from the harness to the network itself: ``(seed,
NetworkFaultConfig, topology)`` maps to a per-day timeline of
:class:`~repro.netfaults.events.NetworkEvent` via forked RNG streams --

- the *family* draws of day ``d`` (how many link failures / peering
  flaps / regional outages fire) come from ``fork("netfaults.day", d)``;
- the *parameters* of event ``k`` of day ``d`` (target, start slot,
  duration) come from ``fork(f"netfaults.event.{d}", k)``;

so the full event schedule is a pure function of seed + config +
topology, independent of unit execution order, worker count, and
resume points.  Candidate targets are derived deterministically from the
topology: link failures hit regional-transit uplinks to Tier-1 carriers,
peering flaps hit cloud interconnect sessions (transit, PNI, or direct
ISP peering), and regional outages hit one (provider network, continent)
footprint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.cloud.regions import RegionCatalog
from repro.core.rng import RngStreams
from repro.core.topology import Topology
from repro.geo.continents import Continent
from repro.net.asn import ASKind
from repro.netfaults.config import NetworkFaultConfig
from repro.netfaults.events import (
    EVENT_ID_STRIDE,
    LINK_FAILURE,
    PEERING_FLAP,
    REGIONAL_OUTAGE,
    SLOTS_PER_DAY,
    DayTimeline,
    NetworkEvent,
    build_timeline,
)
from repro.netfaults.view import EpochTopologyView


def _link_candidates(topology: Topology) -> List[Tuple[int, int]]:
    """Regional-transit uplinks to Tier-1 carriers, sorted."""
    adjacency = topology.base_graph.adjacency()
    asns = adjacency.asns
    candidates: List[Tuple[int, int]] = []
    for asn_obj in topology.registry.of_kind(ASKind.TRANSIT):
        row = adjacency.index.get(asn_obj.asn)
        if row is None:
            continue
        start = int(adjacency.provider_offsets[row])
        end = int(adjacency.provider_offsets[row + 1])
        for target in adjacency.provider_targets[start:end].tolist():
            candidates.append((asn_obj.asn, int(asns[target])))
    return sorted(candidates)


def _flap_candidates(topology: Topology) -> List[Tuple[int, int]]:
    """Cloud interconnect sessions (transit, PNI, direct ISP), sorted."""
    candidates: set = set()
    for network in sorted(topology.peerings):
        peering = topology.peerings[network]
        cloud = peering.cloud_asn
        for tier1 in peering.transit_tier1s:
            candidates.add((cloud, int(tier1)))
        for continent in Continent:
            for carrier in peering.pni_in(continent):
                candidates.add((cloud, int(carrier)))
        for isp_asn in peering.direct_isps:
            candidates.add((cloud, int(isp_asn)))
    return sorted(candidates)


def _outage_candidates(
    topology: Topology, catalog: RegionCatalog
) -> List[Tuple[str, Continent]]:
    """(provider network, continent) footprints with regions, sorted."""
    candidates: set = set()
    for region in catalog:
        network = topology.network_code(region.provider_code)
        candidates.add((network, Continent(region.continent)))
    return sorted(candidates, key=lambda item: (item[0], item[1].value))


class NetworkFaultPlan:
    """Seeded factory of per-day network event timelines."""

    def __init__(
        self,
        seed: int,
        config: NetworkFaultConfig,
        topology: Topology,
        catalog: RegionCatalog,
    ) -> None:
        self._rngs = RngStreams(seed)
        self._config = config
        self._topology = topology
        self._links = _link_candidates(topology)
        self._flaps = _flap_candidates(topology)
        self._outages = _outage_candidates(topology, catalog)
        self._timelines: Dict[int, DayTimeline] = {}
        self._views: Dict[FrozenSet[Tuple[int, int]], EpochTopologyView] = {}

    @property
    def seed(self) -> int:
        return self._rngs.seed

    @property
    def config(self) -> NetworkFaultConfig:
        return self._config

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def active(self) -> bool:
        return self._config.active

    def timeline(self, day: int) -> DayTimeline:
        """The (cached) event timeline of ``day``.

        Pure: the same plan always yields the same timeline for a day,
        whatever order days are asked for in -- family draws fork a
        fresh per-day stream and event parameters fork per-(day, event)
        streams, exactly the :class:`~repro.faults.plan.FaultPlan`
        discipline.
        """
        cached = self._timelines.get(day)
        if cached is not None:
            return cached
        day_rng = self._rngs.fork("netfaults.day", int(day))
        budget = self._config.max_events_per_day
        families = (
            (LINK_FAILURE, self._config.link_failure_rate, len(self._links)),
            (PEERING_FLAP, self._config.peering_flap_rate, len(self._flaps)),
            (
                REGIONAL_OUTAGE,
                self._config.regional_outage_rate,
                len(self._outages),
            ),
        )
        events: List[NetworkEvent] = []
        index = 0
        for kind, rate, pool_size in families:
            # Fixed-order family draws: every family consumes its trials
            # from the day stream even when inactive, so enabling one
            # family never perturbs another's schedule.
            draws = day_rng.random(budget)
            if rate <= 0.0 or pool_size == 0:
                continue
            fired = int(np.count_nonzero(draws < rate))
            for _ in range(fired):
                if len(events) >= budget:
                    break
                events.append(self._draw_event(int(day), kind, index))
                index += 1
        timeline = build_timeline(int(day), tuple(events))
        self._timelines[day] = timeline
        return timeline

    def _draw_event(self, day: int, kind: str, index: int) -> NetworkEvent:
        rng = self._rngs.fork(f"netfaults.event.{day}", index)
        config = self._config
        duration = int(
            rng.integers(
                config.min_duration_slots, config.max_duration_slots + 1
            )
        )
        start = int(rng.integers(0, SLOTS_PER_DAY - duration + 1))
        event_id = day * EVENT_ID_STRIDE + index
        if kind == LINK_FAILURE:
            edge = self._links[int(rng.integers(0, len(self._links)))]
            windows = ((start, start + duration),)
            return NetworkEvent(
                kind=kind,
                event_id=event_id,
                day=day,
                windows=windows,
                edge=edge,
            )
        if kind == PEERING_FLAP:
            edge = self._flaps[int(rng.integers(0, len(self._flaps)))]
            # A flap is two down-windows split around a short recovery.
            first = max(1, duration // 2)
            gap = int(rng.integers(1, 4))
            second_start = start + first + gap
            windows = ((start, start + first),)
            if second_start < SLOTS_PER_DAY:
                second_end = min(
                    SLOTS_PER_DAY, second_start + max(1, duration - first)
                )
                windows = windows + ((second_start, second_end),)
            return NetworkEvent(
                kind=kind,
                event_id=event_id,
                day=day,
                windows=windows,
                edge=edge,
            )
        network, continent = self._outages[
            int(rng.integers(0, len(self._outages)))
        ]
        return NetworkEvent(
            kind=REGIONAL_OUTAGE,
            event_id=event_id,
            day=day,
            windows=((start, start + duration),),
            network=network,
            continent=continent,
        )

    def view(
        self, removed_edges: FrozenSet[Tuple[int, int]]
    ) -> EpochTopologyView:
        """The (cached) epoch topology view for a downed-edge set.

        Views are memoized per removed-edge set, not per epoch: epochs
        with the same downed links -- across days -- share one view and
        therefore one set of re-converged tables.
        """
        key = frozenset(
            (min(a, b), max(a, b)) for a, b in removed_edges
        )
        view = self._views.get(key)
        if view is None:
            view = EpochTopologyView(self._topology, key)
            self._views[key] = view
        return view

    def __repr__(self) -> str:
        return (
            f"NetworkFaultPlan(seed={self.seed}, active={self.active}, "
            f"candidates=({len(self._links)} links, {len(self._flaps)} "
            f"flaps, {len(self._outages)} footprints))"
        )
