"""Network fault configuration.

Like :class:`~repro.faults.config.FaultConfig`, a
:class:`NetworkFaultConfig` is an *overlay*: it is deliberately not part
of :class:`~repro.core.config.SimulationConfig`, so the simulation
config digest -- and with it the journal bytes of every existing store --
is untouched.  An inactive (all-zero-rate) config is equivalent to
passing no network faults at all, which is what keeps the event-free
path file-for-file byte-identical to the pre-netfault golden digests.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Union

from repro.core.config import dataclass_digest
from repro.netfaults.events import EVENT_ID_STRIDE, SLOTS_PER_DAY

PathLike = Union[str, Path]

_RATE_FIELDS = (
    "link_failure_rate",
    "peering_flap_rate",
    "regional_outage_rate",
)
_COUNT_FIELDS = (
    "max_events_per_day",
    "min_duration_slots",
    "max_duration_slots",
)


@dataclass(frozen=True)
class NetworkFaultConfig:
    """Per-family network event rates and event-shape parameters.

    Rates are per *candidate draw per day*: each day draws up to
    ``max_events_per_day`` Bernoulli trials per family, so a
    ``link_failure_rate`` of 0.5 with the default budget yields roughly
    1.5 link failures per day.  The realized schedule is a pure function
    of the campaign seed -- see
    :class:`~repro.netfaults.plan.NetworkFaultPlan`.
    """

    #: Probability per daily trial that a regional-transit uplink to a
    #: Tier-1 carrier fails for a contiguous window.
    link_failure_rate: float = 0.0
    #: Probability per daily trial that a cloud peering/transit session
    #: flaps: two short down-windows separated by a brief recovery.
    peering_flap_rate: float = 0.0
    #: Probability per daily trial that one provider network suffers a
    #: regional outage: measurements towards its regions in one
    #: continent fail outright while the window is active.
    regional_outage_rate: float = 0.0
    #: Bernoulli trials per family per day; also caps the total number
    #: of events a single day can carry.
    max_events_per_day: int = 3
    #: Bounds of the drawn event duration, in virtual day slots
    #: (1..SLOTS_PER_DAY).  Flap windows split the drawn duration.
    min_duration_slots: int = 2
    max_duration_slots: int = 8

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 1 <= self.max_events_per_day <= EVENT_ID_STRIDE // 2:
            raise ValueError(
                "max_events_per_day must be in "
                f"[1, {EVENT_ID_STRIDE // 2}], got {self.max_events_per_day}"
            )
        for name in ("min_duration_slots", "max_duration_slots"):
            value = getattr(self, name)
            if not 1 <= value <= SLOTS_PER_DAY:
                raise ValueError(
                    f"{name} must be in [1, {SLOTS_PER_DAY}], got {value}"
                )
        if self.min_duration_slots > self.max_duration_slots:
            raise ValueError(
                "min_duration_slots must not exceed max_duration_slots "
                f"({self.min_duration_slots} > {self.max_duration_slots})"
            )

    @property
    def active(self) -> bool:
        """Whether any event family can fire.  An inactive config is
        treated exactly like no network fault injection at all."""
        return (
            self.link_failure_rate
            + self.peering_flap_rate
            + self.regional_outage_rate
            > 0.0
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NetworkFaultConfig":
        """Build a config from a plain mapping with schema validation.

        Rejects unknown keys, non-numeric rates, and non-integer counts
        with field-specific messages; range violations surface through
        ``__post_init__`` with equally specific messages.
        """
        known = {config_field.name for config_field in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown network fault config keys: {', '.join(unknown)}"
            )
        kwargs: dict[str, Any] = {}
        for key, value in payload.items():
            if key in _RATE_FIELDS:
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(
                        f"{key} must be a number in [0, 1], "
                        f"got {value!r}"
                    )
                kwargs[key] = float(value)
            else:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValueError(
                        f"{key} must be an integer, got {value!r}"
                    )
                kwargs[key] = int(value)
        return cls(**kwargs)


def load_netfault_config(path: PathLike) -> NetworkFaultConfig:
    """Load a :class:`NetworkFaultConfig` from a JSON file of overrides."""
    with open(Path(path), "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}: network fault config is not valid JSON: {exc}"
            ) from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: network fault config must be a JSON object")
    try:
        return NetworkFaultConfig.from_dict(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def netfault_digest(config: NetworkFaultConfig) -> str:
    """A stable hex digest of a network fault config.

    Journaled in the ``begin`` entry of event-injected runs and checked
    on resume, so a campaign can only be continued under the exact event
    schedule that started it.
    """
    return dataclass_digest(config)
