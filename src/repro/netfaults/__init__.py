"""Deterministic network fault events and route re-convergence.

The network-side counterpart of :mod:`repro.faults`: seeded link
failures, peering flaps, and regional outages on a virtual-time
timeline, epoch-versioned topology views that re-converge routes over
the downed links, and an engine wrapper that reshapes campaign batches
around the active events.  See ``docs/DYNAMIC_TOPOLOGY.md``.
"""

from repro.netfaults.config import (
    NetworkFaultConfig,
    load_netfault_config,
    netfault_digest,
)
from repro.netfaults.engine import NetfaultEngine
from repro.netfaults.events import (
    EVENT_ID_STRIDE,
    EVENT_KINDS,
    LINK_FAILURE,
    PEERING_FLAP,
    REGIONAL_OUTAGE,
    SLOTS_PER_DAY,
    DayTimeline,
    NetworkEvent,
    build_timeline,
)
from repro.netfaults.plan import NetworkFaultPlan
from repro.netfaults.view import EpochTopologyView

__all__ = [
    "EVENT_ID_STRIDE",
    "EVENT_KINDS",
    "LINK_FAILURE",
    "PEERING_FLAP",
    "REGIONAL_OUTAGE",
    "SLOTS_PER_DAY",
    "DayTimeline",
    "EpochTopologyView",
    "NetfaultEngine",
    "NetworkEvent",
    "NetworkFaultConfig",
    "NetworkFaultPlan",
    "build_timeline",
    "load_netfault_config",
    "netfault_digest",
]
