"""Network fault events and the per-day virtual-time timeline.

A campaign day is divided into :data:`SLOTS_PER_DAY` virtual time slots.
Each :class:`NetworkEvent` occupies one or more half-open slot windows
``[start, end)`` within its day; the union of window boundaries across a
day's events partitions the day into *epochs* -- maximal intervals over
which the set of active events (and therefore the effective topology) is
constant.  Routing re-converges at epoch boundaries, never inside one.

Events are drawn by :class:`~repro.netfaults.plan.NetworkFaultPlan`; this
module only defines the data model and the slot/epoch arithmetic, both of
which are pure and deterministic.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.geo.continents import Continent

#: Virtual time slots per campaign day.  Requests issued by a unit are
#: spread uniformly over the day's slots, so a window of ``k`` slots
#: affects roughly ``k / SLOTS_PER_DAY`` of the day's measurements.
SLOTS_PER_DAY = 24

#: Event-id stride per day: ``event_id = day * EVENT_ID_STRIDE + index``.
#: Bounds ``max_events_per_day`` (see config validation) so ids are
#: globally unique and sort by (day, index).
EVENT_ID_STRIDE = 32

LINK_FAILURE = "link-failure"
PEERING_FLAP = "peering-flap"
REGIONAL_OUTAGE = "regional-outage"

EVENT_KINDS = (LINK_FAILURE, PEERING_FLAP, REGIONAL_OUTAGE)


@dataclass(frozen=True)
class NetworkEvent:
    """One drawn network fault, pinned to its day and slot windows.

    ``edge`` is set for graph-level events (link failures and peering
    flaps): the unordered AS pair whose relationship drops while the
    event is active.  ``network``/``continent`` are set for regional
    outages: measurements towards that provider network from -- and to
    regions in -- that continent are unreachable while active.
    """

    kind: str
    event_id: int
    day: int
    windows: Tuple[Tuple[int, int], ...]
    edge: Optional[Tuple[int, int]] = None
    network: Optional[str] = None
    continent: Optional[Continent] = None

    def active_at(self, slot: int) -> bool:
        return any(start <= slot < end for start, end in self.windows)

    def describe(self) -> str:
        """Deterministic human-readable target, used in journal events."""
        if self.edge is not None:
            return f"AS{self.edge[0]}-AS{self.edge[1]}"
        return f"{self.network}:{self.continent.value if self.continent else '?'}"

    def label(self) -> str:
        """Journal label, e.g. ``link-failure:AS200003-AS3356@d1s4-s12``."""
        spans = "+".join(f"s{start}-s{end}" for start, end in self.windows)
        return f"{self.kind}:{self.describe()}@d{self.day}{spans}"


@dataclass(frozen=True)
class DayTimeline:
    """The epoch partition of one day under a fixed set of events.

    ``boundaries[i]`` is the first slot of epoch ``i`` (``boundaries[0]``
    is always ``0``); epoch ``i`` covers ``[boundaries[i],
    boundaries[i + 1])`` with the last epoch running to
    :data:`SLOTS_PER_DAY`.  ``active[i]`` holds the events active during
    epoch ``i``, in event-id order.
    """

    day: int
    events: Tuple[NetworkEvent, ...]
    boundaries: Tuple[int, ...]
    active: Tuple[Tuple[NetworkEvent, ...], ...]

    @property
    def epoch_count(self) -> int:
        return len(self.boundaries)

    def epoch_at(self, slot: int) -> int:
        """The epoch index covering ``slot``."""
        if not 0 <= slot < SLOTS_PER_DAY:
            raise ValueError(f"slot must be in [0, {SLOTS_PER_DAY}), got {slot}")
        return bisect_right(self.boundaries, slot) - 1

    def removed_edges(self, epoch: int) -> FrozenSet[Tuple[int, int]]:
        """Unordered AS pairs whose links are down during ``epoch``."""
        return frozenset(
            event.edge
            for event in self.active[epoch]
            if event.edge is not None
        )

    def outages(self, epoch: int) -> Tuple[NetworkEvent, ...]:
        """Regional outages active during ``epoch``, in event-id order."""
        return tuple(
            event
            for event in self.active[epoch]
            if event.kind == REGIONAL_OUTAGE
        )


def build_timeline(day: int, events: Tuple[NetworkEvent, ...]) -> DayTimeline:
    """Partition ``day`` into epochs from its events' window boundaries."""
    cuts = {0}
    for event in events:
        for start, end in event.windows:
            cuts.add(start)
            if end < SLOTS_PER_DAY:
                cuts.add(end)
    boundaries = tuple(sorted(cuts))
    ordered = tuple(sorted(events, key=lambda event: event.event_id))
    active = tuple(
        tuple(event for event in ordered if event.active_at(start))
        for start in boundaries
    )
    return DayTimeline(
        day=day, events=ordered, boundaries=boundaries, active=active
    )
