"""Canonical data tables: Tier-1 carriers, named access ISPs, IXPs."""

from repro.datasets.carriers import TIER1_CARRIERS, CarrierSpec
from repro.datasets.isps import NAMED_ISPS, NamedISPSpec
from repro.datasets.ixps import IXP_SITES, IXPSite

__all__ = [
    "IXP_SITES",
    "IXPSite",
    "NAMED_ISPS",
    "NamedISPSpec",
    "TIER1_CARRIERS",
    "CarrierSpec",
]
