"""Named access ISPs.

Real ASNs for the serving ISPs that appear by name in the paper's peering
case studies (Figs. 12a, 13a, 17a, 18a) and in the Fig. 9 representative
countries.  Countries without named entries get synthetic ISPs generated
by the topology builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class NamedISPSpec:
    """A real-world access ISP."""

    asn: int
    name: str
    country: str


NAMED_ISPS: Tuple[NamedISPSpec, ...] = (
    # Germany (paper Fig. 12a)
    NamedISPSpec(3209, "Vodafone", "DE"),
    NamedISPSpec(3320, "D. Telekom", "DE"),
    NamedISPSpec(6805, "Telefonica", "DE"),
    NamedISPSpec(6830, "Liberty", "DE"),
    NamedISPSpec(8881, "1&1", "DE"),
    # Japan (paper Fig. 13a)
    NamedISPSpec(2516, "KDDI", "JP"),
    NamedISPSpec(2518, "BIGLOBE", "JP"),
    NamedISPSpec(4713, "NTT", "JP"),
    NamedISPSpec(17511, "OPTAGE", "JP"),
    NamedISPSpec(17676, "SoftBank", "JP"),
    # Ukraine (paper Fig. 17a)
    NamedISPSpec(3255, "UARnet", "UA"),
    NamedISPSpec(3326, "Datagroup", "UA"),
    NamedISPSpec(6849, "UKRTELNET", "UA"),
    NamedISPSpec(15895, "Kyivstar", "UA"),
    NamedISPSpec(25229, "Volia", "UA"),
    # Bahrain (paper Fig. 18a)
    NamedISPSpec(5416, "Batelco", "BH"),
    NamedISPSpec(31452, "ZAIN", "BH"),
    NamedISPSpec(39273, "Kalaam", "BH"),
    NamedISPSpec(51375, "stc", "BH"),
    # United Kingdom
    NamedISPSpec(2856, "BT", "GB"),
    NamedISPSpec(5089, "Virgin Media", "GB"),
    NamedISPSpec(5607, "Sky", "GB"),
    NamedISPSpec(13285, "TalkTalk", "GB"),
    # United States
    NamedISPSpec(7922, "Comcast", "US"),
    NamedISPSpec(20115, "Charter", "US"),
    NamedISPSpec(7018, "AT&T", "US"),
    NamedISPSpec(701, "Verizon", "US"),
    # Brazil
    NamedISPSpec(28573, "Claro BR", "BR"),
    NamedISPSpec(27699, "Vivo", "BR"),
    NamedISPSpec(7738, "Oi", "BR"),
    # India
    NamedISPSpec(55836, "Reliance Jio", "IN"),
    NamedISPSpec(24560, "Airtel", "IN"),
    NamedISPSpec(9829, "BSNL", "IN"),
    # China
    NamedISPSpec(4134, "China Telecom", "CN"),
    NamedISPSpec(4837, "China Unicom", "CN"),
    NamedISPSpec(9808, "China Mobile", "CN"),
    # Iran
    NamedISPSpec(58224, "TCI", "IR"),
    NamedISPSpec(44244, "Irancell", "IR"),
    # South Africa
    NamedISPSpec(5713, "Telkom SA", "ZA"),
    NamedISPSpec(36994, "Vodacom", "ZA"),
    # Morocco
    NamedISPSpec(36903, "Maroc Telecom", "MA"),
    NamedISPSpec(36925, "INWI", "MA"),
    # Mexico
    NamedISPSpec(8151, "Telmex", "MX"),
    NamedISPSpec(17072, "Totalplay", "MX"),
    # Argentina
    NamedISPSpec(7303, "Telecom Argentina", "AR"),
    NamedISPSpec(22927, "Telefonica AR", "AR"),
)


def named_isps_by_country() -> Dict[str, List[NamedISPSpec]]:
    """Named ISPs grouped by country code."""
    grouped: Dict[str, List[NamedISPSpec]] = {}
    for spec in NAMED_ISPS:
        grouped.setdefault(spec.country, []).append(spec)
    return grouped
