"""Tier-1 transit carriers.

Real ASNs and operational homes for the settlement-free backbone mesh.
The paper explicitly observes carrier peering via Telia (AS1299) and GTT
(AS3257), and transit via NTT (AS2914, intra-Japan) and TATA (AS6453,
Japan-to-India); all four appear here so the case-study experiments can
name them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.coords import GeoPoint


@dataclass(frozen=True)
class CarrierSpec:
    """A Tier-1 backbone carrier."""

    asn: int
    name: str
    country: str
    home: GeoPoint


TIER1_CARRIERS: Tuple[CarrierSpec, ...] = (
    CarrierSpec(1299, "Telia Carrier", "SE", GeoPoint(59.33, 18.07)),
    CarrierSpec(3257, "GTT Communications", "US", GeoPoint(38.88, -77.10)),
    CarrierSpec(2914, "NTT Global IP Network", "JP", GeoPoint(35.68, 139.69)),
    CarrierSpec(6453, "TATA Communications", "IN", GeoPoint(19.08, 72.88)),
    CarrierSpec(174, "Cogent Communications", "US", GeoPoint(38.91, -77.04)),
    CarrierSpec(3356, "Lumen (Level 3)", "US", GeoPoint(39.74, -104.99)),
    CarrierSpec(6762, "Telecom Italia Sparkle", "IT", GeoPoint(41.90, 12.50)),
    CarrierSpec(6461, "Zayo", "US", GeoPoint(40.01, -105.27)),
    CarrierSpec(3491, "PCCW Global", "CN", GeoPoint(22.32, 114.17)),
    CarrierSpec(5511, "Orange International", "FR", GeoPoint(48.86, 2.35)),
    CarrierSpec(12956, "Telxius", "ES", GeoPoint(40.42, -3.70)),
    CarrierSpec(1239, "Sprint", "US", GeoPoint(38.93, -94.67)),
)
