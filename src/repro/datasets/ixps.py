"""Internet exchange point sites (the synthetic CAIDA IXP dataset)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.continents import Continent
from repro.geo.coords import GeoPoint


@dataclass(frozen=True)
class IXPSite:
    """One exchange point location."""

    name: str
    city: str
    country: str
    continent: Continent
    location: GeoPoint


IXP_SITES: Tuple[IXPSite, ...] = (
    IXPSite("DE-CIX", "Frankfurt", "DE", Continent.EU, GeoPoint(50.11, 8.68)),
    IXPSite("AMS-IX", "Amsterdam", "NL", Continent.EU, GeoPoint(52.37, 4.90)),
    IXPSite("LINX", "London", "GB", Continent.EU, GeoPoint(51.51, -0.13)),
    IXPSite("France-IX", "Paris", "FR", Continent.EU, GeoPoint(48.86, 2.35)),
    IXPSite("Equinix-DC", "Ashburn", "US", Continent.NA, GeoPoint(39.04, -77.49)),
    IXPSite("Any2", "Los Angeles", "US", Continent.NA, GeoPoint(34.05, -118.24)),
    IXPSite("TorIX", "Toronto", "CA", Continent.NA, GeoPoint(43.65, -79.38)),
    IXPSite("IX.br", "Sao Paulo", "BR", Continent.SA, GeoPoint(-23.55, -46.63)),
    IXPSite("JPNAP", "Tokyo", "JP", Continent.AS, GeoPoint(35.68, 139.69)),
    IXPSite("HKIX", "Hong Kong", "CN", Continent.AS, GeoPoint(22.32, 114.17)),
    IXPSite("SGIX", "Singapore", "SG", Continent.AS, GeoPoint(1.35, 103.82)),
    IXPSite("NIXI", "Mumbai", "IN", Continent.AS, GeoPoint(19.08, 72.88)),
    IXPSite("NAPAfrica", "Johannesburg", "ZA", Continent.AF, GeoPoint(-26.20, 28.05)),
    IXPSite("CAIX", "Cairo", "EG", Continent.AF, GeoPoint(30.04, 31.24)),
    IXPSite("IX-Australia", "Sydney", "AU", Continent.OC, GeoPoint(-33.87, 151.21)),
)
