"""Reproduction of "Cloudy with a Chance of Short RTTs" (IMC 2021).

This package implements a synthetic-Internet measurement study that
reproduces the analysis pipeline, experiments, and findings of the paper
*Cloudy with a Chance of Short RTTs: Analyzing Cloud Connectivity in the
Internet* by Dang, Mohan, Corneo, Zavodovski, Ott and Kangasharju.

The public API is organised in layers, bottom-up:

- :mod:`repro.geo` -- geography: coordinates, countries, continents.
- :mod:`repro.net` -- IP prefixes, autonomous systems, AS relationships,
  valley-free policy routing, IXPs and router-level paths.
- :mod:`repro.cloud` -- the nine cloud providers, their 195 compute
  regions, private WANs and peering agreements.
- :mod:`repro.lastmile` -- WiFi, cellular and wired last-mile models.
- :mod:`repro.platforms` -- the Speedchecker-like and RIPE-Atlas-like
  measurement platforms and their probe deployments.
- :mod:`repro.measure` -- ping and traceroute engines plus the six-month
  measurement campaign scheduler.
- :mod:`repro.store` -- the binary columnar dataset warehouse with
  journaled, crash-resumable campaign runs.
- :mod:`repro.faults` -- deterministic fault injection and the retry /
  circuit-breaker / degradation policies of the resilient runner.
- :mod:`repro.resolve` -- traceroute post-processing: IP-to-ASN
  resolution, IXP tagging, PeeringDB-style enrichment and noisy GeoIP.
- :mod:`repro.analysis` -- the paper's statistical analyses.
- :mod:`repro.experiments` -- one runner per table/figure of the paper.

Quickstart::

    from repro import build_world, run_campaign
    from repro.experiments import run_experiment

    world = build_world(seed=7, scale=0.02)
    dataset = run_campaign(world, days=14)
    result = run_experiment("fig4", world, dataset)
    print(result.render())
"""

from repro.core.config import SimulationConfig
from repro.core.scenario import build_world
from repro.core.world import World
from repro.faults import FaultConfig, RetryPolicy
from repro.measure.campaign import (
    resume_campaign,
    run_campaign,
    run_campaign_checkpointed,
)
from repro.store import DatasetStore

__version__ = "1.0.0"

__all__ = [
    "DatasetStore",
    "FaultConfig",
    "RetryPolicy",
    "SimulationConfig",
    "World",
    "build_world",
    "resume_campaign",
    "run_campaign",
    "run_campaign_checkpointed",
    "__version__",
]
