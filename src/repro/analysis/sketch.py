"""Mergeable aggregation sketches for one-pass, incremental analysis.

The paper's headline figures are aggregations -- RTT CDFs per region and
provider, country-level latency bands, day-over-day medians.  Computing
them by materializing every measurement record does not scale to the
full campaign, and recomputing them from scratch as new shards commit
is wasteful.  The sketches here are the alternative: small summaries
that absorb NumPy arrays of samples in one pass and **merge** -- the
summary of two shards is the merge of their summaries -- so any
filtered aggregate can be computed shard-parallel and updated
incrementally (see :mod:`repro.query`).

Two sketches cover the query engine's aggregate set:

- :class:`ScalarSummary` -- exact count/sum/min/max (and mean).
- :class:`QuantileSketch` -- an approximate quantile summary in the
  t-digest family: a sorted list of (mean, weight) centroids compressed
  so no centroid carries more than ``epsilon/4`` of the total weight.
  Quantile queries interpolate centroid mean ranks, giving a rank error
  bounded by ``epsilon`` (``tests/unit/test_query_sketch.py`` drives
  the bound with hypothesis against exact ``np.percentile``).  Until a
  sketch exceeds ``4 / epsilon`` samples it stays uncompressed and its
  quantiles are *bit-identical* to ``np.percentile(..)`` with linear
  interpolation.

Both are deterministic: the state after a sequence of ``add_array`` /
``merge`` calls is a pure function of the call sequence, which is what
lets parallel scans reproduce serial results byte-for-byte by merging
partials in canonical shard order.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

#: Default rank-error budget of a :class:`QuantileSketch`.
DEFAULT_EPSILON = 0.005

ArrayLike = Union[np.ndarray, Sequence[float]]


class ScalarSummary:
    """Exact mergeable count/sum/min/max over a stream of value arrays.

    The sum is accumulated as *one* ``np.sum`` per added array plus one
    Python float addition per add/merge, so a scan that feeds each
    shard's per-group values as a single array produces a total whose
    floating-point reduction structure is reproducible -- the exact
    oracle (:mod:`repro.query.oracle`) mirrors it to assert equality.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add_array(self, values: ArrayLike) -> None:
        """Absorb one array of finite values."""
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        self.count += int(array.size)
        self.total += float(np.sum(array))
        low = float(array.min())
        high = float(array.max())
        self.minimum = low if self.minimum is None else min(self.minimum, low)
        self.maximum = high if self.maximum is None else max(self.maximum, high)

    def merge(self, other: "ScalarSummary") -> None:
        """Absorb another summary (in place)."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return (
            f"ScalarSummary(count={self.count}, total={self.total!r}, "
            f"min={self.minimum!r}, max={self.maximum!r})"
        )


class QuantileSketch:
    """A mergeable online quantile sketch with bounded rank error.

    State is a sorted array of centroids ``(mean, weight)`` plus the
    exact global minimum/maximum and count.  Compression buckets
    consecutive centroids by cumulative weight so every centroid weighs
    at most ``epsilon / 4`` of the total (plus one input centroid),
    keeping the sketch at ~``4 / epsilon`` centroids regardless of how
    many samples it absorbs.
    """

    __slots__ = ("epsilon", "means", "weights", "minimum", "maximum", "count")

    def __init__(self, epsilon: float = DEFAULT_EPSILON) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = float(epsilon)
        self.means: np.ndarray = np.empty(0, dtype=np.float64)
        self.weights: np.ndarray = np.empty(0, dtype=np.float64)
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.count: int = 0

    # -- construction ------------------------------------------------------

    def add_array(self, values: ArrayLike) -> None:
        """Absorb one array of finite values."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        if not np.all(np.isfinite(array)):
            raise ValueError("quantile sketch values must be finite")
        low = float(array.min())
        high = float(array.max())
        self.minimum = low if self.minimum is None else min(self.minimum, low)
        self.maximum = high if self.maximum is None else max(self.maximum, high)
        self.count += int(array.size)
        means = np.concatenate([self.means, array])
        weights = np.concatenate(
            [self.weights, np.ones(array.size, dtype=np.float64)]
        )
        self._absorb(means, weights)

    def merge(self, other: "QuantileSketch") -> None:
        """Absorb another sketch (in place).

        The result's rank-error budget is the larger of the two
        epsilons; merging is deterministic but, like all compressing
        sketches, only associative/commutative *up to* that budget.
        """
        if other.count == 0:
            return
        self.epsilon = max(self.epsilon, other.epsilon)
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )
        self.count += other.count
        means = np.concatenate([self.means, other.means])
        weights = np.concatenate([self.weights, other.weights])
        self._absorb(means, weights)

    def _absorb(self, means: np.ndarray, weights: np.ndarray) -> None:
        """Sort combined centroids by mean and recompress."""
        order = np.argsort(means, kind="stable")
        means = means[order]
        weights = weights[order]
        total = float(weights.sum())
        cap = self.epsilon * total / 4.0
        if cap <= 1.0:
            # Small sketch: keep every centroid; quantiles stay exact.
            self.means = means
            self.weights = weights
            return
        # Bucket by cumulative-weight start offset: every bucket spans at
        # most `cap` of cumulative weight (plus the one centroid that
        # straddles its boundary), so centroid weights stay <= epsilon/4
        # of the total plus one input centroid.
        starts = np.cumsum(weights) - weights
        buckets = np.floor_divide(starts, cap).astype(np.int64)
        sums = np.bincount(buckets, weights=weights * means)
        bucket_weights = np.bincount(buckets, weights=weights)
        keep = bucket_weights > 0
        self.means = sums[keep] / bucket_weights[keep]
        self.weights = bucket_weights[keep]

    # -- queries -----------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The approximate ``q``-th percentile (0-100).

        Interpolates between centroid mean ranks exactly the way
        ``np.percentile``'s default linear interpolation walks order
        statistics, clamped to the exact observed min/max.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be within [0, 100], got {q}")
        if self.count == 0 or self.minimum is None or self.maximum is None:
            raise ValueError("cannot take a quantile of an empty sketch")
        # The virtual index and the lerp below replicate np.percentile's
        # "linear" method operation-for-operation (including its formula
        # switch at t >= 0.5), so the uncompressed regime -- integer
        # ranks 0..n-1 over the sorted samples -- is bit-identical to it.
        target = (self.count - 1) * (q / 100.0)
        # Mean 0-indexed rank of each centroid, assuming its weight
        # occupies consecutive ranks.
        ends = np.cumsum(self.weights)
        centers = ends - self.weights + (self.weights - 1.0) / 2.0
        ranks: List[float] = []
        points: List[float] = []
        if centers.size == 0 or centers[0] > 0.0:
            ranks.append(0.0)
            points.append(self.minimum)
        ranks.extend(float(c) for c in centers)
        points.extend(float(m) for m in self.means)
        last_rank = float(self.count - 1)
        if not ranks or ranks[-1] < last_rank:
            ranks.append(last_rank)
            points.append(self.maximum)
        if target <= ranks[0]:
            value = points[0]
        elif target >= ranks[-1]:
            value = points[-1]
        else:
            hi = int(np.searchsorted(ranks, target, side="right"))
            low_rank, high_rank = ranks[hi - 1], ranks[hi]
            low, high = points[hi - 1], points[hi]
            t = (target - low_rank) / (high_rank - low_rank)
            diff = high - low
            value = low + diff * t if t < 0.5 else high - diff * (1.0 - t)
        return min(max(value, self.minimum), self.maximum)

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    @property
    def centroid_count(self) -> int:
        return int(self.means.size)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe snapshot (exact round-trip via :meth:`from_dict`)."""
        return {
            "epsilon": self.epsilon,
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "means": [float(m) for m in self.means],
            "weights": [float(w) for w in self.weights],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(epsilon=payload["epsilon"])
        sketch.count = int(payload["count"])
        sketch.minimum = payload["min"]
        sketch.maximum = payload["max"]
        sketch.means = np.asarray(payload["means"], dtype=np.float64)
        sketch.weights = np.asarray(payload["weights"], dtype=np.float64)
        if sketch.count and math.isnan(float(np.sum(sketch.weights))):
            raise ValueError("corrupt sketch payload")
        return sketch

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(count={self.count}, "
            f"centroids={self.centroid_count}, epsilon={self.epsilon})"
        )
