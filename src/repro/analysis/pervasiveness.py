"""Pervasiveness: how much of the user path the provider owns (Fig. 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.cloud.providers import network_operator
from repro.geo.continents import Continent
from repro.resolve.pipeline import ResolvedTrace


@dataclass(frozen=True)
class PervasivenessEntry:
    """Mean pervasiveness for one (provider network, probe continent)."""

    provider_code: str
    continent: Continent
    trace_count: int
    mean_share: float
    median_share: float


def pervasiveness_by_provider(
    traces: Iterable[ResolvedTrace],
    min_traces: int = 5,
) -> List[PervasivenessEntry]:
    """Fig. 11: ratio of provider-owned routers to path length.

    Computed per resolved traceroute as the share of responding routers
    whose ASN is the provider's network, averaged per (provider,
    continent of the probe).
    """
    grouped: Dict[Tuple[str, Continent], List[float]] = {}
    for trace in traces:
        network = network_operator(trace.meta.provider_code)
        share = trace.provider_hop_share(network.asn)
        if share is None:
            continue
        key = (network.code, trace.meta.continent)
        grouped.setdefault(key, []).append(share)
    entries: List[PervasivenessEntry] = []
    for (code, continent), shares in sorted(grouped.items()):
        if len(shares) < min_traces:
            continue
        values = np.asarray(shares, dtype=float)
        entries.append(
            PervasivenessEntry(
                provider_code=code,
                continent=continent,
                trace_count=int(values.size),
                mean_share=float(values.mean()),
                median_share=float(np.median(values)),
            )
        )
    return entries


def overall_pervasiveness(
    entries: Iterable[PervasivenessEntry],
) -> Dict[str, float]:
    """Trace-weighted global mean pervasiveness per provider."""
    totals: Dict[str, Tuple[float, int]] = {}
    for entry in entries:
        weight_sum, count = totals.get(entry.provider_code, (0.0, 0))
        totals[entry.provider_code] = (
            weight_sum + entry.mean_share * entry.trace_count,
            count + entry.trace_count,
        )
    return {
        code: weight_sum / count
        for code, (weight_sum, count) in totals.items()
        if count
    }
