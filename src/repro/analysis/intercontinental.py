"""Inter-continental latency analysis (paper Fig. 6, section 4.3).

For probes in under-provisioned continents, compares access latency to
the nearest datacenter of each candidate continent: Africa -> {AF, EU,
NA}; South America -> {SA, NA}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import BoxStats
from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset, Protocol

#: Countries shown in the paper's Fig. 6.
FIG6_AFRICA = ("DZ", "EG", "ET", "KE", "MA", "SN", "TN", "ZA")
FIG6_SOUTH_AMERICA = ("AR", "BO", "BR", "CL", "CO", "EC", "PE", "VE")

#: Target continents per source continent.
TARGETS = {
    Continent.AF: (Continent.EU, Continent.NA, Continent.AF),
    Continent.SA: (Continent.NA, Continent.SA),
}


@dataclass(frozen=True)
class CountryTargetStats:
    """Latency summary for one (source country, target continent)."""

    country: str
    target_continent: Continent
    stats: BoxStats


def _nearest_region_samples(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol,
    countries: Sequence[str],
    target_continents: Sequence[Continent],
) -> Dict[Tuple[str, Continent], List[float]]:
    """All samples grouped by (country, target continent), restricted per
    probe to its lowest-mean region within each target continent."""
    wanted = set(countries)
    targets = set(target_continents)
    # mean latency per (probe, target continent, region)
    sums: Dict[Tuple[str, Continent, Tuple[str, str]], List[float]] = {}
    samples: Dict[Tuple[str, Continent, Tuple[str, str]], List[float]] = {}
    country_of: Dict[str, str] = {}
    for ping in dataset.pings(platform=platform, protocol=protocol):
        meta = ping.meta
        if meta.country not in wanted:
            continue
        if meta.region_continent not in targets:
            continue
        key = (
            meta.probe_id,
            meta.region_continent,
            (meta.provider_code, meta.region_id),
        )
        bucket = sums.setdefault(key, [0.0, 0])
        bucket[0] += sum(ping.samples)
        bucket[1] += len(ping.samples)
        samples.setdefault(key, []).extend(ping.samples)
        country_of[meta.probe_id] = meta.country

    best: Dict[Tuple[str, Continent], Tuple[float, Tuple[str, str]]] = {}
    for (probe_id, continent, region_key), (total, count) in sums.items():
        mean = total / count
        current = best.get((probe_id, continent))
        if current is None or mean < current[0]:
            best[(probe_id, continent)] = (mean, region_key)

    grouped: Dict[Tuple[str, Continent], List[float]] = {}
    for (probe_id, continent), (_, region_key) in best.items():
        values = samples[(probe_id, continent, region_key)]
        group = (country_of[probe_id], continent)
        grouped.setdefault(group, []).extend(values)
    return grouped


def intercontinental_latency(
    dataset: MeasurementDataset,
    source_continent: Continent,
    countries: Optional[Sequence[str]] = None,
    platform: str = "speedchecker",
    protocol: Protocol = Protocol.TCP,
    min_samples: int = 8,
) -> List[CountryTargetStats]:
    """Fig. 6: per-country latency to nearest DCs per target continent."""
    source_continent = Continent(source_continent)
    if source_continent not in TARGETS:
        raise ValueError(
            f"inter-continental analysis covers AF and SA, not {source_continent}"
        )
    if countries is None:
        countries = (
            FIG6_AFRICA if source_continent is Continent.AF else FIG6_SOUTH_AMERICA
        )
    grouped = _nearest_region_samples(
        dataset, platform, protocol, countries, TARGETS[source_continent]
    )
    results: List[CountryTargetStats] = []
    for country in countries:
        for target in TARGETS[source_continent]:
            values = grouped.get((country, target))
            if not values or len(values) < min_samples:
                continue
            results.append(
                CountryTargetStats(
                    country=country,
                    target_continent=target,
                    stats=BoxStats.from_samples(values),
                )
            )
    return results
