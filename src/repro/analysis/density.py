"""Probe-deployment density and population coverage (paper section 3.2
and appendix A.1 / Fig. 14).

Two metrics:

- **geoDensity**: probes per million km^2 of continent area.  The paper
  reports Speedchecker's geoDensity at ~12x Atlas in EU, ~6x in NA, and
  30-40x in the developing regions.
- **population coverage**: share of the world's Internet users living in
  ASes that host at least one probe (the APNIC-style estimate; the paper
  reports 95.6% for Speedchecker vs 69.2% for Atlas).  User population
  is split evenly across a country's access ISPs, as in ad-based
  per-ASN estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.geo.continents import Continent
from repro.geo.countries import CountryRegistry
from repro.platforms.probe import Probe

#: Approximate land area per continent, in millions of km^2.
CONTINENT_AREA_MKM2: Dict[Continent, float] = {
    Continent.EU: 10.2,
    Continent.NA: 24.7,
    Continent.SA: 17.8,
    Continent.AS: 44.6,
    Continent.AF: 30.4,
    Continent.OC: 8.5,
}


@dataclass(frozen=True)
class DensityEntry:
    """geoDensity comparison for one continent."""

    continent: Continent
    speedchecker_probes: int
    atlas_probes: int
    speedchecker_density: float
    atlas_density: float

    @property
    def density_ratio(self) -> float:
        """Speedchecker-to-Atlas geoDensity ratio."""
        if self.atlas_density == 0:
            return float("inf")
        return self.speedchecker_density / self.atlas_density


def geo_density(
    speedchecker_probes: Iterable[Probe],
    atlas_probes: Iterable[Probe],
) -> List[DensityEntry]:
    """Per-continent probe geoDensity for both platforms (Fig. 14)."""
    sc_counts: Dict[Continent, int] = {}
    for probe in speedchecker_probes:
        sc_counts[probe.continent] = sc_counts.get(probe.continent, 0) + 1
    atlas_counts: Dict[Continent, int] = {}
    for probe in atlas_probes:
        atlas_counts[probe.continent] = atlas_counts.get(probe.continent, 0) + 1
    entries = []
    for continent, area in CONTINENT_AREA_MKM2.items():
        sc = sc_counts.get(continent, 0)
        atlas = atlas_counts.get(continent, 0)
        entries.append(
            DensityEntry(
                continent=continent,
                speedchecker_probes=sc,
                atlas_probes=atlas,
                speedchecker_density=sc / area,
                atlas_density=atlas / area,
            )
        )
    return entries


def population_coverage(
    probes: Iterable[Probe],
    countries: CountryRegistry,
    registry,
) -> float:
    """Share of Internet users in ASes hosting at least one probe.

    ``registry`` is the AS registry; each country's Internet users are
    split evenly across its access ISPs.
    """
    covered_asns: Set[int] = {probe.isp_asn for probe in probes}
    covered_users = 0.0
    total_users = 0.0
    for country in countries:
        isps = registry.access_in_country(country.iso)
        if not isps:
            continue
        users_per_isp = country.internet_users_m / len(isps)
        for isp in isps:
            total_users += users_per_isp
            if isp.asn in covered_asns:
                covered_users += users_per_isp
    if total_users == 0:
        raise ValueError("no Internet users registered in any country")
    return covered_users / total_users
