"""Temporal stability of cloud access latency across the campaign.

The paper's campaign spans six months; latency *consistency* over time is
what several of its QoS arguments (buffering, prediction) rest on.  This
module summarizes the per-day behaviour of a dataset: daily medians, the
day-to-day coefficient of variation, and the weekday/weekend congestion
contrast built into the path model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.measure.results import MeasurementDataset, Protocol


@dataclass(frozen=True)
class TemporalReport:
    """Per-day latency behaviour of a campaign dataset."""

    day_count: int
    daily_median_ms: Dict[int, float]
    #: Cv of the daily medians -- how stable the median is across days.
    day_to_day_cv: float
    weekday_median_ms: Optional[float]
    weekend_median_ms: Optional[float]

    @property
    def weekend_gain(self) -> Optional[float]:
        """Relative latency reduction on weekends (positive = faster)."""
        if self.weekday_median_ms is None or self.weekend_median_ms is None:
            return None
        return 1.0 - self.weekend_median_ms / self.weekday_median_ms


def temporal_report(
    dataset: MeasurementDataset,
    platform: str = "speedchecker",
    protocol: Protocol = Protocol.TCP,
    min_samples_per_day: int = 20,
) -> TemporalReport:
    """Summarize per-day latency across a campaign."""
    from repro.query import store_backing

    store = store_backing(dataset)
    if store is not None:
        # Store-backed fast path: one columnar group-by-day query with
        # exact collected values.  Medians are permutation-invariant, so
        # the report is identical to the record-loop's.
        from repro.query import QuerySpec, execute

        spec = QuerySpec(
            platform=platform,
            protocol=Protocol(protocol).value,
            group_by=("day",),
            aggregates=("samples",),
            collect=True,
        )
        per_day: Dict[int, List[float]] = {
            row["group"]["day"]: row["values"]
            for row in execute(store, spec).rows
        }
    else:
        per_day = {}
        for ping in dataset.pings(platform=platform, protocol=protocol):
            per_day.setdefault(ping.meta.day, []).extend(ping.samples)
    daily_median = {
        day: float(np.median(samples))
        for day, samples in sorted(per_day.items())
        if len(samples) >= min_samples_per_day
    }
    if not daily_median:
        raise ValueError("no day has enough samples for a temporal report")
    medians = np.asarray(list(daily_median.values()))
    cv = float(medians.std() / medians.mean()) if medians.size > 1 else 0.0

    weekday = [m for day, m in daily_median.items() if day % 7 not in (5, 6)]
    weekend = [m for day, m in daily_median.items() if day % 7 in (5, 6)]
    return TemporalReport(
        day_count=len(daily_median),
        daily_median_ms=daily_median,
        day_to_day_cv=cv,
        weekday_median_ms=float(np.median(weekday)) if weekday else None,
        weekend_median_ms=float(np.median(weekend)) if weekend else None,
    )
