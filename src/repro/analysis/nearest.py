"""Latency-based nearest-datacenter estimation.

The paper defines the datacenter "closest" to a probe as the one with the
lowest *mean* latency over time (Fig. 3 footnote), restricted to the
probe's own continent for the intra-continental analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset, PingMeasurement, Protocol

#: (provider_code, region_id)
RegionKey = Tuple[str, str]


@dataclass(frozen=True)
class NearestMap:
    """Per-probe nearest-datacenter assignments."""

    nearest: Dict[str, RegionKey]

    def region_for(self, probe_id: str) -> Optional[RegionKey]:
        return self.nearest.get(probe_id)

    def __len__(self) -> int:
        return len(self.nearest)


# -- query-engine fast paths -------------------------------------------------
#
# Store-backed datasets answer these aggregations without materializing
# a single record: the query engine groups memmapped columns by
# (probe, provider, region) and returns per-group sums/counts plus the
# `first` tie-break key, which reproduces the legacy loop's first-seen
# dict-insertion order exactly.  In-memory datasets keep the record
# loop below.


def _best_regions(
    rows: "List[Dict[str, Any]]",
) -> Dict[str, Tuple[Tuple[float, Tuple[int, int]], RegionKey]]:
    """Per-probe winning region from engine group rows.

    Ranked by ``(mean, first_row)``: the legacy loop keeps the first-
    inserted region on equal means, and first insertion order *is*
    ascending ``(shard ordinal, row index)`` of each group's first
    matching record.
    """
    best: Dict[str, Tuple[Tuple[float, Tuple[int, int]], RegionKey]] = {}
    for row in rows:
        if not row["samples"]:
            continue
        group = row["group"]
        rank = (row["sum"] / row["samples"], tuple(row["first"]))
        current = best.get(group["probe"])
        if current is None or rank < current[0]:
            best[group["probe"]] = (
                rank,
                (group["provider"], group["region"]),
            )
    return best


def _query_nearest(
    store: Any,
    platform: str,
    protocol: Protocol,
    same_continent_only: bool,
) -> NearestMap:
    from repro.query import QuerySpec, execute

    spec = QuerySpec(
        platform=platform,
        protocol=protocol.value,
        same_continent_only=same_continent_only,
        group_by=("probe", "provider", "region"),
        aggregates=("samples", "sum", "first"),
    )
    best = _best_regions(execute(store, spec).rows)
    return NearestMap(
        {probe_id: region for probe_id, (_, region) in best.items()}
    )


def _query_nearest_samples(
    store: Any,
    platform: str,
    protocol: Protocol,
    group_key: str,
) -> Dict[str, List[float]]:
    """Nearest-DC samples grouped by ``group_key`` via one engine query.

    A probe belongs to exactly one country/continent, so adding the key
    to the group-by does not split the (probe, provider, region) groups
    the nearest map ranks.  Keys are inserted in legacy first-occurrence
    order (ascending first matching row among each key's nearest-region
    groups); sample order *within* a group list differs from the legacy
    interleaving, which downstream consumers (medians, percentiles,
    threshold fractions) are invariant to.
    """
    from repro.query import QuerySpec, execute

    spec = QuerySpec(
        platform=platform,
        protocol=protocol.value,
        same_continent_only=True,
        group_by=("probe", "provider", "region", group_key),
        aggregates=("samples", "sum", "first"),
        collect=True,
    )
    rows = execute(store, spec).rows
    best = _best_regions(rows)
    matched = [
        row
        for row in rows
        if best.get(row["group"]["probe"], (None, None))[1]
        == (row["group"]["provider"], row["group"]["region"])
    ]
    matched.sort(key=lambda row: tuple(row["first"]))
    grouped: Dict[str, List[float]] = {}
    for row in matched:
        grouped.setdefault(row["group"][group_key], []).extend(row["values"])
    return grouped


def nearest_by_probe(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
    same_continent_only: bool = True,
) -> NearestMap:
    """Estimate each probe's nearest datacenter from its measurements."""
    from repro.query import store_backing

    store = store_backing(dataset)
    if store is not None:
        return _query_nearest(
            store, platform, Protocol(protocol), same_continent_only
        )
    sums: Dict[Tuple[str, RegionKey], List[float]] = {}
    for ping in dataset.pings(platform=platform, protocol=protocol):
        meta = ping.meta
        if same_continent_only and meta.region_continent is not meta.continent:
            continue
        key = (meta.probe_id, (meta.provider_code, meta.region_id))
        bucket = sums.setdefault(key, [0.0, 0])
        bucket[0] += sum(ping.samples)
        bucket[1] += len(ping.samples)
    best: Dict[str, Tuple[float, RegionKey]] = {}
    for (probe_id, region_key), (total, count) in sums.items():
        mean = total / count
        current = best.get(probe_id)
        if current is None or mean < current[0]:
            best[probe_id] = (mean, region_key)
    return NearestMap({probe_id: region for probe_id, (_, region) in best.items()})


def samples_to_nearest(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
    nearest: Optional[NearestMap] = None,
    same_continent_only: bool = True,
) -> Iterator[Tuple[PingMeasurement, float]]:
    """(measurement, rtt) pairs restricted to each probe's nearest DC."""
    if nearest is None:
        nearest = nearest_by_probe(
            dataset, platform, protocol, same_continent_only
        )
    for ping in dataset.pings(platform=platform, protocol=protocol):
        meta = ping.meta
        if nearest.region_for(meta.probe_id) != (
            meta.provider_code,
            meta.region_id,
        ):
            continue
        for sample in ping.samples:
            yield ping, sample


def nearest_samples_by_continent(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
) -> Dict[Continent, List[float]]:
    """All nearest-DC RTT samples grouped by probe continent (Fig. 4)."""
    from repro.query import store_backing

    store = store_backing(dataset)
    if store is not None:
        return {
            Continent(name): samples
            for name, samples in _query_nearest_samples(
                store, platform, Protocol(protocol), "continent"
            ).items()
        }
    grouped: Dict[Continent, List[float]] = {}
    for ping, sample in samples_to_nearest(dataset, platform, protocol):
        grouped.setdefault(ping.meta.continent, []).append(sample)
    return grouped


def nearest_samples_by_country(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
) -> Dict[str, List[float]]:
    """All nearest-DC RTT samples grouped by probe country (Fig. 3)."""
    from repro.query import store_backing

    store = store_backing(dataset)
    if store is not None:
        return _query_nearest_samples(
            store, platform, Protocol(protocol), "country"
        )
    grouped: Dict[str, List[float]] = {}
    for ping, sample in samples_to_nearest(dataset, platform, protocol):
        grouped.setdefault(ping.meta.country, []).append(sample)
    return grouped
