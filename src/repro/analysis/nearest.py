"""Latency-based nearest-datacenter estimation.

The paper defines the datacenter "closest" to a probe as the one with the
lowest *mean* latency over time (Fig. 3 footnote), restricted to the
probe's own continent for the intra-continental analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset, PingMeasurement, Protocol

#: (provider_code, region_id)
RegionKey = Tuple[str, str]


@dataclass(frozen=True)
class NearestMap:
    """Per-probe nearest-datacenter assignments."""

    nearest: Dict[str, RegionKey]

    def region_for(self, probe_id: str) -> Optional[RegionKey]:
        return self.nearest.get(probe_id)

    def __len__(self) -> int:
        return len(self.nearest)


def nearest_by_probe(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
    same_continent_only: bool = True,
) -> NearestMap:
    """Estimate each probe's nearest datacenter from its measurements."""
    sums: Dict[Tuple[str, RegionKey], List[float]] = {}
    for ping in dataset.pings(platform=platform, protocol=protocol):
        meta = ping.meta
        if same_continent_only and meta.region_continent is not meta.continent:
            continue
        key = (meta.probe_id, (meta.provider_code, meta.region_id))
        bucket = sums.setdefault(key, [0.0, 0])
        bucket[0] += sum(ping.samples)
        bucket[1] += len(ping.samples)
    best: Dict[str, Tuple[float, RegionKey]] = {}
    for (probe_id, region_key), (total, count) in sums.items():
        mean = total / count
        current = best.get(probe_id)
        if current is None or mean < current[0]:
            best[probe_id] = (mean, region_key)
    return NearestMap({probe_id: region for probe_id, (_, region) in best.items()})


def samples_to_nearest(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
    nearest: Optional[NearestMap] = None,
    same_continent_only: bool = True,
) -> Iterator[Tuple[PingMeasurement, float]]:
    """(measurement, rtt) pairs restricted to each probe's nearest DC."""
    if nearest is None:
        nearest = nearest_by_probe(
            dataset, platform, protocol, same_continent_only
        )
    for ping in dataset.pings(platform=platform, protocol=protocol):
        meta = ping.meta
        if nearest.region_for(meta.probe_id) != (
            meta.provider_code,
            meta.region_id,
        ):
            continue
        for sample in ping.samples:
            yield ping, sample


def nearest_samples_by_continent(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
) -> Dict[Continent, List[float]]:
    """All nearest-DC RTT samples grouped by probe continent (Fig. 4)."""
    grouped: Dict[Continent, List[float]] = {}
    for ping, sample in samples_to_nearest(dataset, platform, protocol):
        grouped.setdefault(ping.meta.continent, []).append(sample)
    return grouped


def nearest_samples_by_country(
    dataset: MeasurementDataset,
    platform: str,
    protocol: Protocol = Protocol.TCP,
) -> Dict[str, List[float]]:
    """All nearest-DC RTT samples grouped by probe country (Fig. 3)."""
    grouped: Dict[str, List[float]] = {}
    for ping, sample in samples_to_nearest(dataset, platform, protocol):
        grouped.setdefault(ping.meta.country, []).append(sample)
    return grouped
