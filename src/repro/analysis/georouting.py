"""Geolocation-based routing assessment -- and why the paper refrained.

Section 3.3 geolocates router hops with a commercial database but
explicitly *refrains* from drawing geographic routing conclusions because
such databases are known to be inaccurate.  This module quantifies that
decision over the simulator, where ground-truth hop positions are known:
it geolocates every hop of a planned path through the noisy GeoIP
database and reports (a) the per-hop position error and (b) the error of
the derived "detour distance" (the GeoIP path length vs the true one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.geo.coords import haversine_km
from repro.measure.path import PlannedPath
from repro.resolve.geoip import GeoIPDatabase


@dataclass(frozen=True)
class GeoRoutingAssessment:
    """Error statistics of GeoIP-derived routing geometry."""

    hop_count: int
    median_hop_error_km: float
    p90_hop_error_km: float
    #: Median relative error of the GeoIP-computed path length against
    #: the true router-level path length.
    median_path_length_error: float
    #: Share of paths whose GeoIP-derived length is off by more than 25%.
    unreliable_path_share: float


def assess_geo_routing(
    paths: Iterable[PlannedPath],
    geoip: GeoIPDatabase,
) -> GeoRoutingAssessment:
    """Quantify GeoIP-induced error over planned paths.

    Raises ``ValueError`` when no paths are supplied.
    """
    hop_errors: List[float] = []
    length_errors: List[float] = []
    for path in paths:
        previous_true = None
        previous_located = None
        true_length = 0.0
        located_length = 0.0
        for hop in path.hops:
            located = geoip.locate(hop.address, hop.position).position
            hop_errors.append(haversine_km(hop.position, located))
            if previous_true is not None:
                true_length += haversine_km(previous_true, hop.position)
                located_length += haversine_km(previous_located, located)
            previous_true = hop.position
            previous_located = located
        if true_length > 0:
            length_errors.append(abs(located_length - true_length) / true_length)
    if not hop_errors:
        raise ValueError("no paths supplied for geo-routing assessment")
    hop_array = np.asarray(hop_errors)
    length_array = np.asarray(length_errors) if length_errors else np.array([0.0])
    return GeoRoutingAssessment(
        hop_count=int(hop_array.size),
        median_hop_error_km=float(np.median(hop_array)),
        p90_hop_error_km=float(np.percentile(hop_array, 90)),
        median_path_length_error=float(np.median(length_array)),
        unreliable_path_share=float((length_array > 0.25).mean()),
    )
