"""Latency banding against the QoE thresholds (paper Figs. 3 and 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.nearest import (
    nearest_samples_by_continent,
    nearest_samples_by_country,
)
from repro.analysis.stats import fraction_below, median
from repro.analysis.thresholds import HPL_MS, HRT_MS, MTP_MS, band_label
from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset, Protocol


@dataclass(frozen=True)
class CountryBand:
    """One country's entry on the Fig. 3 world map."""

    country: str
    continent: Continent
    sample_count: int
    median_rtt_ms: float
    band: str


@dataclass(frozen=True)
class ContinentDistribution:
    """One continent's nearest-DC latency distribution (Fig. 4)."""

    continent: Continent
    sample_count: int
    median_rtt_ms: float
    p90_rtt_ms: float
    below_mtp: float
    below_hpl: float
    below_hrt: float


def country_latency_bands(
    dataset: MeasurementDataset,
    countries,
    platform: str = "speedchecker",
    protocol: Protocol = Protocol.TCP,
    min_samples: int = 8,
) -> List[CountryBand]:
    """Median nearest-DC RTT per country with its Fig. 3 latency band.

    Countries with fewer than ``min_samples`` nearest-DC samples are
    excluded (the paper required at least 100 probes per country).
    """
    grouped = nearest_samples_by_country(dataset, platform, protocol)
    bands: List[CountryBand] = []
    for iso, samples in sorted(grouped.items()):
        if len(samples) < min_samples:
            continue
        med = median(samples)
        bands.append(
            CountryBand(
                country=iso,
                continent=countries.get(iso).continent,
                sample_count=len(samples),
                median_rtt_ms=med,
                band=band_label(med),
            )
        )
    return bands


def continent_distributions(
    dataset: MeasurementDataset,
    platform: str = "speedchecker",
    protocol: Protocol = Protocol.TCP,
) -> Dict[Continent, ContinentDistribution]:
    """Fig. 4: nearest-DC RTT distribution per continent vs thresholds."""
    grouped = nearest_samples_by_continent(dataset, platform, protocol)
    result: Dict[Continent, ContinentDistribution] = {}
    for continent, samples in grouped.items():
        values = np.asarray(samples, dtype=float)
        result[continent] = ContinentDistribution(
            continent=continent,
            sample_count=int(values.size),
            median_rtt_ms=float(np.median(values)),
            p90_rtt_ms=float(np.percentile(values, 90)),
            below_mtp=fraction_below(values, MTP_MS),
            below_hpl=fraction_below(values, HPL_MS),
            below_hrt=fraction_below(values, HRT_MS),
        )
    return result


def threshold_compliance(
    bands: List[CountryBand],
) -> Tuple[int, int, int, int]:
    """(total, under MTP, under HPL, under HRT) country counts at the
    median -- the paper's section 4.1 takeaway (96/120 under HPL etc.)."""
    total = len(bands)
    mtp = sum(1 for band in bands if band.median_rtt_ms < MTP_MS)
    hpl = sum(1 for band in bands if band.median_rtt_ms < HPL_MS)
    hrt = sum(1 for band in bands if band.median_rtt_ms < HRT_MS)
    return total, mtp, hpl, hrt
