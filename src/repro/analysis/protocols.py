"""ICMP vs TCP latency comparison (paper section 3.3 and Fig. 15).

The paper compares end-to-end latencies per <country, datacenter> pair:
TCP from pings, ICMP from the destination hop of traceroutes (for
Speedchecker).  Medians per pair are summarized per continent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.analysis.stats import BoxStats
from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset, Protocol
from repro.resolve.pipeline import ResolvedTrace

PairKey = Tuple[str, str, str]  # (country, provider_code, region_id)


@dataclass(frozen=True)
class ProtocolComparison:
    """Per-continent TCP vs ICMP summary (Fig. 15)."""

    continent: Continent
    pair_count: int
    tcp: BoxStats
    icmp: BoxStats
    #: Median of per-pair relative differences (icmp - tcp) / tcp.
    median_relative_gap: float


def protocol_comparison(
    dataset: MeasurementDataset,
    traces: Iterable[ResolvedTrace],
    platform: str = "speedchecker",
    min_samples_per_pair: int = 4,
) -> Dict[Continent, ProtocolComparison]:
    """Fig. 15: per-pair median latencies over TCP vs ICMP by continent.

    Within each <country, datacenter> pair, the two protocols are
    compared over the *same set of probes* (those with measurements on
    both sides), so the comparison isolates protocol handling rather
    than probe-mix differences -- important at small fleet scales.
    """
    tcp_by_probe: Dict[PairKey, Dict[str, List[float]]] = {}
    continents: Dict[PairKey, Continent] = {}
    for ping in dataset.pings(platform=platform, protocol=Protocol.TCP):
        meta = ping.meta
        key = (meta.country, meta.provider_code, meta.region_id)
        tcp_by_probe.setdefault(key, {}).setdefault(meta.probe_id, []).extend(
            ping.samples
        )
        continents[key] = meta.continent

    icmp_by_probe: Dict[PairKey, Dict[str, List[float]]] = {}
    for trace in traces:
        meta = trace.meta
        if meta.platform != platform:
            continue
        if trace.measurement.protocol is not Protocol.ICMP:
            continue
        rtt = trace.end_to_end_rtt_ms
        if rtt is None:
            continue
        key = (meta.country, meta.provider_code, meta.region_id)
        icmp_by_probe.setdefault(key, {}).setdefault(meta.probe_id, []).append(
            rtt
        )
        continents[key] = meta.continent

    tcp_samples: Dict[PairKey, List[float]] = {}
    icmp_samples: Dict[PairKey, List[float]] = {}
    for key in set(tcp_by_probe) & set(icmp_by_probe):
        shared_probes = set(tcp_by_probe[key]) & set(icmp_by_probe[key])
        if not shared_probes:
            continue
        tcp_samples[key] = [
            sample
            for probe_id in shared_probes
            for sample in tcp_by_probe[key][probe_id]
        ]
        icmp_samples[key] = [
            sample
            for probe_id in shared_probes
            for sample in icmp_by_probe[key][probe_id]
        ]

    per_continent: Dict[Continent, Tuple[List[float], List[float], List[float]]] = {}
    for key in set(tcp_samples) & set(icmp_samples):
        tcp = tcp_samples[key]
        icmp = icmp_samples[key]
        if len(tcp) < min_samples_per_pair or len(icmp) < min_samples_per_pair:
            continue
        tcp_median = float(np.median(tcp))
        icmp_median = float(np.median(icmp))
        continent = continents[key]
        bucket = per_continent.setdefault(continent, ([], [], []))
        bucket[0].append(tcp_median)
        bucket[1].append(icmp_median)
        bucket[2].append((icmp_median - tcp_median) / tcp_median)

    result: Dict[Continent, ProtocolComparison] = {}
    for continent, (tcp_medians, icmp_medians, gaps) in per_continent.items():
        if not tcp_medians:
            continue
        result[continent] = ProtocolComparison(
            continent=continent,
            pair_count=len(tcp_medians),
            tcp=BoxStats.from_samples(tcp_medians),
            icmp=BoxStats.from_samples(icmp_medians),
            median_relative_gap=float(np.median(gaps)),
        )
    return result
