"""QoE latency thresholds used throughout the paper (section 2.1)."""

from __future__ import annotations

#: Motion-to-Photon: strict bound for immersive AR/VR applications.
MTP_MS = 20.0

#: Human Perceivable Latency: where users start noticing lag
#: (cloud gaming etc.).
HPL_MS = 100.0

#: Human Reaction Time: bound for human-controlled remote tasks.
HRT_MS = 250.0

#: Latency bands of the paper's Fig. 3 world map, as (upper bound, label).
FIG3_BANDS = (
    (30.0, "<30 ms"),
    (60.0, "30-60 ms"),
    (100.0, "60-100 ms"),
    (250.0, "100-250 ms"),
    (float("inf"), ">250 ms"),
)


def band_label(median_rtt_ms: float) -> str:
    """The Fig. 3 color band for a country's median RTT."""
    if median_rtt_ms < 0:
        raise ValueError(f"median RTT must be non-negative, got {median_rtt_ms}")
    for upper, label in FIG3_BANDS:
        if median_rtt_ms < upper:
            return label
    raise AssertionError("unreachable")  # pragma: no cover
