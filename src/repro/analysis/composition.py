"""Dataset composition (paper section 3.3).

The paper characterises its collected dataset: ~50% of data points from
Europe, ~20% from Asia, ~10% from North America, Africa and South America
with similar overall contributions where intra-continental measurements
take the larger share over inter-continental ones (~70/30).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset


@dataclass(frozen=True)
class CompositionReport:
    """Where the dataset's samples come from."""

    total_samples: int
    #: Share of ping samples per probe continent.
    continent_share: Dict[Continent, float]
    #: For continents that also measure abroad: intra-continental share.
    intra_share: Dict[Continent, float]


def dataset_composition(
    dataset: MeasurementDataset, platform: str = "speedchecker"
) -> CompositionReport:
    """Sample-count composition of a campaign dataset."""
    per_continent: Dict[Continent, int] = {}
    intra: Dict[Continent, int] = {}
    inter: Dict[Continent, int] = {}
    total = 0
    for ping in dataset.pings(platform=platform):
        count = len(ping.samples)
        continent = ping.meta.continent
        per_continent[continent] = per_continent.get(continent, 0) + count
        if ping.meta.region_continent is continent:
            intra[continent] = intra.get(continent, 0) + count
        else:
            inter[continent] = inter.get(continent, 0) + count
        total += count
    if total == 0:
        raise ValueError("dataset has no ping samples for the platform")
    continent_share = {
        continent: count / total for continent, count in per_continent.items()
    }
    intra_share = {}
    for continent in per_continent:
        cross = inter.get(continent, 0)
        home = intra.get(continent, 0)
        if cross:
            intra_share[continent] = home / (home + cross)
    return CompositionReport(
        total_samples=total,
        continent_share=continent_share,
        intra_share=intra_share,
    )
