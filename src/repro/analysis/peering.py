"""ISP-cloud interconnection analysis (paper section 6; Figs. 10, 12, 13,
17, 18).

Paths are classified from resolved traceroutes using the paper's
methodology (section 6.1): IXP hops are identified and removed from the
AS-level topology; paths where the serving ISP and the cloud network are
adjacent are *direct* (flagged ``1 IXP`` when the session visibly crosses
an exchange fabric); one intermediate AS indicates *private* (carrier)
peering; two or more indicate the *public Internet*.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.stats import BoxStats
from repro.cloud.providers import PROVIDERS, network_operator
from repro.resolve.pipeline import ResolvedTrace

#: Classification labels, matching the paper's figure legends.
DIRECT = "direct"
ONE_IXP = "1 IXP"
ONE_AS = "1 AS"
TWO_PLUS_AS = "2+ AS"
CATEGORIES = (DIRECT, ONE_AS, TWO_PLUS_AS, ONE_IXP)

#: Provider networks shown in the peering figures (LTSL rides AMZN).
PEERING_PROVIDERS = tuple(
    provider.code for provider in PROVIDERS if provider.owns_network
)


def provider_network_asns() -> Dict[str, int]:
    """Provider code -> cloud network ASN for all network operators."""
    return {
        provider.code: provider.asn
        for provider in PROVIDERS
        if provider.owns_network
    }


def classify_trace(trace: ResolvedTrace) -> Optional[str]:
    """Interconnect category of one resolved traceroute, or ``None``
    when the path cannot be classified (did not reach, ends missing)."""
    network = network_operator(trace.meta.provider_code)
    intermediates = trace.intermediate_asns(trace.meta.isp_asn, network.asn)
    if intermediates is None:
        return None
    if len(intermediates) == 0:
        if trace.ixp_after_index:
            return ONE_IXP
        return DIRECT
    if len(intermediates) == 1:
        return ONE_AS
    return TWO_PLUS_AS


@dataclass(frozen=True)
class ProviderBreakdown:
    """Fig. 10 row: interconnect shares for one provider network."""

    provider_code: str
    path_count: int
    #: Shares over {direct, 1 AS, 2+ AS}; IXP-visible direct paths are
    #: folded into ``direct`` as in Fig. 10.
    direct_share: float
    one_as_share: float
    two_plus_share: float


def provider_breakdowns(
    traces: Iterable[ResolvedTrace],
    min_paths: int = 10,
) -> List[ProviderBreakdown]:
    """Fig. 10: AS-level interconnect mix per provider network."""
    counts: Dict[str, Counter] = {}
    for trace in traces:
        category = classify_trace(trace)
        if category is None:
            continue
        network = network_operator(trace.meta.provider_code).code
        counts.setdefault(network, Counter())[category] += 1
    breakdowns: List[ProviderBreakdown] = []
    for code in PEERING_PROVIDERS:
        counter = counts.get(code)
        if counter is None:
            continue
        total = sum(counter.values())
        if total < min_paths:
            continue
        direct = counter[DIRECT] + counter[ONE_IXP]
        breakdowns.append(
            ProviderBreakdown(
                provider_code=code,
                path_count=total,
                direct_share=direct / total,
                one_as_share=counter[ONE_AS] / total,
                two_plus_share=counter[TWO_PLUS_AS] / total,
            )
        )
    return breakdowns


@dataclass(frozen=True)
class MatrixCell:
    """One <ISP, provider> cell of Figs. 12a/13a/17a/18a."""

    isp_asn: int
    isp_name: str
    provider_code: str
    path_count: int
    dominant_category: str
    dominant_share: float


def isp_provider_matrix(
    traces: Iterable[ResolvedTrace],
    source_country: str,
    registry,
    top_isps: int = 5,
    min_paths: int = 3,
) -> List[MatrixCell]:
    """The per-country peering matrix: top ISPs x provider networks.

    ISPs are ranked by recorded measurement volume, as in the paper
    ("top-5 ISPs ordered by number of recorded measurements").
    """
    by_isp: Dict[int, List[ResolvedTrace]] = {}
    for trace in traces:
        if trace.meta.country != source_country:
            continue
        by_isp.setdefault(trace.meta.isp_asn, []).append(trace)
    ranked = sorted(by_isp, key=lambda asn: len(by_isp[asn]), reverse=True)
    cells: List[MatrixCell] = []
    for isp_asn in ranked[:top_isps]:
        isp_name = registry.get(isp_asn).name if isp_asn in registry else str(isp_asn)
        per_provider: Dict[str, Counter] = {}
        for trace in by_isp[isp_asn]:
            category = classify_trace(trace)
            if category is None:
                continue
            network = network_operator(trace.meta.provider_code).code
            per_provider.setdefault(network, Counter())[category] += 1
        for provider_code, counter in sorted(per_provider.items()):
            total = sum(counter.values())
            if total < min_paths:
                continue
            category, count = counter.most_common(1)[0]
            cells.append(
                MatrixCell(
                    isp_asn=isp_asn,
                    isp_name=isp_name,
                    provider_code=provider_code,
                    path_count=total,
                    dominant_category=category,
                    dominant_share=count / total,
                )
            )
    return cells


@dataclass(frozen=True)
class InterconnectLatency:
    """Fig. 12b/13b entry: latency under direct vs transited peering."""

    provider_code: str
    direct: Optional[BoxStats]
    intermediate: Optional[BoxStats]


def latency_by_interconnect(
    traces: Iterable[ResolvedTrace],
    min_measurements: int = 20,
) -> List[InterconnectLatency]:
    """Latency distributions per provider, direct vs intermediate-AS.

    Uses traceroute end-to-end RTTs (the paper relies solely on
    traceroute latencies for the peering analysis).  Groups below
    ``min_measurements`` are omitted, mirroring the paper's >=100 filter
    at full fleet scale.
    """
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for trace in traces:
        category = classify_trace(trace)
        if category is None:
            continue
        rtt = trace.end_to_end_rtt_ms
        if rtt is None:
            continue
        group = "direct" if category in (DIRECT, ONE_IXP) else "intermediate"
        network = network_operator(trace.meta.provider_code).code
        grouped.setdefault((network, group), []).append(rtt)
    results: List[InterconnectLatency] = []
    for code in PEERING_PROVIDERS:
        direct_values = grouped.get((code, "direct"), [])
        transit_values = grouped.get((code, "intermediate"), [])
        direct = (
            BoxStats.from_samples(direct_values)
            if len(direct_values) >= min_measurements
            else None
        )
        intermediate = (
            BoxStats.from_samples(transit_values)
            if len(transit_values) >= min_measurements
            else None
        )
        if direct is None and intermediate is None:
            continue
        results.append(
            InterconnectLatency(
                provider_code=code, direct=direct, intermediate=intermediate
            )
        )
    return results
