"""The paper's analyses: latency, platform comparison, last mile, peering.

Submodules map to the paper's sections:

- :mod:`repro.analysis.stats`, :mod:`repro.analysis.thresholds` -- the
  statistical primitives and QoE thresholds (sections 2.1 and 3.3);
- :mod:`repro.analysis.nearest`, :mod:`repro.analysis.bands` -- nearest
  datacenter estimation and latency banding (section 4.1, Figs. 3/4);
- :mod:`repro.analysis.compare` -- Speedchecker vs Atlas (section 4.2,
  Figs. 5/16);
- :mod:`repro.analysis.intercontinental` -- section 4.3, Fig. 6;
- :mod:`repro.analysis.lastmile` -- section 5, Figs. 7-9/19;
- :mod:`repro.analysis.peering`, :mod:`repro.analysis.pervasiveness`,
  :mod:`repro.analysis.ingress` -- section 6, Figs. 10-13/17/18;
- :mod:`repro.analysis.protocols` -- appendix A.2, Fig. 15;
- :mod:`repro.analysis.density`, :mod:`repro.analysis.composition` --
  appendix A.1 / section 3.2;
- :mod:`repro.analysis.flattening`, :mod:`repro.analysis.georouting` --
  background metrics and the deferred GeoIP assessment.
"""

from repro.analysis.stats import (
    BoxStats,
    cdf_points,
    coefficient_of_variation,
    fraction_below,
    median,
    percentile,
    required_sample_size,
)
from repro.analysis.thresholds import HPL_MS, HRT_MS, MTP_MS, band_label

__all__ = [
    "BoxStats",
    "HPL_MS",
    "HRT_MS",
    "MTP_MS",
    "band_label",
    "cdf_points",
    "coefficient_of_variation",
    "fraction_below",
    "median",
    "percentile",
    "required_sample_size",
]
