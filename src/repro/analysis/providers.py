"""Cross-provider consistency (paper section 8 conclusion).

The paper concludes that "cloud performance is almost consistent and
comparable across providers in continents hosting developed countries".
This module quantifies that: for each continent, the median latency from
every probe to its nearest region *of each provider*, and the spread
across providers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset, Protocol


@dataclass(frozen=True)
class ProviderConsistency:
    """Cross-provider latency spread for one continent."""

    continent: Continent
    #: Median nearest-region latency per provider code.
    provider_medians: Dict[str, float]
    #: Relative spread: (max - min) / min over provider medians.
    relative_spread: float

    @property
    def provider_count(self) -> int:
        return len(self.provider_medians)


def provider_consistency(
    dataset: MeasurementDataset,
    platform: str = "speedchecker",
    protocol: Protocol = Protocol.TCP,
    min_samples: int = 20,
) -> Dict[Continent, ProviderConsistency]:
    """Per-continent, per-provider nearest-region latency medians.

    For every (probe, provider) the nearest region is the one with the
    lowest mean latency among that provider's measured regions in the
    probe's continent; medians aggregate per (continent, provider).
    """
    sums: Dict[Tuple[str, str, str, str], List[float]] = {}
    samples: Dict[Tuple[str, str, str, str], List[float]] = {}
    continent_of: Dict[str, Continent] = {}
    for ping in dataset.pings(platform=platform, protocol=protocol):
        meta = ping.meta
        if meta.region_continent is not meta.continent:
            continue
        key = (meta.probe_id, meta.provider_code, meta.region_id, "")
        bucket = sums.setdefault(key, [0.0, 0])
        bucket[0] += sum(ping.samples)
        bucket[1] += len(ping.samples)
        samples.setdefault(key, []).extend(ping.samples)
        continent_of[meta.probe_id] = meta.continent

    best: Dict[Tuple[str, str], Tuple[float, Tuple]] = {}
    for key, (total, count) in sums.items():
        probe_id, provider_code, _, _ = key
        mean = total / count
        current = best.get((probe_id, provider_code))
        if current is None or mean < current[0]:
            best[(probe_id, provider_code)] = (mean, key)

    grouped: Dict[Tuple[Continent, str], List[float]] = {}
    for (probe_id, provider_code), (_, key) in best.items():
        continent = continent_of[probe_id]
        grouped.setdefault((continent, provider_code), []).extend(samples[key])

    per_continent: Dict[Continent, Dict[str, float]] = {}
    for (continent, provider_code), values in grouped.items():
        if len(values) < min_samples:
            continue
        per_continent.setdefault(continent, {})[provider_code] = float(
            np.median(values)
        )

    result: Dict[Continent, ProviderConsistency] = {}
    for continent, medians in per_continent.items():
        if len(medians) < 2:
            continue
        values = list(medians.values())
        spread = (max(values) - min(values)) / min(values)
        result[continent] = ProviderConsistency(
            continent=continent,
            provider_medians=medians,
            relative_spread=spread,
        )
    return result
