"""Platform comparison: Speedchecker vs RIPE Atlas (Figs. 5 and 16).

The paper plots the distribution of latency differences between the two
platforms' nearest-DC measurements per continent.  We form differences by
random pairing of same-continent samples (Fig. 5) and -- for the
apples-to-apples variant -- by pairing samples from probes sharing the
same <city, serving ASN> towards the same datacenter (Fig. 16).
Negative differences mean Speedchecker was faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.nearest import samples_to_nearest
from repro.analysis.stats import fraction_below
from repro.geo.continents import Continent
from repro.measure.results import MeasurementDataset, Protocol


@dataclass(frozen=True)
class DifferenceDistribution:
    """Latency-difference distribution for one continent."""

    continent: Continent
    pair_count: int
    median_difference_ms: float
    #: Share of pairs where Speedchecker was faster (difference < 0).
    speedchecker_faster_share: float
    #: Percentiles of the difference distribution (5..95 step 5).
    percentiles: Tuple[float, ...]


def _paired_differences(
    speedchecker: List[float],
    atlas: List[float],
    rng: np.random.Generator,
    pairs: int,
) -> np.ndarray:
    sc = np.asarray(speedchecker, dtype=float)
    at = np.asarray(atlas, dtype=float)
    count = min(pairs, sc.size * at.size)
    sc_picks = rng.integers(0, sc.size, size=count)
    at_picks = rng.integers(0, at.size, size=count)
    return sc[sc_picks] - at[at_picks]


def platform_differences(
    dataset: MeasurementDataset,
    rng: np.random.Generator,
    protocol: Protocol = Protocol.TCP,
    pairs_per_continent: int = 20_000,
    min_samples: int = 10,
) -> Dict[Continent, DifferenceDistribution]:
    """Fig. 5: nearest-DC latency differences per continent."""
    sc_samples: Dict[Continent, List[float]] = {}
    for ping, sample in samples_to_nearest(dataset, "speedchecker", protocol):
        sc_samples.setdefault(ping.meta.continent, []).append(sample)
    atlas_samples: Dict[Continent, List[float]] = {}
    for ping, sample in samples_to_nearest(dataset, "atlas", protocol):
        atlas_samples.setdefault(ping.meta.continent, []).append(sample)

    result: Dict[Continent, DifferenceDistribution] = {}
    for continent in Continent:
        sc = sc_samples.get(continent, [])
        at = atlas_samples.get(continent, [])
        if len(sc) < min_samples or len(at) < min_samples:
            continue
        diffs = _paired_differences(sc, at, rng, pairs_per_continent)
        result[continent] = _summarize(continent, diffs)
    return result


def matched_city_asn_differences(
    dataset: MeasurementDataset,
    rng: np.random.Generator,
    protocol: Protocol = Protocol.TCP,
    pairs_per_continent: int = 20_000,
    min_samples: int = 4,
    min_groups: int = 2,
) -> Dict[Continent, DifferenceDistribution]:
    """Fig. 16: differences restricted to probes with the same
    <city, serving ASN> measuring the same datacenter endpoint.

    Unlike Fig. 5 this is an apples-to-apples comparison: samples are
    paired only within groups that share the probe city, the serving
    ISP's ASN, and the exact target region across both platforms.
    Continents without enough matched groups are omitted, as the paper
    omits AF/SA/OC for lack of probe intersections.
    """
    GroupKey = Tuple[Tuple[int, int], int, str, str]

    def collect(platform: str) -> Dict[GroupKey, List[float]]:
        grouped: Dict[GroupKey, List[float]] = {}
        for ping in dataset.pings(platform=platform, protocol=protocol):
            meta = ping.meta
            key = (meta.city_key, meta.isp_asn, meta.provider_code, meta.region_id)
            grouped.setdefault(key, []).extend(ping.samples)
        return grouped

    sc_groups = collect("speedchecker")
    atlas_groups = collect("atlas")
    # Continent per group key is recoverable from any member measurement;
    # rebuild a key -> continent map from the Speedchecker side.
    continent_of: Dict[GroupKey, Continent] = {}
    for ping in dataset.pings(platform="speedchecker", protocol=protocol):
        meta = ping.meta
        continent_of[
            (meta.city_key, meta.isp_asn, meta.provider_code, meta.region_id)
        ] = meta.continent

    per_continent_diffs: Dict[Continent, List[np.ndarray]] = {}
    group_counts: Dict[Continent, int] = {}
    for key in set(sc_groups) & set(atlas_groups):
        sc = sc_groups[key]
        at = atlas_groups[key]
        if len(sc) < min_samples or len(at) < min_samples:
            continue
        continent = continent_of.get(key)
        if continent is None:
            continue
        diffs = _paired_differences(
            sc, at, rng, max(50, pairs_per_continent // 100)
        )
        per_continent_diffs.setdefault(continent, []).append(diffs)
        group_counts[continent] = group_counts.get(continent, 0) + 1

    result: Dict[Continent, DifferenceDistribution] = {}
    for continent, chunks in per_continent_diffs.items():
        if group_counts[continent] < min_groups:
            continue
        diffs = np.concatenate(chunks)
        result[continent] = _summarize(continent, diffs)
    return result


def _summarize(
    continent: Continent, diffs: np.ndarray
) -> DifferenceDistribution:
    return DifferenceDistribution(
        continent=continent,
        pair_count=int(diffs.size),
        median_difference_ms=float(np.median(diffs)),
        speedchecker_faster_share=fraction_below(diffs, 0.0),
        percentiles=tuple(
            float(np.percentile(diffs, q)) for q in range(5, 100, 5)
        ),
    )
