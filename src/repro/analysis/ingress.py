"""WAN ingress locality (paper section 6.2, closing observation).

The paper observes -- echoing Arnold et al. -- that privately
interconnected paths can ingress the cloud WAN either close to the
vantage point or close to the server: direct-peered traffic enters the
provider's network near the user and rides the WAN for most of the
distance, while public-transit traffic only reaches provider routers next
to the datacenter.  This module measures ingress depth from resolved
traceroutes: the relative position of the first provider-owned hop along
the responding hop sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analysis.peering import DIRECT, ONE_IXP, classify_trace
from repro.cloud.providers import network_operator
from repro.resolve.pipeline import ResolvedTrace


@dataclass(frozen=True)
class IngressStats:
    """Ingress-depth distribution for one interconnect group."""

    group: str
    trace_count: int
    #: Mean relative position (0 = at the user, 1 = at the datacenter)
    #: of the first provider-owned hop.
    mean_ingress_depth: float
    median_ingress_depth: float


def ingress_depth(trace: ResolvedTrace, cloud_asn: int) -> Optional[float]:
    """Relative position of the first provider-owned hop, or ``None``.

    Computed over responding hops only; a value near 0 means the traffic
    entered the provider's network right after the serving ISP.
    """
    responded = [hop for hop in trace.hops if hop.responded]
    if len(responded) < 2:
        return None
    for index, hop in enumerate(responded):
        if hop.asn == cloud_asn:
            return index / (len(responded) - 1)
    return None


def ingress_by_interconnect(
    traces: Iterable[ResolvedTrace],
    min_traces: int = 10,
) -> Dict[str, IngressStats]:
    """Ingress depth grouped by interconnect class (direct vs transited).

    Reproduces the section-6.2 observation: direct peering ingresses the
    WAN near the user (low depth); transited paths ingress near the
    datacenter (high depth).
    """
    groups: Dict[str, List[float]] = {"direct": [], "intermediate": []}
    for trace in traces:
        category = classify_trace(trace)
        if category is None:
            continue
        network = network_operator(trace.meta.provider_code)
        depth = ingress_depth(trace, network.asn)
        if depth is None:
            continue
        group = "direct" if category in (DIRECT, ONE_IXP) else "intermediate"
        groups[group].append(depth)
    result: Dict[str, IngressStats] = {}
    for group, depths in groups.items():
        if len(depths) < min_traces:
            continue
        values = np.asarray(depths)
        result[group] = IngressStats(
            group=group,
            trace_count=int(values.size),
            mean_ingress_depth=float(values.mean()),
            median_ingress_depth=float(np.median(values)),
        )
    return result
