"""Plain-text rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A fixed-width text table with right-aligned numeric columns."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_percent(value: float, digits: int = 1) -> str:
    """A fraction as a percent string (0.512 -> '51.2%')."""
    return f"{100.0 * value:.{digits}f}%"


def format_ms(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f} ms"


def cdf_sparkline(samples: Sequence[float], bins: int = 20) -> str:
    """A coarse text rendering of a distribution (for terminal output)."""
    values = sorted(float(v) for v in samples)
    if not values:
        return "(no samples)"
    blocks = " .:-=+*#%@"
    lo, hi = values[0], values[-1]
    if hi <= lo:
        return blocks[-1] * bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - lo) / (hi - lo) * bins))
        counts[index] += 1
    peak = max(counts)
    return "".join(
        blocks[min(len(blocks) - 1, int(9 * count / peak))] for count in counts
    )
