"""Internet "flattening" metrics (paper section 2.1 background).

The background literature the paper builds on (Arnold et al., Chiu et
al.) describes the flattening of the traditionally hierarchical Internet:
content/cloud traffic increasingly bypasses the Tier-1 core via direct
and private interconnects.  This module quantifies flattening over the
synthetic topology:

- **AS path length distribution** towards each provider network;
- **Tier-1 bypass share**: fraction of ISP-to-cloud paths that never
  touch a Tier-1 backbone;
- **one-hop share**: the "are we one hop away from a better Internet?"
  metric -- paths where the serving ISP connects straight to the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.geo.continents import Continent
from repro.net.asn import ASKind


@dataclass(frozen=True)
class FlatteningReport:
    """Flattening metrics for one provider network."""

    provider_code: str
    path_count: int
    mean_as_path_length: float
    #: Share of paths with no intermediate AS at all.
    one_hop_share: float
    #: Share of paths that avoid every Tier-1 backbone.
    tier1_bypass_share: float


def flattening_report(
    world, provider_code: str, continents: Optional[List[Continent]] = None
) -> FlatteningReport:
    """Flattening metrics from every access ISP towards one provider."""
    topology = world.topology
    registry = topology.registry
    tier1 = set(topology.tier1_asns)
    lengths: List[int] = []
    one_hop = 0
    bypass = 0
    wanted = set(continents) if continents is not None else None
    for isp in registry.of_kind(ASKind.ACCESS):
        if wanted is not None and isp.continent not in wanted:
            continue
        path = topology.as_path(isp.asn, provider_code, isp.continent)
        if path is None:
            continue
        lengths.append(len(path))
        intermediates = path[1:-1]
        if not intermediates:
            one_hop += 1
        if not (set(intermediates) & tier1):
            bypass += 1
    if not lengths:
        raise ValueError(
            f"no reachable ISPs for provider {provider_code!r} in {continents}"
        )
    count = len(lengths)
    return FlatteningReport(
        provider_code=topology.network_code(provider_code),
        path_count=count,
        mean_as_path_length=float(np.mean(lengths)),
        one_hop_share=one_hop / count,
        tier1_bypass_share=bypass / count,
    )


def flatness_by_provider(world) -> Dict[str, FlatteningReport]:
    """Flattening metrics for every provider network."""
    reports: Dict[str, FlatteningReport] = {}
    for provider in world.providers:
        if not provider.owns_network:
            continue
        reports[provider.code] = flattening_report(world, provider.code)
    return reports
