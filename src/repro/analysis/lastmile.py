"""Last-mile analysis (paper section 5; Figs. 7, 8, 9, 19).

All quantities are inferred from *resolved traceroutes*, exactly as in
the paper: the last mile is the segment between the probe and the first
hop inside the serving ISP's AS, probes are classified home/cell from the
privateness of their first hop, and stability is the per-probe
coefficient of variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.nearest import NearestMap
from repro.analysis.stats import BoxStats, coefficient_of_variation
from repro.geo.continents import Continent
from repro.resolve.pipeline import ResolvedTrace

#: Category labels matching the paper's Fig. 7 legend.
HOME_USR_ISP = "SC home (USR-ISP)"
HOME_RTR_ISP = "SC home (RTR-ISP)"
CELL = "SC cell"
ATLAS = "Atlas"

#: Representative countries of the paper's Fig. 9, two per continent
#: (AF, AS, EU, NA, SA in that order).
FIG9_COUNTRIES = ("ZA", "MA", "JP", "IR", "GB", "UA", "US", "MX", "BR", "AR")


@dataclass(frozen=True)
class LastMileSample:
    """One extracted last-mile observation."""

    probe_id: str
    platform: str
    country: str
    continent: Continent
    category: str
    latency_ms: float
    share_of_total: Optional[float]


def extract_last_mile(
    traces: Iterable[ResolvedTrace],
) -> List[LastMileSample]:
    """Last-mile observations from resolved traceroutes.

    Home probes contribute both a USR-ISP and an RTR-ISP observation;
    cell probes one; Atlas (wired) probes contribute to the Atlas series.
    Traces whose first hop could not be classified are skipped, as are
    those without a resolvable ISP hop.
    """
    samples: List[LastMileSample] = []
    for trace in traces:
        meta = trace.meta
        usr_isp = trace.usr_isp_rtt_ms
        if usr_isp is None:
            continue
        total = trace.end_to_end_rtt_ms
        share = (usr_isp / total) if total else None

        if meta.platform == "atlas":
            samples.append(
                LastMileSample(
                    probe_id=meta.probe_id,
                    platform=meta.platform,
                    country=meta.country,
                    continent=meta.continent,
                    category=ATLAS,
                    latency_ms=usr_isp,
                    share_of_total=share,
                )
            )
            continue
        if trace.inferred_access == "home":
            samples.append(
                LastMileSample(
                    probe_id=meta.probe_id,
                    platform=meta.platform,
                    country=meta.country,
                    continent=meta.continent,
                    category=HOME_USR_ISP,
                    latency_ms=usr_isp,
                    share_of_total=share,
                )
            )
            rtr_isp = trace.rtr_isp_rtt_ms
            if rtr_isp is not None:
                samples.append(
                    LastMileSample(
                        probe_id=meta.probe_id,
                        platform=meta.platform,
                        country=meta.country,
                        continent=meta.continent,
                        category=HOME_RTR_ISP,
                        latency_ms=rtr_isp,
                        share_of_total=(rtr_isp / total) if total else None,
                    )
                )
        elif trace.inferred_access == "cell":
            samples.append(
                LastMileSample(
                    probe_id=meta.probe_id,
                    platform=meta.platform,
                    country=meta.country,
                    continent=meta.continent,
                    category=CELL,
                    latency_ms=usr_isp,
                    share_of_total=share,
                )
            )
    return samples


def share_by_continent(
    samples: Sequence[LastMileSample],
    categories: Sequence[str] = (HOME_USR_ISP, CELL, HOME_RTR_ISP),
    min_samples: int = 5,
) -> Dict[Tuple[Continent, str], BoxStats]:
    """Fig. 7a / Fig. 19: last-mile share of total latency (percent)."""
    grouped: Dict[Tuple[Continent, str], List[float]] = {}
    for sample in samples:
        if sample.category not in categories:
            continue
        if sample.share_of_total is None:
            continue
        key = (sample.continent, sample.category)
        grouped.setdefault(key, []).append(100.0 * sample.share_of_total)
    return {
        key: BoxStats.from_samples(values)
        for key, values in grouped.items()
        if len(values) >= min_samples
    }


def absolute_by_continent(
    samples: Sequence[LastMileSample],
    categories: Sequence[str] = (HOME_USR_ISP, CELL, HOME_RTR_ISP, ATLAS),
    min_samples: int = 5,
) -> Dict[Tuple[Continent, str], BoxStats]:
    """Fig. 7b: absolute last-mile latency per continent and category."""
    grouped: Dict[Tuple[Continent, str], List[float]] = {}
    for sample in samples:
        if sample.category not in categories:
            continue
        key = (sample.continent, sample.category)
        grouped.setdefault(key, []).append(sample.latency_ms)
    return {
        key: BoxStats.from_samples(values)
        for key, values in grouped.items()
        if len(values) >= min_samples
    }


def per_probe_cv(
    samples: Sequence[LastMileSample],
    categories: Sequence[str] = (HOME_USR_ISP, CELL),
    min_samples: int = 5,
) -> List[Tuple[LastMileSample, float]]:
    """Per-probe last-mile Cv (one representative sample, Cv) pairs.

    Mirrors the paper's per-probe computation: all last-mile latencies of
    one probe (within a category) form the sample set; probes with fewer
    than ``min_samples`` observations are dropped.
    """
    grouped: Dict[Tuple[str, str], List[LastMileSample]] = {}
    for sample in samples:
        if sample.category not in categories:
            continue
        grouped.setdefault((sample.probe_id, sample.category), []).append(sample)
    results: List[Tuple[LastMileSample, float]] = []
    for (_, _), probe_samples in grouped.items():
        if len(probe_samples) < min_samples:
            continue
        values = [sample.latency_ms for sample in probe_samples]
        results.append(
            (probe_samples[0], coefficient_of_variation(values))
        )
    return results


def cv_by_continent(
    samples: Sequence[LastMileSample],
    min_samples: int = 5,
    min_probes: int = 3,
) -> Dict[Tuple[Continent, str], BoxStats]:
    """Fig. 8: distribution of per-probe last-mile Cv per continent."""
    per_probe = per_probe_cv(samples, min_samples=min_samples)
    grouped: Dict[Tuple[Continent, str], List[float]] = {}
    for sample, cv in per_probe:
        grouped.setdefault((sample.continent, sample.category), []).append(cv)
    return {
        key: BoxStats.from_samples(values)
        for key, values in grouped.items()
        if len(values) >= min_probes
    }


def cv_by_country(
    samples: Sequence[LastMileSample],
    countries: Sequence[str] = FIG9_COUNTRIES,
    min_samples: int = 5,
    min_probes: int = 3,
) -> Dict[Tuple[str, str], BoxStats]:
    """Fig. 9: per-probe last-mile Cv for representative countries."""
    wanted = set(countries)
    per_probe = per_probe_cv(samples, min_samples=min_samples)
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for sample, cv in per_probe:
        if sample.country not in wanted:
            continue
        grouped.setdefault((sample.country, sample.category), []).append(cv)
    return {
        key: BoxStats.from_samples(values)
        for key, values in grouped.items()
        if len(values) >= min_probes
    }


def filter_to_nearest(
    traces: Iterable[ResolvedTrace], nearest: NearestMap
) -> List[ResolvedTrace]:
    """Traces restricted to each probe's nearest datacenter (Fig. 19)."""
    kept: List[ResolvedTrace] = []
    for trace in traces:
        meta = trace.meta
        if nearest.region_for(meta.probe_id) == (
            meta.provider_code,
            meta.region_id,
        ):
            kept.append(trace)
    return kept
