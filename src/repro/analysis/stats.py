"""Statistical primitives used by the analyses.

The paper's headline metric is the *median* RTT (robust to probe
outliers); last-mile stability uses the coefficient of variation; and the
campaign sizing uses the standard proportion-estimate sample-size formula
(section 3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the paper's boxplots."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range -- the "box height" the paper reads as
        latency variation (Fig. 13b)."""
        return self.q3 - self.q1

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize an empty sample set")
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        return cls(
            count=int(values.size),
            minimum=float(values.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(values.max()),
        )

    def render(self) -> str:
        return (
            f"n={self.count} min={self.minimum:.1f} q1={self.q1:.1f} "
            f"med={self.median:.1f} q3={self.q3:.1f} max={self.maximum:.1f}"
        )


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of a sample set."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot take a percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be within [0, 100], got {q}")
    return float(np.percentile(values, q))


def median(samples: Sequence[float]) -> float:
    """Median of a sample set."""
    return percentile(samples, 50.0)


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """Cv = sigma / mu, the paper's last-mile stability metric (Fig. 8).

    Uses the population standard deviation, as is conventional for Cv.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size < 2:
        raise ValueError("Cv needs at least two samples")
    mean = float(values.mean())
    if mean <= 0:
        raise ValueError(f"Cv requires a positive mean, got {mean}")
    return float(values.std()) / mean


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Share of samples strictly below ``threshold``."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot compute a fraction of an empty sample set")
    return float((values < threshold).mean())


def required_sample_size(
    confidence: float = 0.95,
    margin_of_error: float = 0.02,
    population_proportion: float = 0.5,
) -> int:
    """Minimum sample size n = z^2 p (1-p) / e^2 (paper section 3.3).

    With the paper's parameters (95% confidence, 2% margin, worst-case
    p = 0.5) this returns 2401, matching the ">2400 measurements per
    country" requirement.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if not 0.0 < margin_of_error < 1.0:
        raise ValueError(
            f"margin of error must be in (0, 1), got {margin_of_error}"
        )
    if not 0.0 < population_proportion < 1.0:
        raise ValueError(
            f"population proportion must be in (0, 1), got {population_proportion}"
        )
    z = _z_score(confidence)
    n = (z**2) * population_proportion * (1.0 - population_proportion) / (
        margin_of_error**2
    )
    return math.ceil(n)


def _z_score(confidence: float) -> float:
    """Two-sided z-score via the inverse error function."""
    from scipy.special import erfinv  # local import: scipy is heavy

    return float(math.sqrt(2.0) * erfinv(confidence))


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov distance: sup |ECDF_a - ECDF_b|.

    Used by the batch-engine equivalence tests to bound how far the
    vectorized sampling path drifts from the scalar path.
    """
    xs = np.asarray(sorted(float(v) for v in a), dtype=np.float64)
    ys = np.asarray(sorted(float(v) for v in b), dtype=np.float64)
    if xs.size == 0 or ys.size == 0:
        raise ValueError("cannot compute a KS distance of an empty sample set")
    grid = np.concatenate([xs, ys])
    cdf_a = np.searchsorted(xs, grid, side="right") / xs.size
    cdf_b = np.searchsorted(ys, grid, side="right") / ys.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def cdf_points(samples: Sequence[float]) -> List[tuple]:
    """(value, cumulative fraction) pairs for an empirical CDF."""
    values = sorted(float(v) for v in samples)
    if not values:
        raise ValueError("cannot build a CDF of an empty sample set")
    n = len(values)
    return [(value, (index + 1) / n) for index, value in enumerate(values)]
