"""Noisy IP geolocation (the GeoIPLookup equivalent).

Commercial geolocation databases are known to be inaccurate, especially
for router infrastructure; the paper explicitly refrains from
geographical routing analyses because of this (section 3.3).  The
synthetic database reproduces that property: lookups return the true
position displaced by a heavy-tailed error, and a configurable share of
entries is wildly wrong (registered-office locations etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.geo.coords import GeoPoint, jitter_point


@dataclass(frozen=True)
class GeoIPResult:
    """A geolocation answer with the database's (unwarranted) confidence."""

    position: GeoPoint
    claimed_accuracy_km: float


class GeoIPDatabase:
    """A deliberately-imperfect IP geolocation service."""

    def __init__(
        self,
        rng: np.random.Generator,
        typical_error_km: float = 80.0,
        gross_error_share: float = 0.08,
        gross_error_km: float = 4000.0,
    ):
        if typical_error_km < 0 or gross_error_km < 0:
            raise ValueError("error radii must be non-negative")
        if not 0.0 <= gross_error_share <= 1.0:
            raise ValueError("gross error share must be within [0, 1]")
        self._rng = rng
        self._typical_error_km = typical_error_km
        self._gross_error_share = gross_error_share
        self._gross_error_km = gross_error_km
        self._cache: Dict[int, GeoIPResult] = {}

    def locate(self, address: int, true_position: GeoPoint) -> GeoIPResult:
        """Geolocate an address whose true position the simulator knows.

        Answers are stable per address (the database does not change
        between queries within a study).
        """
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        if self._rng.random() < self._gross_error_share:
            radius = self._gross_error_km
        else:
            radius = self._typical_error_km
        result = GeoIPResult(
            position=jitter_point(true_position, radius, self._rng),
            claimed_accuracy_km=self._typical_error_km,
        )
        self._cache[address] = result
        return result
