"""Team-Cymru-style IP-to-ASN fallback service.

The paper queries the Team Cymru mapping tool for router hops PyASN
cannot resolve (section 3.3).  Our equivalent has authoritative coverage
(it is built from the full registry) but counts queries, so tests can
assert the pipeline only falls back when it must.
"""

from __future__ import annotations

from typing import Optional

from repro.net.asn import ASRegistry
from repro.net.ip import is_private_ip
from repro.resolve.pyasn import PrefixTrie


class CymruResolver:
    """Authoritative whois-style IP-to-ASN lookups with query accounting."""

    def __init__(self, registry: ASRegistry):
        self._trie = PrefixTrie()
        for prefix, asn in registry.prefix_table():
            self._trie.insert(prefix, asn)
        self._queries = 0

    @property
    def query_count(self) -> int:
        """Number of lookups served (the paper rate-limited these)."""
        return self._queries

    def lookup(self, address: int) -> Optional[int]:
        """ASN for ``address``; private space is never resolved."""
        self._queries += 1
        if is_private_ip(address):
            return None
        match = self._trie.longest_match(address)
        return None if match is None else match[0]
