"""PeeringDB-style enrichment.

The paper queries PeeringDB to enrich AS-level topologies with
organisation names, network types, and locations (section 3.3).  The
synthetic equivalent serves the same records straight from the AS
registry, with the network-type vocabulary PeeringDB uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.geo.continents import Continent
from repro.net.asn import ASKind, ASRegistry

#: PeeringDB ``info_type`` vocabulary for our AS kinds.
_NETWORK_TYPES = {
    ASKind.TIER1: "NSP",
    ASKind.TRANSIT: "NSP",
    ASKind.ACCESS: "Cable/DSL/ISP",
    ASKind.CLOUD: "Content",
}


@dataclass(frozen=True)
class PeeringDBRecord:
    """One network record, PeeringDB style."""

    asn: int
    org_name: str
    network_type: str
    country: Optional[str]
    continent: Optional[Continent]


class SyntheticPeeringDB:
    """Read-only PeeringDB over the synthetic AS registry."""

    def __init__(self, registry: ASRegistry):
        self._records: Dict[int, PeeringDBRecord] = {}
        for autonomous_system in registry:
            self._records[autonomous_system.asn] = PeeringDBRecord(
                asn=autonomous_system.asn,
                org_name=autonomous_system.name,
                network_type=_NETWORK_TYPES[autonomous_system.kind],
                country=autonomous_system.country,
                continent=autonomous_system.continent,
            )

    def __len__(self) -> int:
        return len(self._records)

    def lookup(self, asn: int) -> Optional[PeeringDBRecord]:
        return self._records.get(asn)

    def is_content_network(self, asn: int) -> bool:
        """True for cloud/content networks (PeeringDB ``Content`` type)."""
        record = self._records.get(asn)
        return record is not None and record.network_type == "Content"
