"""Longest-prefix-match IP-to-ASN resolution (the PyASN equivalent).

The paper resolves traceroute hops to ASNs with PyASN over a RouteViews
RIB snapshot (section 3.3).  This module implements the same mechanism
twice:

- :class:`PrefixArrayTable` (the default engine) holds one sorted
  integer array of masked prefix bases per prefix length and answers a
  longest match with at most one binary search per populated length --
  the pure-NumPy analogue of cidt-public-clouds' compiled graph helper.
  :meth:`PrefixArrayTable.lookup_many` resolves a whole address batch
  with one ``np.searchsorted`` per length.
- :class:`PrefixTrie` is the original binary radix trie, kept as the
  reference engine: parity tests assert both engines return identical
  matches, duplicate inserts included.

Like a real RIB snapshot, the table may be incomplete -- the loader can
drop a configurable fraction of announcements, which is what exercises
the Team Cymru fallback path.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.ip import IPv4Prefix


class _TrieNode:
    __slots__ = ("children", "asn")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.asn: Optional[int] = None


class PrefixTrie:
    """A binary radix trie mapping IPv4 prefixes to ASNs."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv4Prefix, asn: int) -> None:
        """Insert an announcement; later inserts overwrite equal prefixes."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.base >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.asn is None:
            self._size += 1
        node.asn = asn

    def longest_match(self, address: int) -> Optional[Tuple[int, int]]:
        """(asn, prefix_length) of the most specific covering prefix."""
        node = self._root
        best: Optional[Tuple[int, int]] = None
        if node.asn is not None:
            best = (node.asn, 0)
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.asn is not None:
                best = (node.asn, depth + 1)
        return best


class PrefixArrayTable:
    """Sorted-array longest-prefix-match over (prefix, ASN) announcements.

    One sorted array of masked prefix bases per populated prefix length;
    a longest match probes lengths most-specific first with a binary
    search each, and :meth:`lookup_many` vectorizes the same probe order
    over a whole address batch with ``np.searchsorted``.  Later inserts
    of an equal prefix overwrite earlier ones, matching
    :meth:`PrefixTrie.insert`.
    """

    def __init__(
        self, announcements: Iterable[Tuple[IPv4Prefix, int]] = ()
    ) -> None:
        # (length, masked base) -> asn; insertion order irrelevant, the
        # dict keeps the last insert per prefix like the trie does.
        self._pending: Dict[Tuple[int, int], int] = {}
        self._lengths: List[int] = []
        self._bases: Dict[int, np.ndarray] = {}
        self._base_lists: Dict[int, List[int]] = {}
        self._asns: Dict[int, np.ndarray] = {}
        self._dirty = False
        for prefix, asn in announcements:
            self.insert(prefix, asn)

    def __len__(self) -> int:
        self._compile()
        return sum(len(bases) for bases in self._bases.values())

    def insert(self, prefix: IPv4Prefix, asn: int) -> None:
        """Insert an announcement; later inserts overwrite equal prefixes."""
        mask = 0xFFFFFFFF ^ ((1 << (32 - prefix.length)) - 1)
        self._pending[(prefix.length, prefix.base & mask)] = asn
        self._dirty = True

    def _compile(self) -> None:
        if not self._dirty:
            return
        by_length: Dict[int, List[Tuple[int, int]]] = {}
        for (length, base), asn in self._pending.items():
            by_length.setdefault(length, []).append((base, asn))
        self._lengths = sorted(by_length, reverse=True)
        self._bases, self._base_lists, self._asns = {}, {}, {}
        for length, rows in by_length.items():
            rows.sort()
            self._bases[length] = np.asarray([r[0] for r in rows], dtype=np.int64)
            self._base_lists[length] = [r[0] for r in rows]
            self._asns[length] = np.asarray([r[1] for r in rows], dtype=np.int64)
        self._dirty = False

    def longest_match(self, address: int) -> Optional[Tuple[int, int]]:
        """(asn, prefix_length) of the most specific covering prefix."""
        self._compile()
        for length in self._lengths:
            masked = address & (0xFFFFFFFF ^ ((1 << (32 - length)) - 1))
            bases = self._base_lists[length]
            idx = bisect_right(bases, masked) - 1
            if idx >= 0 and bases[idx] == masked:
                return int(self._asns[length][idx]), length
        return None

    def match_many(
        self, addresses: "np.ndarray | Sequence[int]"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`longest_match` over an address batch.

        Returns parallel ``(asns, lengths)`` arrays with ``-1`` marking
        addresses no announcement covers.
        """
        self._compile()
        addresses = np.asarray(addresses, dtype=np.int64)
        asns = np.full(addresses.shape, -1, dtype=np.int64)
        lengths = np.full(addresses.shape, -1, dtype=np.int64)
        unresolved = np.ones(addresses.shape, dtype=bool)
        for length in self._lengths:
            if not np.any(unresolved):
                break
            mask = 0xFFFFFFFF ^ ((1 << (32 - length)) - 1)
            masked = addresses & mask
            bases = self._bases[length]
            idx = np.searchsorted(bases, masked, side="right") - 1
            hit = unresolved & (idx >= 0) & (bases[np.maximum(idx, 0)] == masked)
            asns[hit] = self._asns[length][idx[hit]]
            lengths[hit] = length
            unresolved &= ~hit
        return asns, lengths


class PyASNResolver:
    """IP-to-ASN resolver over a (possibly incomplete) RIB snapshot.

    ``engine`` picks the lookup structure: ``"array"`` (default) is the
    sorted-array table with batch lookups, ``"trie"`` the original radix
    trie kept as the parity reference.  Both see the identical
    post-coverage announcement sequence, so which addresses resolve --
    and to which ASN -- never depends on the engine.
    """

    def __init__(
        self,
        announcements: Iterable[Tuple[IPv4Prefix, int]],
        coverage: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        engine: str = "array",
    ):
        """``coverage`` < 1 drops a random share of announcements,
        simulating an incomplete RIB snapshot."""
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        if coverage < 1.0 and rng is None:
            raise ValueError("an rng is required when coverage < 1")
        if engine not in ("array", "trie"):
            raise ValueError(f"unknown resolver engine {engine!r}")
        self._table: "PrefixArrayTable | PrefixTrie"
        self._table = PrefixArrayTable() if engine == "array" else PrefixTrie()
        self._engine = engine
        self._dropped = 0
        for prefix, asn in announcements:
            if coverage < 1.0 and rng.random() >= coverage:
                self._dropped += 1
                continue
            self._table.insert(prefix, asn)

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def announcement_count(self) -> int:
        return len(self._table)

    @property
    def dropped_count(self) -> int:
        return self._dropped

    def lookup(self, address: int) -> Optional[int]:
        """ASN announcing ``address``, or ``None`` if not in the table."""
        match = self._table.longest_match(address)
        return None if match is None else match[0]

    def lookup_many(
        self, addresses: "np.ndarray | Sequence[int]"
    ) -> np.ndarray:
        """ASNs announcing each address (``-1`` = not in the table).

        One vectorized pass on the array engine; the trie engine falls
        back to per-address lookups (reference behaviour for parity
        tests).
        """
        if isinstance(self._table, PrefixArrayTable):
            return self._table.match_many(addresses)[0]
        results = np.full(len(addresses), -1, dtype=np.int64)
        for i, address in enumerate(addresses):
            match = self._table.longest_match(int(address))
            if match is not None:
                results[i] = match[0]
        return results
