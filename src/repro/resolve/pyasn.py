"""Longest-prefix-match IP-to-ASN resolution (the PyASN equivalent).

The paper resolves traceroute hops to ASNs with PyASN over a RouteViews
RIB snapshot (section 3.3).  This module implements the same mechanism: a
binary radix trie over (prefix, ASN) announcements with longest-prefix
-match lookup.  Like a real RIB snapshot, the table may be incomplete --
the loader can drop a configurable fraction of announcements, which is
what exercises the Team Cymru fallback path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.net.ip import IPv4Prefix


class _TrieNode:
    __slots__ = ("children", "asn")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.asn: Optional[int] = None


class PrefixTrie:
    """A binary radix trie mapping IPv4 prefixes to ASNs."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv4Prefix, asn: int) -> None:
        """Insert an announcement; later inserts overwrite equal prefixes."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.base >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.asn is None:
            self._size += 1
        node.asn = asn

    def longest_match(self, address: int) -> Optional[Tuple[int, int]]:
        """(asn, prefix_length) of the most specific covering prefix."""
        node = self._root
        best: Optional[Tuple[int, int]] = None
        if node.asn is not None:
            best = (node.asn, 0)
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.asn is not None:
                best = (node.asn, depth + 1)
        return best


class PyASNResolver:
    """IP-to-ASN resolver over a (possibly incomplete) RIB snapshot."""

    def __init__(
        self,
        announcements: Iterable[Tuple[IPv4Prefix, int]],
        coverage: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        """``coverage`` < 1 drops a random share of announcements,
        simulating an incomplete RIB snapshot."""
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        if coverage < 1.0 and rng is None:
            raise ValueError("an rng is required when coverage < 1")
        self._trie = PrefixTrie()
        self._dropped = 0
        for prefix, asn in announcements:
            if coverage < 1.0 and rng.random() >= coverage:
                self._dropped += 1
                continue
            self._trie.insert(prefix, asn)

    @property
    def announcement_count(self) -> int:
        return len(self._trie)

    @property
    def dropped_count(self) -> int:
        return self._dropped

    def lookup(self, address: int) -> Optional[int]:
        """ASN announcing ``address``, or ``None`` if not in the table."""
        match = self._trie.longest_match(address)
        return None if match is None else match[0]
