"""Traceroute post-processing: IP->ASN, IXP tagging, enrichment, GeoIP."""

from repro.resolve.cymru import CymruResolver
from repro.resolve.geoip import GeoIPDatabase
from repro.resolve.peeringdb import PeeringDBRecord, SyntheticPeeringDB
from repro.resolve.pipeline import ResolvedHop, ResolvedTrace, TracerouteResolver
from repro.resolve.pyasn import PrefixTrie, PyASNResolver

__all__ = [
    "CymruResolver",
    "GeoIPDatabase",
    "PeeringDBRecord",
    "PrefixTrie",
    "PyASNResolver",
    "ResolvedHop",
    "ResolvedTrace",
    "SyntheticPeeringDB",
    "TracerouteResolver",
]
