"""The traceroute-resolution pipeline (paper sections 3.3 and 6.1).

For every raw traceroute the pipeline:

1. resolves each responding hop to an ASN with the PyASN-equivalent
   longest-prefix-match table, falling back to the Cymru-style service
   for unresolved public addresses;
2. tags private-address hops (home LANs, CGN) and IXP peering-LAN hops
   (CAIDA-style dataset);
3. collapses the hop sequence into an AS-level path with IXPs and
   private hops removed, recording where IXPs appeared;
4. infers the last-mile: probes whose first hop is a private address are
   *home* (WiFi) probes; probes whose first hop is already inside the
   serving ISP are *cell* probes -- including the VPN/CGN false positives
   the paper warns about;
5. extracts the last-mile RTT segments (USR-ISP and RTR-ISP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.measure.results import TraceHop, TracerouteMeasurement
from repro.net.asn import ASRegistry
from repro.net.ip import is_private_ip
from repro.net.ixp import IXPRegistry
from repro.resolve.cymru import CymruResolver
from repro.resolve.pyasn import PyASNResolver

#: Seed of the resolver's own RIB-coverage stream when the caller does
#: not thread a generator.  Fixed (and independent of the campaign's
#: master seed) so that *which* addresses fall outside the simulated RIB
#: snapshot stays identical across runs and across campaign seeds --
#: resolution noise must never vary between otherwise-identical
#: longitudinal datasets.
DEFAULT_RESOLVER_SEED = 0


@dataclass(frozen=True)
class ResolvedHop:
    """One traceroute hop after resolution."""

    address: Optional[int]
    rtt_ms: Optional[float]
    asn: Optional[int]
    is_private: bool
    ixp_id: Optional[int]
    resolved_by: str

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass(frozen=True)
class ResolvedTrace:
    """A traceroute after the full resolution pipeline."""

    measurement: TracerouteMeasurement
    hops: Tuple[ResolvedHop, ...]
    #: AS-level path with private hops and IXPs removed, consecutive
    #: duplicates collapsed.
    as_path: Tuple[int, ...]
    #: IXP ids observed, keyed by the index in :attr:`as_path` *after*
    #: which the IXP hop appeared.
    ixp_after_index: Tuple[Tuple[int, int], ...]
    #: ``"home"`` (private first hop), ``"cell"`` (ISP first hop), or
    #: ``None`` when the first hop did not respond / resolve.
    inferred_access: Optional[str]
    #: RTT to the home router (home probes only).
    router_rtt_ms: Optional[float]
    #: RTT to the first hop inside the serving ISP's AS.
    usr_isp_rtt_ms: Optional[float]

    @property
    def meta(self):
        return self.measurement.meta

    @property
    def reached(self) -> bool:
        return self.measurement.reached

    @property
    def end_to_end_rtt_ms(self) -> Optional[float]:
        return self.measurement.end_to_end_rtt_ms

    @property
    def rtr_isp_rtt_ms(self) -> Optional[float]:
        """Wired segment of the home last mile (USR-ISP minus the air leg)."""
        if self.router_rtt_ms is None or self.usr_isp_rtt_ms is None:
            return None
        return max(0.0, self.usr_isp_rtt_ms - self.router_rtt_ms)

    def provider_hop_share(self, cloud_asn: int) -> Optional[float]:
        """Share of responding routers owned by the cloud network
        (the paper's pervasiveness metric, Fig. 11)."""
        responded = [hop for hop in self.hops if hop.responded]
        if not responded:
            return None
        owned = sum(1 for hop in responded if hop.asn == cloud_asn)
        return owned / len(responded)

    def intermediate_asns(self, isp_asn: int, cloud_asn: int) -> Optional[List[int]]:
        """ASes strictly between the serving ISP and the cloud network.

        Returns ``None`` when either end is missing from the AS path
        (unresponsive edge hops) -- such paths are excluded from peering
        classification, as in the paper.
        """
        if cloud_asn not in self.as_path:
            return None
        cloud_index = max(
            i for i, asn in enumerate(self.as_path) if asn == cloud_asn
        )
        if isp_asn in self.as_path:
            isp_index = self.as_path.index(isp_asn)
        elif self.as_path and self.as_path[0] != cloud_asn:
            # The ISP's own routers were unresponsive; treat the first
            # observed AS as the serving side (a known methodology
            # artifact the paper acknowledges).
            isp_index = 0
        else:
            return None
        if isp_index >= cloud_index:
            return []
        return list(self.as_path[isp_index + 1 : cloud_index])


class TracerouteResolver:
    """Resolves raw traceroutes using the full pipeline."""

    def __init__(
        self,
        registry: ASRegistry,
        ixps: IXPRegistry,
        rib_coverage: float = 0.97,
        rng: Optional[np.random.Generator] = None,
        seed: int = DEFAULT_RESOLVER_SEED,
    ):
        if rib_coverage < 1.0 and rng is None:
            rng = np.random.default_rng(seed)
        self._pyasn = PyASNResolver(
            registry.prefix_table(), coverage=rib_coverage, rng=rng
        )
        self._cymru = CymruResolver(registry)
        self._ixps = ixps
        self._cache: Dict[int, Tuple[Optional[int], str]] = {}

    @property
    def cymru_query_count(self) -> int:
        return self._cymru.query_count

    def _resolve_address(self, address: int) -> Tuple[Optional[int], str]:
        cached = self._cache.get(address)
        if cached is not None:
            return cached
        result: Tuple[Optional[int], str]
        asn = self._pyasn.lookup(address)
        if asn is not None:
            result = (asn, "pyasn")
        else:
            asn = self._cymru.lookup(address)
            result = (asn, "cymru") if asn is not None else (None, "none")
        self._cache[address] = result
        return result

    def resolve_many(
        self, measurements: List[TracerouteMeasurement]
    ) -> List[ResolvedTrace]:
        """Run the pipeline over a traceroute batch.

        All not-yet-cached public hop addresses across the batch resolve
        in one vectorized longest-prefix-match pass (one binary search
        per prefix length for the whole batch); only the residual misses
        fall back to per-address Cymru queries.  Results are identical
        to calling :meth:`resolve` per measurement -- both engines are
        deterministic and the address cache keeps one entry per address
        either way.
        """
        pending: List[int] = []
        seen = set()
        cache = self._cache
        for measurement in measurements:
            for hop in measurement.hops:
                address = hop.address
                if address is None or address in cache or address in seen:
                    continue
                if is_private_ip(address):
                    continue
                if self._ixps.ixp_for_address(address) is not None:
                    continue
                seen.add(address)
                pending.append(address)
        if pending:
            asns = self._pyasn.lookup_many(np.asarray(pending, dtype=np.int64))
            for address, asn in zip(pending, asns.tolist()):
                if asn >= 0:
                    cache[address] = (asn, "pyasn")
                else:
                    fallback = self._cymru.lookup(address)
                    cache[address] = (
                        (fallback, "cymru") if fallback is not None else (None, "none")
                    )
        return [self.resolve(measurement) for measurement in measurements]

    def resolve(self, measurement: TracerouteMeasurement) -> ResolvedTrace:
        """Run the pipeline over one raw traceroute."""
        hops: List[ResolvedHop] = []
        for hop in measurement.hops:
            hops.append(self._resolve_hop(hop))

        as_path: List[int] = []
        ixp_after: List[Tuple[int, int]] = []
        for hop in hops:
            if not hop.responded or hop.is_private:
                continue
            if hop.ixp_id is not None:
                if as_path:
                    ixp_after.append((len(as_path) - 1, hop.ixp_id))
                continue
            if hop.asn is None:
                continue
            if not as_path or as_path[-1] != hop.asn:
                as_path.append(hop.asn)

        inferred, router_rtt, usr_isp_rtt = self._infer_last_mile(
            hops, measurement.meta.isp_asn
        )
        return ResolvedTrace(
            measurement=measurement,
            hops=tuple(hops),
            as_path=tuple(as_path),
            ixp_after_index=tuple(ixp_after),
            inferred_access=inferred,
            router_rtt_ms=router_rtt,
            usr_isp_rtt_ms=usr_isp_rtt,
        )

    def _resolve_hop(self, hop: TraceHop) -> ResolvedHop:
        if hop.address is None:
            return ResolvedHop(
                address=None,
                rtt_ms=None,
                asn=None,
                is_private=False,
                ixp_id=None,
                resolved_by="none",
            )
        if is_private_ip(hop.address):
            return ResolvedHop(
                address=hop.address,
                rtt_ms=hop.rtt_ms,
                asn=None,
                is_private=True,
                ixp_id=None,
                resolved_by="private",
            )
        ixp = self._ixps.ixp_for_address(hop.address)
        if ixp is not None:
            return ResolvedHop(
                address=hop.address,
                rtt_ms=hop.rtt_ms,
                asn=None,
                is_private=False,
                ixp_id=ixp.ixp_id,
                resolved_by="ixp",
            )
        asn, resolved_by = self._resolve_address(hop.address)
        return ResolvedHop(
            address=hop.address,
            rtt_ms=hop.rtt_ms,
            asn=asn,
            is_private=False,
            ixp_id=None,
            resolved_by=resolved_by,
        )

    @staticmethod
    def _infer_last_mile(
        hops: List[ResolvedHop], isp_asn: int
    ) -> Tuple[Optional[str], Optional[float], Optional[float]]:
        first = next((hop for hop in hops if hop.responded), None)
        if first is None:
            return None, None, None
        router_rtt: Optional[float] = None
        inferred: Optional[str] = None
        if first.is_private:
            inferred = "home"
            router_rtt = first.rtt_ms
        elif first.asn == isp_asn:
            inferred = "cell"
        usr_isp_rtt = next(
            (hop.rtt_ms for hop in hops if hop.responded and hop.asn == isp_asn),
            None,
        )
        return inferred, router_rtt, usr_isp_rtt
