"""The experiment registry: id -> runner, plus metadata for docs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.experiments import comparison, density_exp, inventory, lastmile_exp
from repro.experiments import latency, netfault_exp, peering_exp
from repro.experiments import protocols_exp, stats_exp
from repro.experiments.common import ExperimentResult, StudyContext
from repro.measure.results import MeasurementDataset

Runner = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class ExperimentInfo:
    """Registry entry for one paper artifact."""

    experiment_id: str
    paper_artifact: str
    needs_dataset: bool
    runner: Runner


_REGISTRY: Dict[str, ExperimentInfo] = {}


def _register(experiment_id: str, paper_artifact: str, needs_dataset: bool, runner: Runner) -> None:
    if experiment_id in _REGISTRY:
        raise ValueError(f"duplicate experiment id {experiment_id!r}")
    _REGISTRY[experiment_id] = ExperimentInfo(
        experiment_id=experiment_id,
        paper_artifact=paper_artifact,
        needs_dataset=needs_dataset,
        runner=runner,
    )


_register("table1", "Table 1", False, inventory.run_table1)
_register("fig1b", "Figure 1b", False, inventory.run_fig1b)
_register("fig2", "Figure 2", False, inventory.run_fig2)
_register("fig3", "Figure 3", True, latency.run_fig3)
_register("fig4", "Figure 4", True, latency.run_fig4)
_register("fig5", "Figure 5", True, comparison.run_fig5)
_register("fig6a", "Figure 6a", True, latency.run_fig6a)
_register("fig6b", "Figure 6b", True, latency.run_fig6b)
_register("fig7a", "Figure 7a", True, lastmile_exp.run_fig7a)
_register("fig7b", "Figure 7b", True, lastmile_exp.run_fig7b)
_register("fig8", "Figure 8", True, lastmile_exp.run_fig8)
_register("fig9", "Figure 9", True, lastmile_exp.run_fig9)
_register("fig10", "Figure 10", True, peering_exp.run_fig10)
_register("fig11", "Figure 11", True, peering_exp.run_fig11)
_register("fig12", "Figures 12a/12b", False, peering_exp.run_fig12)
_register("fig13", "Figures 13a/13b", False, peering_exp.run_fig13)
_register("fig14", "Figure 14 / Section 3.2", False, density_exp.run_fig14)
_register("fig15", "Figure 15", True, protocols_exp.run_fig15)
_register("fig16", "Figure 16", True, comparison.run_fig16)
_register("fig17", "Figures 17a/17b", False, peering_exp.run_fig17)
_register("fig18", "Figures 18a/18b", False, peering_exp.run_fig18)
_register("fig19", "Figure 19", True, lastmile_exp.run_fig19)
_register("stats", "Section 3.3", False, stats_exp.run_stats)
_register("failover", "Dynamic topology", False, netfault_exp.run_failover)
_register("pathdiv", "Dynamic topology", False, netfault_exp.run_pathdiv)

#: All experiment ids in paper order.
EXPERIMENT_IDS: Tuple[str, ...] = tuple(_REGISTRY)


def experiment_info(experiment_id: str) -> ExperimentInfo:
    """Registry metadata for an experiment id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(_REGISTRY)}"
        ) from None


def run_experiment(
    experiment_id: str,
    world,
    dataset: Optional[MeasurementDataset] = None,
    context: Optional[StudyContext] = None,
) -> ExperimentResult:
    """Run one experiment by its paper artifact id."""
    info = experiment_info(experiment_id)
    if info.needs_dataset and dataset is None:
        raise ValueError(
            f"experiment {experiment_id!r} needs a dataset; "
            "run repro.run_campaign first"
        )
    return info.runner(world, dataset, context=context)
