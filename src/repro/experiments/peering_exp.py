"""Interconnection experiments: Figs. 10, 11 and the case studies of
Figs. 12, 13, 17 and 18 (paper section 6)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.ingress import ingress_by_interconnect
from repro.analysis.peering import (
    isp_provider_matrix,
    latency_by_interconnect,
    provider_breakdowns,
)
from repro.analysis.pervasiveness import overall_pervasiveness, pervasiveness_by_provider
from repro.analysis.report import format_percent, format_table
from repro.experiments.common import ExperimentResult, StudyContext, require_dataset
from repro.measure.campaign import run_case_study


def _context(world, dataset, context: Optional[StudyContext]) -> StudyContext:
    if context is not None:
        return context
    return StudyContext(world, dataset)


def run_fig10(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 10: interconnect mix (direct / 1 AS / 2+ AS) per provider."""
    dataset = require_dataset(dataset, "fig10")
    ctx = _context(world, dataset, context)
    breakdowns = provider_breakdowns(ctx.resolved_traces)
    rows = [
        [
            entry.provider_code,
            entry.path_count,
            format_percent(entry.direct_share),
            format_percent(entry.one_as_share),
            format_percent(entry.two_plus_share),
        ]
        for entry in breakdowns
    ]
    body = format_table(["Provider", "Paths", "Direct", "1 AS", "2+ AS"], rows)
    data = {
        entry.provider_code: {
            "direct": entry.direct_share,
            "one_as": entry.one_as_share,
            "two_plus": entry.two_plus_share,
        }
        for entry in breakdowns
    }
    return ExperimentResult(
        experiment_id="fig10",
        title="ISP-cloud interconnection types globally",
        body=body,
        data=data,
    )


def run_fig11(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 11: pervasiveness of provider-owned routers on user paths."""
    dataset = require_dataset(dataset, "fig11")
    ctx = _context(world, dataset, context)
    entries = pervasiveness_by_provider(ctx.resolved_traces)
    rows = [
        [
            entry.provider_code,
            entry.continent.value,
            entry.trace_count,
            f"{entry.mean_share:.2f}",
        ]
        for entry in entries
    ]
    overall = overall_pervasiveness(entries)
    body = format_table(["Provider", "Continent", "Traces", "Pervasiveness"], rows)
    body += "\nOverall: " + ", ".join(
        f"{code}={share:.2f}" for code, share in sorted(overall.items())
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Degree of pervasiveness of cloud providers",
        body=body,
        data={
            "per_continent": {
                (entry.provider_code, entry.continent.value): entry.mean_share
                for entry in entries
            },
            "overall": overall,
        },
    )


def _case_study(
    world,
    context: Optional[StudyContext],
    experiment_id: str,
    source_country: str,
    dest_country: str,
    title: str,
    rounds: int = 0,
    max_probes: int = 60,
    target_traces: int = 1200,
) -> ExperimentResult:
    """Shared runner for the four peering case studies.

    ``rounds=0`` sizes the number of measurement rounds so that roughly
    ``target_traces`` traceroutes are collected regardless of how many
    probes the source country hosts (Bahrain is tiny, Germany is huge).
    """
    if rounds < 1:
        probe_count = min(
            max_probes, len(world.speedchecker.probes_in_country(source_country))
        )
        region_count = sum(
            1 for region in world.catalog.all() if region.country == dest_country
        )
        per_round = max(1, probe_count * region_count)
        rounds = max(2, min(40, -(-target_traces // per_round)))
    case_dataset = run_case_study(
        world,
        source_country,
        dest_country,
        rounds=rounds,
        max_probes=max_probes,
    )
    ctx = context or StudyContext(world, case_dataset)
    traces = ctx.resolve(case_dataset)

    matrix = isp_provider_matrix(
        traces, source_country, world.topology.registry
    )
    matrix_rows = [
        [
            f"{cell.isp_name} (AS {cell.isp_asn})",
            cell.provider_code,
            cell.path_count,
            cell.dominant_category,
            format_percent(cell.dominant_share),
        ]
        for cell in matrix
    ]
    latency = latency_by_interconnect(traces)
    latency_rows = []
    for entry in latency:
        for label, box in (("direct", entry.direct), ("intermediate", entry.intermediate)):
            if box is None:
                continue
            latency_rows.append(
                [
                    entry.provider_code,
                    label,
                    box.count,
                    f"{box.median:.1f}",
                    f"{box.iqr:.1f}",
                ]
            )
    ingress = ingress_by_interconnect(traces)
    ingress_line = ""
    if ingress:
        ingress_line = "\nWAN ingress depth (0 = at the user): " + ", ".join(
            f"{stats.group}={stats.median_ingress_depth:.2f}"
            for stats in ingress.values()
        )
    body = (
        format_table(
            ["ISP", "Provider", "Paths", "Dominant", "Share"], matrix_rows
        )
        + "\n\n"
        + format_table(
            ["Provider", "Peering", "N", "Median [ms]", "IQR [ms]"],
            latency_rows,
        )
        + ingress_line
    )
    data = {
        "ingress_depth": {
            group: stats.median_ingress_depth for group, stats in ingress.items()
        },
        "matrix": {
            (cell.isp_asn, cell.provider_code): cell.dominant_category
            for cell in matrix
        },
        "latency": {
            entry.provider_code: {
                "direct_median": entry.direct.median if entry.direct else None,
                "direct_iqr": entry.direct.iqr if entry.direct else None,
                "intermediate_median": (
                    entry.intermediate.median if entry.intermediate else None
                ),
                "intermediate_iqr": (
                    entry.intermediate.iqr if entry.intermediate else None
                ),
            }
            for entry in latency
        },
    }
    return ExperimentResult(
        experiment_id=experiment_id, title=title, body=body, data=data
    )


def run_fig12(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Figs. 12a/12b: German ISPs to UK datacenters."""
    return _case_study(
        world, context, "fig12", "DE", "GB",
        "ISP-cloud peering case study: Germany to UK",
    )


def run_fig13(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Figs. 13a/13b: Japanese ISPs to Indian datacenters."""
    return _case_study(
        world, context, "fig13", "JP", "IN",
        "ISP-cloud peering case study: Japan to India",
    )


def run_fig17(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Figs. 17a/17b: Ukrainian ISPs to UK datacenters."""
    return _case_study(
        world, context, "fig17", "UA", "GB",
        "ISP-cloud peering case study: Ukraine to UK",
    )


def run_fig18(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Figs. 18a/18b: Bahraini ISPs to Indian datacenters."""
    return _case_study(
        world, context, "fig18", "BH", "IN",
        "ISP-cloud peering case study: Bahrain to India",
    )
