"""Protocol comparison experiment: Fig. 15 (ICMP vs TCP, appendix A.2)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.protocols import protocol_comparison
from repro.analysis.report import format_percent, format_table
from repro.experiments.common import ExperimentResult, StudyContext, require_dataset
from repro.geo.continents import Continent


def run_fig15(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 15: per-pair median latencies over ICMP vs TCP by continent."""
    dataset = require_dataset(dataset, "fig15")
    ctx = context or StudyContext(world, dataset)
    comparisons = protocol_comparison(dataset, ctx.resolved_traces)
    rows = []
    data = {}
    for continent in Continent:
        comparison = comparisons.get(continent)
        if comparison is None:
            continue
        rows.append(
            [
                continent.value,
                comparison.pair_count,
                f"{comparison.tcp.median:.1f}",
                f"{comparison.icmp.median:.1f}",
                format_percent(comparison.median_relative_gap, digits=2),
            ]
        )
        data[continent.value] = {
            "tcp_median": comparison.tcp.median,
            "icmp_median": comparison.icmp.median,
            "relative_gap": comparison.median_relative_gap,
            "pairs": comparison.pair_count,
        }
    body = format_table(
        ["Continent", "Pairs", "TCP med [ms]", "ICMP med [ms]", "Gap"], rows
    )
    return ExperimentResult(
        experiment_id="fig15",
        title="ICMP vs TCP end-to-end latencies (Speedchecker)",
        body=body,
        data=data,
    )
