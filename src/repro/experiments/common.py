"""Shared experiment infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.nearest import NearestMap, nearest_by_probe
from repro.measure.results import MeasurementDataset, Protocol
from repro.resolve.pipeline import ResolvedTrace, TracerouteResolver


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment_id: str
    title: str
    body: str
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The regenerated table/figure as text."""
        header = f"== {self.experiment_id}: {self.title} =="
        return f"{header}\n{self.body}"


class StudyContext:
    """Caches derived artifacts shared across experiments.

    Resolving every traceroute and estimating nearest datacenters are the
    two expensive steps of the pipeline; experiments sharing a dataset
    should share a context so those run once.
    """

    def __init__(self, world, dataset: MeasurementDataset, rib_coverage: float = 0.97):
        self.world = world
        self.dataset = dataset
        self._rib_coverage = rib_coverage
        self._resolver: Optional[TracerouteResolver] = None
        self._resolved: Optional[List[ResolvedTrace]] = None
        self._nearest: Dict[str, NearestMap] = {}

    @property
    def resolver(self) -> TracerouteResolver:
        if self._resolver is None:
            self._resolver = TracerouteResolver(
                self.world.topology.registry,
                self.world.topology.ixps,
                rib_coverage=self._rib_coverage,
                rng=self.world.rngs.stream("resolver"),
            )
        return self._resolver

    @property
    def resolved_traces(self) -> List[ResolvedTrace]:
        """Every traceroute of the dataset, resolved (cached)."""
        if self._resolved is None:
            self._resolved = self.resolver.resolve_many(
                list(self.dataset.traceroutes())
            )
        return self._resolved

    def resolve(self, dataset: MeasurementDataset) -> List[ResolvedTrace]:
        """Resolve an auxiliary dataset (e.g. a peering case study)."""
        return self.resolver.resolve_many(list(dataset.traceroutes()))

    def nearest(self, platform: str) -> NearestMap:
        """Per-probe nearest-DC map for a platform (cached)."""
        if platform not in self._nearest:
            self._nearest[platform] = nearest_by_probe(
                self.dataset, platform, Protocol.TCP
            )
        return self._nearest[platform]


def require_dataset(dataset: Optional[MeasurementDataset], experiment_id: str):
    if dataset is None:
        raise ValueError(
            f"experiment {experiment_id!r} needs a measurement dataset; "
            "run repro.run_campaign first"
        )
    return dataset
