"""Platform-comparison experiments: Figs. 5 and 16 (paper section 4.2)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.compare import matched_city_asn_differences, platform_differences
from repro.analysis.report import format_percent, format_table
from repro.experiments.common import ExperimentResult, StudyContext, require_dataset
from repro.geo.continents import Continent


def _render(differences) -> str:
    rows = []
    for continent in Continent:
        diff = differences.get(continent)
        if diff is None:
            continue
        rows.append(
            [
                continent.value,
                diff.pair_count,
                f"{diff.median_difference_ms:+.1f}",
                format_percent(diff.speedchecker_faster_share),
            ]
        )
    return format_table(
        ["Continent", "Pairs", "Median diff [ms]", "SC faster"], rows
    )


def run_fig5(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 5: Speedchecker-minus-Atlas latency differences per continent."""
    dataset = require_dataset(dataset, "fig5")
    differences = platform_differences(
        dataset, world.rngs.stream("experiment.fig5")
    )
    data = {
        continent.value: {
            "median_diff": diff.median_difference_ms,
            "sc_faster_share": diff.speedchecker_faster_share,
        }
        for continent, diff in differences.items()
    }
    return ExperimentResult(
        experiment_id="fig5",
        title="Speedchecker vs RIPE Atlas nearest-DC latency differences",
        body=_render(differences),
        data=data,
    )


def run_fig16(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 16: the same comparison restricted to matched <city, ASN>."""
    dataset = require_dataset(dataset, "fig16")
    differences = matched_city_asn_differences(
        dataset, world.rngs.stream("experiment.fig16")
    )
    data = {
        continent.value: {
            "median_diff": diff.median_difference_ms,
            "sc_faster_share": diff.speedchecker_faster_share,
        }
        for continent, diff in differences.items()
    }
    return ExperimentResult(
        experiment_id="fig16",
        title="Same-<city, ASN> Speedchecker vs Atlas differences",
        body=_render(differences),
        data=data,
    )
