"""Dynamic-topology experiments: failover latency and path diversity.

Neither artifact exists in the paper -- the paper measured a static
week -- but both answer the question its dataset begs: *what happens to
cloud reachability when the network underneath the measurement fleet
misbehaves?*  Each experiment runs a short checkpointed campaign under a
seeded :class:`~repro.netfaults.config.NetworkFaultConfig`, then reads
the result back exclusively through :mod:`repro.query` epoch/outage
filters -- and cross-checks every query against the record-at-a-time
oracle, so the experiments double as an end-to-end parity gate for the
dynamic-topology provenance columns.
"""

from __future__ import annotations

import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import ExperimentResult, StudyContext
from repro.measure.campaign import run_campaign_checkpointed
from repro.netfaults.config import NetworkFaultConfig
from repro.netfaults.events import SLOTS_PER_DAY
from repro.netfaults.plan import NetworkFaultPlan
from repro.query.builder import execute
from repro.query.oracle import oracle_execute
from repro.query.spec import QuerySpec

#: The event mix both experiments inject: roughly 4-5 events per day
#: across all three families, long enough windows that several routing
#: epochs fall inside one unit's request list.
EXPERIMENT_NETFAULTS = NetworkFaultConfig(
    link_failure_rate=0.4,
    peering_flap_rate=0.9,
    regional_outage_rate=0.3,
    max_events_per_day=5,
    min_duration_slots=4,
    max_duration_slots=12,
)

#: Days of campaign both experiments run (kept short: the schedules are
#: dense enough that one or two days exercise every event family).
EXPERIMENT_DAYS = 2

#: Virtual hours per timeline slot.
HOURS_PER_SLOT = 24.0 / SLOTS_PER_DAY


def _parity_query(store, spec: QuerySpec) -> List[Dict[str, Any]]:
    """Execute a query and fail loudly unless engine == oracle.

    The experiments are the acceptance harness for epoch/outage
    provenance, so every table they print has been produced twice --
    once by the vectorized scan, once by the reference implementation --
    and compared exactly.
    """
    engine = execute(store, spec, workers=1, cache=False)
    oracle = oracle_execute(store, spec)
    if engine.rows != oracle.rows:
        raise AssertionError(
            f"query engine and oracle disagree for spec {spec.canonical()}"
        )
    return engine.rows


def _netfault_study(
    world,
) -> Tuple[NetworkFaultPlan, "tempfile.TemporaryDirectory", Any]:
    """Run the shared netfault campaign; returns (plan, tmpdir, store).

    The caller owns the returned temporary directory and must keep it
    alive until its queries are done.
    """
    plan = NetworkFaultPlan(
        world.config.seed,
        EXPERIMENT_NETFAULTS,
        world.topology,
        world.catalog,
    )
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-netfault-exp-")
    store = run_campaign_checkpointed(
        world,
        f"{tmpdir.name}/run",
        days=EXPERIMENT_DAYS,
        netfaults=EXPERIMENT_NETFAULTS,
    )
    return plan, tmpdir, store


def _event_schedule(plan: NetworkFaultPlan) -> List[Dict[str, Any]]:
    """The realized events with their downed/recovery accounting."""
    events: List[Dict[str, Any]] = []
    for day in range(EXPERIMENT_DAYS):
        timeline = plan.timeline(day)
        for event in timeline.events:
            downed = sum(end - start for start, end in event.windows)
            recovery = max(end for _, end in event.windows)
            onset = min(start for start, _ in event.windows)
            events.append(
                {
                    "event_id": event.event_id,
                    "kind": event.kind,
                    "label": event.label(),
                    "day": day,
                    "downed_slots": downed,
                    # Reconvergence completes when the last window lifts
                    # and routes return to baseline.
                    "time_to_reconverge_h": (recovery - onset)
                    * HOURS_PER_SLOT,
                }
            )
    return events


def run_failover(
    world, dataset=None, context: Optional[StudyContext] = None
) -> ExperimentResult:
    """Failover latency: time-to-reconverge and RTT inflation.

    Injects the standard event mix, then compares per-provider mean
    RTTs of rows that rode a re-converged path (``outage >= 0``)
    against rows on baseline routes (``outage == -1``), all through
    epoch/outage-filtered queries with oracle parity.
    """
    del dataset, context  # runs its own campaign under network faults
    plan, tmpdir, store = _netfault_study(world)
    with tmpdir:
        provider_rows = _parity_query(
            store,
            QuerySpec(
                group_by=("provider", "outage"),
                aggregates=("count", "samples", "sum", "mean"),
            ),
        )
        region_rows = _parity_query(
            store,
            QuerySpec(
                group_by=("region", "outage"),
                aggregates=("count", "samples", "sum", "mean"),
            ),
        )
        epoch_rows = _parity_query(
            store,
            QuerySpec(group_by=("day", "epoch"), aggregates=("count",)),
        )

    def inflation(rows: List[Dict[str, Any]], key: str) -> Dict[str, Any]:
        folded: Dict[str, Dict[str, List[float]]] = {}
        for row in rows:
            name = row["group"][key]
            bucket = "rerouted" if row["group"]["outage"] >= 0 else "baseline"
            slot = folded.setdefault(
                name, {"baseline": [0.0, 0.0], "rerouted": [0.0, 0.0]}
            )
            if row["sum"] is not None:
                slot[bucket][0] += row["sum"]
                slot[bucket][1] += row["samples"]
        out: Dict[str, Any] = {}
        for name, slot in sorted(folded.items()):
            base_sum, base_n = slot["baseline"]
            re_sum, re_n = slot["rerouted"]
            base_mean = base_sum / base_n if base_n else None
            re_mean = re_sum / re_n if re_n else None
            out[name] = {
                "baseline_mean_ms": base_mean,
                "rerouted_mean_ms": re_mean,
                "rerouted_samples": int(re_n),
                "inflation": (
                    re_mean / base_mean - 1.0
                    if base_mean and re_mean is not None
                    else None
                ),
            }
        return out

    providers = inflation(provider_rows, "provider")
    regions = inflation(region_rows, "region")
    events = _event_schedule(plan)
    epochs_per_day: Dict[int, int] = {}
    for row in epoch_rows:
        day = row["group"]["day"]
        epochs_per_day[day] = max(
            epochs_per_day.get(day, 0), row["group"]["epoch"] + 1
        )
    table = []
    for name, stats in providers.items():
        table.append(
            [
                name,
                f"{stats['baseline_mean_ms']:.1f}"
                if stats["baseline_mean_ms"] is not None
                else "-",
                f"{stats['rerouted_mean_ms']:.1f}"
                if stats["rerouted_mean_ms"] is not None
                else "-",
                str(stats["rerouted_samples"]),
                f"{stats['inflation'] * 100.0:+.1f}%"
                if stats["inflation"] is not None
                else "-",
            ]
        )
    reconverge = [event["time_to_reconverge_h"] for event in events]
    summary = (
        f"{len(events)} events over {EXPERIMENT_DAYS} days, "
        f"mean time-to-reconverge "
        f"{sum(reconverge) / len(reconverge):.1f}h"
        if events
        else "no events fired"
    )
    body = (
        format_table(
            [
                "Provider",
                "Baseline [ms]",
                "Rerouted [ms]",
                "Samples",
                "Inflation",
            ],
            table,
        )
        + f"\n{summary}"
    )
    return ExperimentResult(
        experiment_id="failover",
        title="Failover latency under network faults",
        body=body,
        data={
            "netfaults": {
                "link_failure_rate": EXPERIMENT_NETFAULTS.link_failure_rate,
                "peering_flap_rate": EXPERIMENT_NETFAULTS.peering_flap_rate,
                "regional_outage_rate": (
                    EXPERIMENT_NETFAULTS.regional_outage_rate
                ),
            },
            "events": events,
            "epochs_per_day": epochs_per_day,
            "providers": providers,
            "regions": regions,
        },
    )


def run_pathdiv(
    world, dataset=None, context: Optional[StudyContext] = None
) -> ExperimentResult:
    """Path diversity under failure: distinct AS paths across epochs.

    For every (probe ISP, continent, provider) pair, counts the
    distinct AS-level paths selected across the run's routing epochs
    and how often the pair went unreachable; measurement-side coverage
    comes from epoch-grouped trace queries with oracle parity.
    """
    del dataset, context
    plan, tmpdir, store = _netfault_study(world)
    with tmpdir:
        trace_rows = _parity_query(
            store,
            QuerySpec(
                kind="traces",
                group_by=("provider", "epoch"),
                aggregates=("count",),
            ),
        )
        dropped_free = _parity_query(
            store,
            QuerySpec(group_by=("provider",), aggregates=("count",)),
        )
    isps_by_continent: Dict[Any, set] = {}
    for platform in (world.speedchecker, world.atlas):
        for probe in platform.probes:
            isps_by_continent.setdefault(probe.continent, set()).add(
                probe.isp_asn
            )
    views = {frozenset(): plan.view(frozenset())}
    for day in range(EXPERIMENT_DAYS):
        timeline = plan.timeline(day)
        for epoch in range(len(timeline.active)):
            removed = timeline.removed_edges(epoch)
            views.setdefault(removed, plan.view(removed))
    providers: Dict[str, Dict[str, Any]] = {}
    for provider in world.providers:
        pairs = 0
        multipath = 0
        unreachable_pair_epochs = 0
        path_counts: List[int] = []
        for continent, isps in sorted(
            isps_by_continent.items(), key=lambda item: item[0].value
        ):
            tables = [
                view.routes_for(provider.code, continent)
                for view in views.values()
            ]
            for isp_asn in sorted(isps):
                paths = set()
                for table in tables:
                    path = table.as_path(isp_asn)
                    if path is None:
                        unreachable_pair_epochs += 1
                    else:
                        paths.add(tuple(path))
                if not paths:
                    continue
                pairs += 1
                path_counts.append(len(paths))
                if len(paths) > 1:
                    multipath += 1
        providers[provider.code] = {
            "pairs": pairs,
            "mean_distinct_paths": (
                sum(path_counts) / len(path_counts) if path_counts else None
            ),
            "multipath_share": multipath / pairs if pairs else None,
            "unreachable_pair_epochs": unreachable_pair_epochs,
        }
    trace_coverage: Dict[str, Dict[int, int]] = {}
    for row in trace_rows:
        trace_coverage.setdefault(row["group"]["provider"], {})[
            row["group"]["epoch"]
        ] = row["count"]
    table = []
    for code, stats in sorted(providers.items()):
        epochs_observed = len(trace_coverage.get(code, {}))
        table.append(
            [
                code,
                str(stats["pairs"]),
                f"{stats['mean_distinct_paths']:.2f}"
                if stats["mean_distinct_paths"] is not None
                else "-",
                f"{stats['multipath_share'] * 100.0:.1f}%"
                if stats["multipath_share"] is not None
                else "-",
                str(stats["unreachable_pair_epochs"]),
                str(epochs_observed),
            ]
        )
    body = format_table(
        [
            "Provider",
            "Pairs",
            "Paths/pair",
            ">1 path",
            "Unreachable",
            "Epochs seen",
        ],
        table,
    )
    return ExperimentResult(
        experiment_id="pathdiv",
        title="Path diversity under network failures",
        body=body,
        data={
            "epochs": len(views),
            "providers": providers,
            "trace_coverage": {
                code: {str(epoch): count for epoch, count in sorted(by.items())}
                for code, by in sorted(trace_coverage.items())
            },
            "ping_counts": {
                row["group"]["provider"]: row["count"] for row in dropped_free
            },
        },
    )
