"""Experiment runners: one per table and figure of the paper.

Every experiment is registered under the paper's artifact id (``table1``,
``fig3``, ... ``fig19``, ``stats``) and returns an
:class:`~repro.experiments.common.ExperimentResult` whose ``data`` payload
is asserted against the paper's qualitative findings in the test suite
and whose ``render()`` regenerates the table/figure as text.
"""

from repro.experiments.common import ExperimentResult, StudyContext
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    experiment_info,
    run_experiment,
)
from repro.experiments.takeaways import (
    TakeawayCheck,
    evaluate_takeaways,
    render_takeaways,
)

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentResult",
    "StudyContext",
    "TakeawayCheck",
    "evaluate_takeaways",
    "experiment_info",
    "render_takeaways",
    "run_experiment",
]
