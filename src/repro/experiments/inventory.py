"""Inventory experiments: Table 1 and the probe-distribution figures."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult, StudyContext
from repro.analysis.report import format_table
from repro.cloud.providers import PROVIDERS
from repro.geo.continents import Continent

#: Table 1 column order.
_TABLE1_ORDER = (
    Continent.EU,
    Continent.NA,
    Continent.SA,
    Continent.AS,
    Continent.AF,
    Continent.OC,
)

#: Table 1 reference values (provider -> counts in _TABLE1_ORDER order).
TABLE1_PAPER = {
    "AMZN": (6, 6, 1, 6, 1, 1),
    "GCP": (6, 10, 1, 8, 0, 1),
    "MSFT": (14, 10, 1, 15, 2, 4),
    "DO": (4, 6, 0, 1, 0, 0),
    "BABA": (2, 2, 0, 16, 0, 1),
    "VLTR": (4, 9, 0, 1, 0, 1),
    "LIN": (2, 5, 0, 3, 0, 1),
    "LTSL": (4, 4, 0, 4, 0, 1),
    "ORCL": (4, 4, 1, 7, 0, 2),
    "IBM": (6, 6, 0, 1, 0, 0),
}


def run_table1(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Table 1: datacenter counts per provider per continent + backbone."""
    table = world.catalog.table1()
    rows = []
    data: Dict[str, tuple] = {}
    for provider in PROVIDERS:
        counts = tuple(
            table.get(provider.code, {}).get(continent, 0)
            for continent in _TABLE1_ORDER
        )
        data[provider.code] = counts
        rows.append(
            [provider.name, *counts, sum(counts), str(provider.backbone)]
        )
    totals = [
        sum(data[code][i] for code in data) for i in range(len(_TABLE1_ORDER))
    ]
    rows.append(["Total", *totals, sum(totals), ""])
    body = format_table(
        ["Provider", *[c.value for c in _TABLE1_ORDER], "Sum", "Backbone"],
        rows,
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Global density of cloud provider endpoints",
        body=body,
        data={"counts": data, "total": sum(totals)},
    )


def _probe_distribution(world, platform: str) -> Dict[str, int]:
    probes = (
        world.speedchecker.probes if platform == "speedchecker" else world.atlas.probes
    )
    counts: Dict[str, int] = {}
    for probe in probes:
        counts[probe.continent.value] = counts.get(probe.continent.value, 0) + 1
    return counts


def run_fig1b(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 1b: Speedchecker probe distribution per continent."""
    counts = _probe_distribution(world, "speedchecker")
    ordered = sorted(counts.items(), key=lambda item: -item[1])
    body = format_table(["Continent", "Probes"], ordered)
    return ExperimentResult(
        experiment_id="fig1b",
        title="Speedchecker probe distribution",
        body=body,
        data={"counts": counts, "total": sum(counts.values())},
    )


def run_fig2(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 2: RIPE Atlas probe distribution per continent."""
    counts = _probe_distribution(world, "atlas")
    ordered = sorted(counts.items(), key=lambda item: -item[1])
    body = format_table(["Continent", "Probes"], ordered)
    return ExperimentResult(
        experiment_id="fig2",
        title="RIPE Atlas probe distribution",
        body=body,
        data={"counts": counts, "total": sum(counts.values())},
    )
