"""Cloud access latency experiments: Figs. 3, 4 and the inter-continental
Fig. 6 (paper sections 4.1 and 4.3)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.bands import (
    continent_distributions,
    country_latency_bands,
    threshold_compliance,
)
from repro.analysis.intercontinental import (
    FIG6_AFRICA,
    FIG6_SOUTH_AMERICA,
    TARGETS,
    intercontinental_latency,
)
from repro.analysis.report import format_percent, format_table
from repro.experiments.common import ExperimentResult, StudyContext, require_dataset
from repro.geo.continents import Continent
from repro.measure.campaign import run_intercontinental_study
from repro.measure.results import MeasurementDataset


def run_fig3(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 3: median nearest-DC RTT per country, banded."""
    dataset = require_dataset(dataset, "fig3")
    bands = country_latency_bands(dataset, world.countries)
    rows = [
        [
            band.country,
            band.continent.value,
            band.sample_count,
            f"{band.median_rtt_ms:.1f}",
            band.band,
        ]
        for band in bands
    ]
    total, mtp, hpl, hrt = threshold_compliance(bands)
    body = format_table(
        ["Country", "Cont", "Samples", "Median RTT [ms]", "Band"], rows
    )
    body += (
        f"\nCountries: {total}; median under MTP: {mtp}, "
        f"under HPL: {hpl}, under HRT: {hrt}"
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Median latency to the closest datacenter per country",
        body=body,
        data={
            "bands": {band.country: band.band for band in bands},
            "medians": {band.country: band.median_rtt_ms for band in bands},
            "compliance": {"total": total, "mtp": mtp, "hpl": hpl, "hrt": hrt},
        },
    )


def run_fig4(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 4: nearest-DC RTT distribution per continent vs thresholds."""
    dataset = require_dataset(dataset, "fig4")
    distributions = continent_distributions(dataset)
    rows = []
    data = {}
    for continent in Continent:
        dist = distributions.get(continent)
        if dist is None:
            continue
        rows.append(
            [
                continent.value,
                dist.sample_count,
                f"{dist.median_rtt_ms:.1f}",
                f"{dist.p90_rtt_ms:.1f}",
                format_percent(dist.below_mtp),
                format_percent(dist.below_hpl),
                format_percent(dist.below_hrt),
            ]
        )
        data[continent.value] = {
            "median": dist.median_rtt_ms,
            "p90": dist.p90_rtt_ms,
            "below_mtp": dist.below_mtp,
            "below_hpl": dist.below_hpl,
            "below_hrt": dist.below_hrt,
        }
    body = format_table(
        ["Continent", "Samples", "Median", "P90", "<MTP", "<HPL", "<HRT"],
        rows,
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="RTT distribution to the nearest datacenter by continent",
        body=body,
        data=data,
    )


def _run_fig6(world, dataset, continent: Continent, countries, experiment_id, title):
    dataset = require_dataset(dataset, experiment_id)
    # Supplement the campaign dataset with a focused sweep: the listed
    # countries ping the nearest per-provider regions in every target
    # continent, exactly as the paper arranged for probes in
    # under-provisioned continents (section 4.3).  The AF/SA fleets are
    # small at default scale, so the main campaign alone undersamples
    # the tail countries.
    combined = MeasurementDataset()
    combined.extend(dataset)
    combined.extend(
        run_intercontinental_study(world, countries, TARGETS[continent])
    )
    entries = intercontinental_latency(combined, continent, countries, min_samples=8)
    rows = [
        [
            entry.country,
            entry.target_continent.value,
            entry.stats.count,
            f"{entry.stats.median:.1f}",
            f"{entry.stats.q1:.1f}",
            f"{entry.stats.q3:.1f}",
        ]
        for entry in entries
    ]
    body = format_table(
        ["Country", "Target", "Samples", "Median [ms]", "Q1", "Q3"], rows
    )
    data = {
        (entry.country, entry.target_continent.value): entry.stats.median
        for entry in entries
    }
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        body=body,
        data={"medians": data},
    )


def run_fig6a(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 6a: African countries to nearest DCs in AF/EU/NA."""
    return _run_fig6(
        world,
        dataset,
        Continent.AF,
        FIG6_AFRICA,
        "fig6a",
        "Inter-continental latency from Africa",
    )


def run_fig6b(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 6b: South American countries to nearest DCs in SA/NA."""
    return _run_fig6(
        world,
        dataset,
        Continent.SA,
        FIG6_SOUTH_AMERICA,
        "fig6b",
        "Inter-continental latency from South America",
    )
