"""Deployment-density experiment: Fig. 14 / section 3.2."""

from __future__ import annotations

from typing import Optional

from repro.analysis.density import geo_density, population_coverage
from repro.analysis.report import format_percent, format_table
from repro.experiments.common import ExperimentResult, StudyContext


def run_fig14(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 14 + section 3.2: geoDensity and population coverage.

    Compares the two platforms' probe density per continent area and the
    share of Internet-user population living in probe-hosting ASes (the
    paper's APNIC-based estimate: 95.6% Speedchecker vs 69.2% Atlas).
    """
    entries = geo_density(world.speedchecker.probes, world.atlas.probes)
    rows = []
    ratios = {}
    for entry in entries:
        ratio = entry.density_ratio
        ratios[entry.continent.value] = ratio
        rows.append(
            [
                entry.continent.value,
                entry.speedchecker_probes,
                entry.atlas_probes,
                f"{entry.speedchecker_density:.1f}",
                f"{entry.atlas_density:.1f}",
                f"{ratio:.1f}x" if ratio != float("inf") else "inf",
            ]
        )
    sc_coverage = population_coverage(
        world.speedchecker.probes, world.countries, world.topology.registry
    )
    atlas_coverage = population_coverage(
        world.atlas.probes, world.countries, world.topology.registry
    )
    body = format_table(
        [
            "Continent",
            "SC probes",
            "Atlas probes",
            "SC /Mkm2",
            "Atlas /Mkm2",
            "Ratio",
        ],
        rows,
    )
    body += (
        f"\nPopulation coverage: Speedchecker {format_percent(sc_coverage)}, "
        f"Atlas {format_percent(atlas_coverage)}"
    )
    return ExperimentResult(
        experiment_id="fig14",
        title="Probe geoDensity and Internet-population coverage",
        body=body,
        data={
            "density_ratio": ratios,
            "speedchecker_coverage": sc_coverage,
            "atlas_coverage": atlas_coverage,
        },
    )
