"""The paper's takeaway boxes, operationalized.

Each section of the paper ends in a boxed takeaway.  This module turns
every box into an executable check against a study's experiment results,
so a single call answers: *do the paper's conclusions hold in this
world/dataset?*  The checks mirror the assertions of
``tests/integration/test_paper_findings.py`` but are part of the public
API, usable on any (possibly re-configured or ablated) study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments.common import StudyContext
from repro.experiments.registry import run_experiment
from repro.measure.results import MeasurementDataset


@dataclass(frozen=True)
class TakeawayCheck:
    """Outcome of one takeaway box evaluation."""

    section: str
    claim: str
    holds: bool
    evidence: str


def _check_section_41(world, dataset, context) -> List[TakeawayCheck]:
    fig3 = run_experiment("fig3", world, dataset, context=context)
    compliance = fig3.data["compliance"]
    total = max(1, compliance["total"])
    checks = [
        TakeawayCheck(
            section="4.1",
            claim="Achieving a consistent MTP threshold is near impossible",
            holds=compliance["mtp"] <= max(1, total // 20),
            evidence=f"{compliance['mtp']}/{total} countries under MTP at the median",
        ),
        TakeawayCheck(
            section="4.1",
            claim="A large majority of countries support HPL-governed applications",
            holds=compliance["hpl"] / total > 0.6,
            evidence=f"{compliance['hpl']}/{total} countries under HPL",
        ),
        TakeawayCheck(
            section="4.1",
            claim="Nearly all countries comply with the HRT threshold",
            holds=compliance["hrt"] / total > 0.85,
            evidence=f"{compliance['hrt']}/{total} countries under HRT",
        ),
    ]
    return checks


def _check_section_42(world, dataset, context) -> List[TakeawayCheck]:
    fig5 = run_experiment("fig5", world, dataset, context=context)
    non_sa = [
        stats["median_diff"]
        for code, stats in fig5.data.items()
        if code != "SA"
    ]
    atlas_faster = sum(1 for diff in non_sa if diff > 0)
    return [
        TakeawayCheck(
            section="4.2",
            claim="RIPE Atlas generally delivers lower latency than Speedchecker",
            holds=bool(non_sa) and atlas_faster >= 0.75 * len(non_sa),
            evidence=f"Atlas faster (median) in {atlas_faster}/{len(non_sa)} non-SA continents",
        )
    ]


def _check_section_43(world, dataset, context) -> List[TakeawayCheck]:
    fig6a = run_experiment("fig6a", world, dataset, context=context)
    medians = fig6a.data["medians"]
    north_africa_wins = 0
    comparisons = 0
    for country in ("EG", "MA", "DZ", "TN"):
        eu = medians.get((country, "EU"))
        af = medians.get((country, "AF"))
        if eu is None or af is None:
            continue
        comparisons += 1
        if eu < af:
            north_africa_wins += 1
    return [
        TakeawayCheck(
            section="4.3",
            claim=(
                "Networking infrastructure can beat sparse in-continent "
                "deployments (north Africa reaches EU faster than ZA)"
            ),
            holds=comparisons > 0 and north_africa_wins == comparisons,
            evidence=f"EU faster than in-continent for {north_africa_wins}/{comparisons} north-African countries",
        )
    ]


def _check_section_5(world, dataset, context) -> List[TakeawayCheck]:
    fig7b = run_experiment("fig7b", world, dataset, context=context)
    medians = fig7b.data["global_median_ms"]
    wifi = medians.get("SC home (USR-ISP)")
    cell = medians.get("SC cell")
    atlas = medians.get("Atlas")
    checks = []
    if wifi is not None and atlas is not None:
        checks.append(
            TakeawayCheck(
                section="5",
                claim="The wireless last mile remains the primary bottleneck",
                holds=wifi > 1.4 * atlas,
                evidence=f"wireless median {wifi:.1f} ms vs wired {atlas:.1f} ms",
            )
        )
    if wifi is not None and cell is not None:
        checks.append(
            TakeawayCheck(
                section="5",
                claim="The type of wireless access (WiFi vs cellular) matters little",
                holds=abs(wifi - cell) / wifi < 0.4,
                evidence=f"WiFi {wifi:.1f} ms vs cellular {cell:.1f} ms",
            )
        )
    return checks


def _check_section_6(world, dataset, context) -> List[TakeawayCheck]:
    fig10 = run_experiment("fig10", world, dataset, context=context)
    hypergiants = [
        fig10.data[code]["direct"]
        for code in ("AMZN", "GCP", "MSFT")
        if code in fig10.data
    ]
    small = [
        fig10.data[code]["two_plus"]
        for code in ("VLTR", "LIN", "ORCL")
        if code in fig10.data
    ]
    return [
        TakeawayCheck(
            section="6.1",
            claim="Hypergiants usually peer directly with clients' ISPs (>50%)",
            holds=bool(hypergiants) and min(hypergiants) > 0.5,
            evidence=f"direct shares: {', '.join(f'{s:.0%}' for s in hypergiants)}",
        ),
        TakeawayCheck(
            section="6.1",
            claim="Smaller providers mostly rely on the public Internet",
            holds=bool(small) and min(small) > 0.5,
            evidence=f"2+ AS shares: {', '.join(f'{s:.0%}' for s in small)}",
        ),
    ]


_SECTION_CHECKS: Dict[str, Callable] = {
    "4.1": _check_section_41,
    "4.2": _check_section_42,
    "4.3": _check_section_43,
    "5": _check_section_5,
    "6": _check_section_6,
}


def evaluate_takeaways(
    world,
    dataset: MeasurementDataset,
    context: Optional[StudyContext] = None,
) -> List[TakeawayCheck]:
    """Evaluate every takeaway box of the paper against a study."""
    if context is None:
        context = StudyContext(world, dataset)
    checks: List[TakeawayCheck] = []
    for runner in _SECTION_CHECKS.values():
        checks.extend(runner(world, dataset, context))
    return checks


def render_takeaways(checks: List[TakeawayCheck]) -> str:
    """A text report, one line per takeaway."""
    lines = []
    for check in checks:
        status = "HOLDS " if check.holds else "BROKEN"
        lines.append(f"[{status}] §{check.section}: {check.claim}")
        lines.append(f"         evidence: {check.evidence}")
    passed = sum(1 for check in checks if check.holds)
    lines.append(f"{passed}/{len(checks)} takeaways hold")
    return "\n".join(lines)
