"""Last-mile experiments: Figs. 7a, 7b, 8, 9 and 19 (paper section 5)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.lastmile import (
    ATLAS,
    CELL,
    FIG9_COUNTRIES,
    HOME_RTR_ISP,
    HOME_USR_ISP,
    absolute_by_continent,
    cv_by_continent,
    cv_by_country,
    extract_last_mile,
    filter_to_nearest,
    share_by_continent,
)
from repro.analysis.report import format_table
from repro.experiments.common import ExperimentResult, StudyContext, require_dataset
from repro.geo.continents import Continent


def _context(world, dataset, context: Optional[StudyContext]) -> StudyContext:
    if context is not None:
        return context
    return StudyContext(world, dataset)


def _render_grouped(stats: Dict[Tuple, object], key_headers) -> str:
    rows = []
    for key, box in sorted(stats.items(), key=lambda item: tuple(map(str, item[0]))):
        rows.append(
            [
                *[str(part) for part in key],
                box.count,
                f"{box.q1:.1f}",
                f"{box.median:.1f}",
                f"{box.q3:.1f}",
            ]
        )
    return format_table([*key_headers, "N", "Q1", "Median", "Q3"], rows)


def run_fig7a(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 7a: last-mile share of total cloud access latency."""
    dataset = require_dataset(dataset, "fig7a")
    ctx = _context(world, dataset, context)
    samples = extract_last_mile(ctx.resolved_traces)
    stats = share_by_continent(samples)
    data = {
        (continent.value, category): box.median
        for (continent, category), box in stats.items()
    }
    return ExperimentResult(
        experiment_id="fig7a",
        title="Wireless last-mile share of cloud access latency [%]",
        body=_render_grouped(stats, ["Continent", "Category"]),
        data={"median_share_pct": data},
    )


def run_fig7b(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 7b: absolute last-mile latency, including Atlas wired."""
    dataset = require_dataset(dataset, "fig7b")
    ctx = _context(world, dataset, context)
    samples = extract_last_mile(ctx.resolved_traces)
    stats = absolute_by_continent(samples)
    data = {
        (continent.value, category): box.median
        for (continent, category), box in stats.items()
    }
    global_medians: Dict[str, float] = {}
    for category in (HOME_USR_ISP, CELL, HOME_RTR_ISP, ATLAS):
        values = [s.latency_ms for s in samples if s.category == category]
        if values:
            values.sort()
            global_medians[category] = values[len(values) // 2]
    return ExperimentResult(
        experiment_id="fig7b",
        title="Absolute last-mile latency [ms]",
        body=_render_grouped(stats, ["Continent", "Category"]),
        data={"median_ms": data, "global_median_ms": global_medians},
    )


def run_fig8(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 8: coefficient of variation of the last mile per continent."""
    dataset = require_dataset(dataset, "fig8")
    ctx = _context(world, dataset, context)
    samples = extract_last_mile(ctx.resolved_traces)
    stats = cv_by_continent(samples)
    data = {
        (continent.value, category): box.median
        for (continent, category), box in stats.items()
    }
    return ExperimentResult(
        experiment_id="fig8",
        title="Last-mile latency Cv per continent",
        body=_render_grouped(stats, ["Continent", "Category"]),
        data={"median_cv": data},
    )


def run_fig9(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 9: last-mile Cv in representative countries."""
    dataset = require_dataset(dataset, "fig9")
    ctx = _context(world, dataset, context)
    samples = extract_last_mile(ctx.resolved_traces)
    stats = cv_by_country(samples, FIG9_COUNTRIES)
    data = {
        (country, category): box.median
        for (country, category), box in stats.items()
    }
    return ExperimentResult(
        experiment_id="fig9",
        title="Last-mile latency Cv in representative countries",
        body=_render_grouped(stats, ["Country", "Category"]),
        data={"median_cv": data},
    )


def run_fig19(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Fig. 19: last-mile share towards the *closest* datacenter."""
    dataset = require_dataset(dataset, "fig19")
    ctx = _context(world, dataset, context)
    nearest = ctx.nearest("speedchecker")
    traces = filter_to_nearest(ctx.resolved_traces, nearest)
    samples = extract_last_mile(traces)
    stats = share_by_continent(samples, categories=(HOME_USR_ISP, CELL), min_samples=3)
    data = {
        (continent.value, category): box.median
        for (continent, category), box in stats.items()
    }
    global_values = [
        100.0 * s.share_of_total
        for s in samples
        if s.share_of_total is not None and s.category in (HOME_USR_ISP, CELL)
    ]
    global_median = None
    if global_values:
        global_values.sort()
        global_median = global_values[len(global_values) // 2]
    return ExperimentResult(
        experiment_id="fig19",
        title="Last-mile share towards the nearest datacenter [%]",
        body=_render_grouped(stats, ["Continent", "Category"]),
        data={"median_share_pct": data, "global_median_pct": global_median},
    )
