"""Statistical-confidence experiment (paper section 3.3)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import format_table
from repro.analysis.stats import required_sample_size
from repro.experiments.common import ExperimentResult, StudyContext


def run_stats(world, dataset=None, context: Optional[StudyContext] = None) -> ExperimentResult:
    """Sample-size requirement n = z^2 p (1-p) / e^2.

    Reproduces the paper's ">2400 measurements per country" bar at 95%
    confidence and a 2% margin, and reports how many countries in the
    provided dataset clear a scale-adjusted bar.
    """
    paper_n = required_sample_size(confidence=0.95, margin_of_error=0.02)
    rows = [
        ["95%", "2%", paper_n],
        ["95%", "5%", required_sample_size(0.95, 0.05)],
        ["99%", "2%", required_sample_size(0.99, 0.02)],
    ]
    body = format_table(["Confidence", "Margin", "Required n"], rows)
    data = {"paper_requirement": paper_n}
    if dataset is not None:
        from repro.query import store_backing

        store = store_backing(dataset)
        if store is not None:
            # Store-backed fast path: the per-country sample counts are
            # one columnar group-by, no record materialization.
            result = (
                store.query()
                .pings()
                .where(platform="speedchecker")
                .group_by("country")
                .aggregate("samples")
                .run()
            )
            per_country = {
                row["group"]["country"]: row["samples"] for row in result.rows
            }
        else:
            per_country = {}
            for ping in dataset.pings(platform="speedchecker"):
                per_country[ping.meta.country] = (
                    per_country.get(ping.meta.country, 0) + len(ping.samples)
                )
        scaled_bar = max(10, int(paper_n * world.config.scale))
        cleared = sum(1 for count in per_country.values() if count >= scaled_bar)
        body += (
            f"\nScale-adjusted bar: {scaled_bar} samples; "
            f"{cleared}/{len(per_country)} countries clear it"
        )
        data.update(
            {
                "scaled_bar": scaled_bar,
                "countries_cleared": cleared,
                "countries_total": len(per_country),
            }
        )
    return ExperimentResult(
        experiment_id="stats",
        title="Measurement sample-size requirements",
        body=body,
        data=data,
    )
