"""Command-line interface.

Subcommands::

    python -m repro summary                     # world inventory
    python -m repro list                        # registered experiments
    python -m repro campaign --days 14 -o d.jsonl.gz
    python -m repro experiment fig4 [--dataset d.jsonl.gz]
    python -m repro reproduce [--days 21]       # every artifact

All subcommands accept ``--seed`` and ``--scale``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import build_world, run_campaign, run_campaign_checkpointed
from repro.experiments import (
    EXPERIMENT_IDS,
    StudyContext,
    evaluate_takeaways,
    experiment_info,
    render_takeaways,
    run_experiment,
)
from repro.faults import RetryPolicy, load_fault_config
from repro.measure.io import load_dataset, save_dataset
from repro.netfaults import load_netfault_config
from repro.store import DatasetStore, StoreError


def _load_any_dataset(path: str):
    """Load a dataset argument: a JSONL file or a store run directory."""
    if Path(path).is_dir():
        return DatasetStore.open(path).dataset()
    return load_dataset(path)


def _scale_argument(text: str) -> float:
    """Parse ``--scale``, rejecting values outside (0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a number, got {text!r}")
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"scale must be in (0, 1], got {value}; 1.0 is the paper's "
            "full 115k-probe deployment"
        )
    return value


def _add_world_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="master RNG seed")
    parser.add_argument(
        "--scale",
        type=_scale_argument,
        default=0.02,
        help="fleet scale factor in (0, 1]; 1.0 = the paper's 115k probes",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Cloudy with a Chance of Short RTTs' (IMC 2021)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser("summary", help="print the world inventory")
    _add_world_arguments(summary)

    subparsers.add_parser("list", help="list registered experiments")

    campaign = subparsers.add_parser(
        "campaign", help="run a measurement campaign and save the dataset"
    )
    _add_world_arguments(campaign)
    campaign.add_argument("--days", type=int, default=14)
    output_group = campaign.add_mutually_exclusive_group(required=True)
    output_group.add_argument(
        "-o", "--output", help="output path (.jsonl or .jsonl.gz)"
    )
    output_group.add_argument(
        "--store",
        help=(
            "checkpointed run directory: each completed (platform, day) "
            "unit is journaled as binary shards; re-running with the same "
            "directory resumes an interrupted campaign"
        ),
    )
    campaign.add_argument(
        "--fault-config",
        default=None,
        help=(
            "JSON file of fault-injection rates (see docs/ROBUSTNESS.md); "
            "requires --store"
        ),
    )
    campaign.add_argument(
        "--netfault-config",
        default=None,
        help=(
            "JSON file of network event rates (see docs/DYNAMIC_TOPOLOGY.md): "
            "seeded link failures, peering flaps, and regional outages on a "
            "virtual-time timeline; requires --store"
        ),
    )
    campaign.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help=(
            "retry budget per unit under fault injection (default 3); "
            "requires --store"
        ),
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for unit execution (default 1 = serial); "
            "the resulting store is byte-identical at any worker count; "
            "requires --store (see docs/PARALLELISM.md)"
        ),
    )

    experiment = subparsers.add_parser(
        "experiment", help="run one experiment by its paper artifact id"
    )
    _add_world_arguments(experiment)
    experiment.add_argument("experiment_id", choices=sorted(EXPERIMENT_IDS))
    experiment.add_argument(
        "--dataset",
        default=None,
        help=(
            "dataset file or store run directory from 'repro campaign' "
            "(collected fresh if omitted)"
        ),
    )
    experiment.add_argument("--days", type=int, default=14)

    reproduce = subparsers.add_parser(
        "reproduce", help="regenerate every table and figure"
    )
    _add_world_arguments(reproduce)
    reproduce.add_argument("--days", type=int, default=21)

    takeaways = subparsers.add_parser(
        "takeaways", help="check the paper's takeaway boxes against a study"
    )
    _add_world_arguments(takeaways)
    takeaways.add_argument("--days", type=int, default=14)
    takeaways.add_argument(
        "--dataset",
        default=None,
        help="dataset file or store run directory from 'repro campaign'",
    )

    service = subparsers.add_parser(
        "service",
        help=(
            "run the live measurement service: HTTP/JSON campaign "
            "submission, NDJSON streaming, warehouse queries "
            "(see docs/SERVICE.md)"
        ),
        add_help=False,
    )
    service.add_argument(
        "service_args", nargs=argparse.REMAINDER, help=argparse.SUPPRESS
    )

    return parser


def _command_summary(args) -> int:
    world = build_world(seed=args.seed, scale=args.scale)
    print(world.summary())
    return 0


def _command_list(args) -> int:
    for experiment_id in EXPERIMENT_IDS:
        info = experiment_info(experiment_id)
        needs = "dataset" if info.needs_dataset else "world-only"
        print(f"{experiment_id:8s}  {info.paper_artifact:24s}  [{needs}]")
    return 0


def _command_campaign(args) -> int:
    if (
        args.fault_config
        or args.netfault_config
        or args.max_attempts is not None
        or args.workers != 1
    ) and not args.store:
        print(
            "error: --fault-config/--netfault-config/--max-attempts/--workers "
            "require --store",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    world = build_world(seed=args.seed, scale=args.scale)
    print(world.summary(), file=sys.stderr)
    started = time.time()
    if args.store:
        try:
            faults = (
                load_fault_config(args.fault_config)
                if args.fault_config
                else None
            )
            netfaults = (
                load_netfault_config(args.netfault_config)
                if args.netfault_config
                else None
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        retry = (
            RetryPolicy(max_attempts=args.max_attempts)
            if args.max_attempts is not None
            else None
        )
        store = run_campaign_checkpointed(
            world,
            args.store,
            days=args.days,
            faults=faults,
            netfaults=netfaults,
            retry=retry,
            workers=args.workers,
        )
        print(
            f"Store {store.run_dir} complete: {store.ping_count} pings "
            f"({store.ping_sample_count} samples), "
            f"{store.traceroute_count} traceroutes across "
            f"{len(store.completed_units())} units "
            f"in {time.time() - started:.1f}s",
            file=sys.stderr,
        )
        coverage = store.coverage()
        if coverage.partial or coverage.skipped:
            print(
                f"coverage: {coverage.completed} complete, "
                f"{coverage.partial} partial, {coverage.skipped} skipped "
                f"of {coverage.planned} planned units",
                file=sys.stderr,
            )
        return 0
    dataset = run_campaign(world, days=args.days)
    lines = save_dataset(dataset, args.output)
    print(
        f"Wrote {lines} measurements ({dataset.ping_sample_count} ping "
        f"samples, {dataset.traceroute_count} traceroutes) to "
        f"{args.output} in {time.time() - started:.1f}s",
        file=sys.stderr,
    )
    return 0


def _command_experiment(args) -> int:
    world = build_world(seed=args.seed, scale=args.scale)
    info = experiment_info(args.experiment_id)
    dataset = None
    if info.needs_dataset:
        if args.dataset:
            dataset = _load_any_dataset(args.dataset)
        else:
            print(
                f"Collecting a fresh {args.days}-day dataset ...",
                file=sys.stderr,
            )
            dataset = run_campaign(world, days=args.days)
    result = run_experiment(args.experiment_id, world, dataset)
    print(result.render())
    return 0


def _command_reproduce(args) -> int:
    world = build_world(seed=args.seed, scale=args.scale)
    print(world.summary(), file=sys.stderr)
    dataset = run_campaign(world, days=args.days)
    context = StudyContext(world, dataset)
    for experiment_id in EXPERIMENT_IDS:
        print()
        result = run_experiment(experiment_id, world, dataset, context=context)
        print(result.render())
    return 0


def _command_takeaways(args) -> int:
    world = build_world(seed=args.seed, scale=args.scale)
    if args.dataset:
        dataset = _load_any_dataset(args.dataset)
    else:
        print(f"Collecting a fresh {args.days}-day dataset ...", file=sys.stderr)
        dataset = run_campaign(world, days=args.days)
    checks = evaluate_takeaways(world, dataset)
    print(render_takeaways(checks))
    return 0 if all(check.holds for check in checks) else 1


def _command_service(args) -> int:
    # Delegates to the service's own parser so `python -m repro service`
    # and `python -m repro.service` accept identical arguments.
    from repro.service.__main__ import main as service_main

    return service_main(args.service_args)


_COMMANDS = {
    "summary": _command_summary,
    "list": _command_list,
    "campaign": _command_campaign,
    "experiment": _command_experiment,
    "reproduce": _command_reproduce,
    "takeaways": _command_takeaways,
    "service": _command_service,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["service"]:
        # The service owns its flags; argparse.REMAINDER cannot capture
        # a leading option token, so hand everything over before the
        # top-level parser sees (and rejects) it.
        from repro.service.__main__ import main as service_main

        return service_main(arguments[1:])
    args = _build_parser().parse_args(arguments)
    try:
        return _COMMANDS[args.command](args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
