"""The RIPE-Atlas-like measurement platform.

Atlas probes are dedicated hardware devices: almost always connected,
wired, and frequently hosted in managed networks.  There is no daily
quota in our usage model (the Corneo et al. dataset was collected over a
year of continuous measurements).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.platforms.probe import Probe


class AtlasPlatform:
    """A fleet of always-on, wired hardware probes."""

    name = "atlas"

    def __init__(self, probes: Sequence[Probe], rng: np.random.Generator):
        self._probes: List[Probe] = list(probes)
        self._by_id: Dict[str, Probe] = {p.probe_id: p for p in self._probes}
        self._by_country: Dict[str, List[Probe]] = {}
        for probe in self._probes:
            self._by_country.setdefault(probe.country, []).append(probe)
        self._availability = np.array(
            [probe.availability for probe in self._probes], dtype=np.float64
        )
        self._rng = rng

    def __len__(self) -> int:
        return len(self._probes)

    @property
    def probes(self) -> List[Probe]:
        return list(self._probes)

    def probe(self, probe_id: str) -> Probe:
        try:
            return self._by_id[probe_id]
        except KeyError:
            raise KeyError(f"unknown probe id {probe_id!r}") from None

    def probes_in_country(self, iso: str) -> List[Probe]:
        return list(self._by_country.get(iso, []))

    def countries(self) -> List[str]:
        return sorted(self._by_country)

    def connected_probes(
        self, rng: Optional[np.random.Generator] = None
    ) -> List[Probe]:
        """Probes online right now (availability is high but not perfect).

        One vectorized availability draw covers the whole fleet.  ``rng``
        overrides the platform's churn stream (checkpointed campaigns
        pass a per-day generator).
        """
        draws = (rng if rng is not None else self._rng).random(
            len(self._probes)
        )
        return [
            self._probes[i] for i in np.flatnonzero(draws < self._availability)
        ]
