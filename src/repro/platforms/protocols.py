"""Structural interfaces of the measurement platforms.

Campaign units only need the scheduling surface of a platform -- the
inventory queries, churn snapshots, selection API, and quota counters --
so those operations are captured here as :class:`typing.Protocol`
classes.  The resilient runner can then hand a unit either the real
platform or a fault-injecting wrapper from
:mod:`repro.faults.injectors` without the unit code knowing which it
got.
"""

from __future__ import annotations

import typing
from typing import List, Optional

import numpy as np

from repro.platforms.probe import Probe
from repro.platforms.speedchecker import VPSnapshot


class SpeedcheckerLike(typing.Protocol):
    """What campaign units require of a Speedchecker-style platform."""

    name: str

    def countries(self) -> List[str]: ...

    def countries_with_at_least(self, minimum: int) -> List[str]: ...

    def snapshot(
        self, day: int, hour: int, rng: Optional[np.random.Generator] = None
    ) -> VPSnapshot: ...

    def connected_in_country(
        self, iso: str, snapshot: VPSnapshot
    ) -> List[Probe]: ...

    def select_probes(
        self,
        iso: str,
        snapshot: VPSnapshot,
        count: int,
        pool: Optional[List[Probe]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Probe]: ...

    @property
    def daily_quota(self) -> int: ...

    @property
    def remaining_quota(self) -> int: ...

    def charge(self, requests: int = 1) -> None: ...

    def charge_up_to(self, requests: int) -> int: ...

    def refresh_quota(self) -> None: ...


class AtlasLike(typing.Protocol):
    """What campaign units require of an Atlas-style platform."""

    name: str

    def connected_probes(
        self, rng: Optional[np.random.Generator] = None
    ) -> List[Probe]: ...
