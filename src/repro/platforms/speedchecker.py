"""The Speedchecker-like measurement platform.

Models the operational quirks the paper had to work around (section 3.3):

- probes are transient: only a fraction of the fleet is connected at any
  snapshot, and the connected set churns between snapshots;
- experiments cannot pin probes; a per-region selection API picks from
  whatever is currently connected;
- a daily measurement quota refreshes at the end of each day;
- a self-imposed rate limit bounds requests per minute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SimulationConfig
from repro.platforms.probe import Probe


class QuotaExhausted(RuntimeError):
    """Raised when a measurement request exceeds the daily budget."""


@dataclass
class VPSnapshot:
    """One connected-VP inventory record (the paper logged these 4-hourly)."""

    day: int
    hour: int
    probe_ids: List[str]
    #: Lazily-built id set, shared by every per-country membership scan
    #: against this snapshot.
    _id_set: Optional[frozenset] = field(default=None, repr=False, compare=False)

    @property
    def probe_id_set(self) -> frozenset:
        if self._id_set is None:
            self._id_set = frozenset(self.probe_ids)
        return self._id_set


class SpeedcheckerPlatform:
    """A fleet of Android probes with churn, quota and regional selection."""

    name = "speedchecker"

    def __init__(self, probes: Sequence[Probe], config: SimulationConfig, rng: np.random.Generator):
        self._probes: List[Probe] = list(probes)
        self._by_id: Dict[str, Probe] = {p.probe_id: p for p in self._probes}
        self._by_country: Dict[str, List[Probe]] = {}
        for probe in self._probes:
            self._by_country.setdefault(probe.country, []).append(probe)
        self._config = config
        self._rng = rng
        self._availability = np.array(
            [probe.availability for probe in self._probes], dtype=np.float64
        )
        self._daily_quota = config.scaled(
            config.platforms.speedchecker_daily_quota, minimum=50
        )
        self._used_today = 0
        self._snapshots: List[VPSnapshot] = []

    # -- fleet inventory ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._probes)

    @property
    def probes(self) -> List[Probe]:
        return list(self._probes)

    def probe(self, probe_id: str) -> Probe:
        try:
            return self._by_id[probe_id]
        except KeyError:
            raise KeyError(f"unknown probe id {probe_id!r}") from None

    def probes_in_country(self, iso: str) -> List[Probe]:
        return list(self._by_country.get(iso, []))

    def countries(self) -> List[str]:
        return sorted(self._by_country)

    def countries_with_at_least(self, minimum: int) -> List[str]:
        """Countries that clear the probe-count bar for the cycle."""
        return sorted(
            iso
            for iso, probes in self._by_country.items()
            if len(probes) >= minimum
        )

    # -- connectivity churn --------------------------------------------------

    def snapshot(
        self, day: int, hour: int, rng: Optional[np.random.Generator] = None
    ) -> VPSnapshot:
        """Record the currently-connected probe set (4-hourly API sweep).

        One vectorized availability draw covers the whole fleet instead
        of one scalar draw per probe.  ``rng`` overrides the platform's
        churn stream -- checkpointed campaigns pass a per-day generator
        so a day's connected set does not depend on earlier days.
        """
        draws = (rng if rng is not None else self._rng).random(
            len(self._probes)
        )
        connected = [
            self._probes[i].probe_id
            for i in np.flatnonzero(draws < self._availability)
        ]
        record = VPSnapshot(day=day, hour=hour, probe_ids=connected)
        self._snapshots.append(record)
        return record

    @property
    def snapshots(self) -> List[VPSnapshot]:
        return list(self._snapshots)

    def connected_in_country(
        self, iso: str, snapshot: VPSnapshot
    ) -> List[Probe]:
        connected = snapshot.probe_id_set
        return [
            probe
            for probe in self._by_country.get(iso, [])
            if probe.probe_id in connected
        ]

    # -- selection and quota ---------------------------------------------------

    def select_probes(
        self,
        iso: str,
        snapshot: VPSnapshot,
        count: int,
        pool: Optional[List[Probe]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Probe]:
        """The platform's in-built per-region probe selection.

        Returns up to ``count`` connected probes in the country, chosen by
        the platform (the experimenter cannot pin specific devices).
        ``pool`` lets a caller that already scanned the country's
        connected probes skip the second membership pass.  ``rng``
        overrides the platform's selection stream (checkpointed
        campaigns pass a per-day generator).
        """
        if pool is None:
            pool = self.connected_in_country(iso, snapshot)
        if len(pool) <= count:
            return pool
        picks = (rng if rng is not None else self._rng).choice(
            len(pool), size=count, replace=False
        )
        return [pool[int(i)] for i in picks]

    @property
    def daily_quota(self) -> int:
        return self._daily_quota

    @property
    def remaining_quota(self) -> int:
        return self._daily_quota - self._used_today

    def charge(self, requests: int = 1) -> None:
        """Charge ``requests`` API calls against today's budget."""
        if requests < 0:
            raise ValueError("requests must be non-negative")
        if self._used_today + requests > self._daily_quota:
            raise QuotaExhausted(
                f"daily quota of {self._daily_quota} requests exhausted"
            )
        self._used_today += requests

    def charge_up_to(self, requests: int) -> int:
        """Charge as many of ``requests`` as the budget allows.

        Returns the number actually granted (possibly zero).  Campaign
        units use this to degrade gracefully when the quota runs out
        mid-unit -- the granted prefix is kept and journaled as partial
        instead of losing the whole unit.
        """
        if requests < 0:
            raise ValueError("requests must be non-negative")
        granted = min(requests, self.remaining_quota)
        self._used_today += granted
        return granted

    def refresh_quota(self) -> None:
        """Reset the daily budget (called at each simulated midnight)."""
        self._used_today = 0
