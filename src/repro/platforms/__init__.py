"""Measurement platforms: probes, deployment, Speedchecker and RIPE Atlas."""

from repro.platforms.atlas import AtlasPlatform
from repro.platforms.deployment import deploy_probes
from repro.platforms.probe import Probe
from repro.platforms.protocols import AtlasLike, SpeedcheckerLike
from repro.platforms.speedchecker import QuotaExhausted, SpeedcheckerPlatform

__all__ = [
    "AtlasLike",
    "AtlasPlatform",
    "Probe",
    "QuotaExhausted",
    "SpeedcheckerLike",
    "SpeedcheckerPlatform",
    "deploy_probes",
]
