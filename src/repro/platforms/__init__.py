"""Measurement platforms: probes, deployment, Speedchecker and RIPE Atlas."""

from repro.platforms.atlas import AtlasPlatform
from repro.platforms.deployment import deploy_probes
from repro.platforms.probe import Probe
from repro.platforms.speedchecker import SpeedcheckerPlatform

__all__ = [
    "AtlasPlatform",
    "Probe",
    "SpeedcheckerPlatform",
    "deploy_probes",
]
