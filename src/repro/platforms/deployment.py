"""Probe deployment engines.

Probe counts per country are proportional to the country's Internet-user
population times a per-platform bias (see
:mod:`repro.geo.countries`), reproducing the deployment skews the paper
documents for both platforms.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.config import SimulationConfig
from repro.geo.continents import Continent
from repro.geo.coords import jitter_point
from repro.geo.countries import Country, CountryRegistry
from repro.lastmile.base import AccessKind
from repro.net.asn import ASRegistry
from repro.net.ip import parse_ip
from repro.platforms.probe import Probe

#: Device-side private address used by home probes behind a NAT router.
_HOME_DEVICE_ADDRESS = parse_ip("192.168.1.2")
#: Fraction of home probes whose traffic appears with a public first hop
#: (VPN / CGN artifacts) and therefore gets misclassified as cellular by
#: the traceroute heuristic -- a caveat the paper calls out in section 5.
_HOME_PUBLIC_ARTIFACT_SHARE = 0.02

#: Continent shares of each fleet, from the paper's Fig. 1b
#: (Speedchecker: EU 72k, AS 31k, NA 5.4k, AF 4k, SA 2.8k, OC 351) and
#: Fig. 2 (Atlas: EU 5574, AS 1083, NA 866, AF 261, SA 216, OC 289).
_FLEET_CONTINENT_SHARE: Dict[str, Dict[Continent, float]] = {
    "speedchecker": {
        Continent.EU: 0.622,
        Continent.AS: 0.268,
        Continent.NA: 0.047,
        Continent.AF: 0.035,
        Continent.SA: 0.024,
        Continent.OC: 0.004,
    },
    "atlas": {
        Continent.EU: 0.672,
        Continent.AS: 0.131,
        Continent.NA: 0.104,
        Continent.AF: 0.031,
        Continent.SA: 0.026,
        Continent.OC: 0.036,
    },
}


def _country_weights(
    countries: CountryRegistry, platform: str, continent: Continent
) -> Dict[str, float]:
    weights: Dict[str, float] = {}
    for country in countries.in_continent(continent):
        bias = (
            country.speedchecker_bias
            if platform == "speedchecker"
            else country.atlas_bias
        )
        weights[country.iso] = country.internet_users_m * bias
    return weights


def deploy_probes(
    platform: str,
    total: int,
    countries: CountryRegistry,
    registry: ASRegistry,
    config: SimulationConfig,
    rng: np.random.Generator,
) -> List[Probe]:
    """Deploy ``total`` probes for ``platform`` across all countries.

    ``platform`` is ``"speedchecker"`` (Android, wireless) or ``"atlas"``
    (hardware, wired).  Continent totals follow the paper's published
    fleet distributions (Figs. 1b and 2); within a continent, probes are
    placed proportionally to Internet-user population times the
    documented per-country deployment bias.  Every country receives at
    least one probe so analyses can always group by country.
    """
    if platform not in ("speedchecker", "atlas"):
        raise ValueError(f"unknown platform {platform!r}")
    if total < len(countries):
        total = len(countries)
    probes: List[Probe] = []
    counter = 0
    for continent, continent_share in _FLEET_CONTINENT_SHARE[platform].items():
        weights = _country_weights(countries, platform, continent)
        weight_sum = sum(weights.values())
        if weight_sum == 0:
            continue
        continent_total = continent_share * total
        for country in countries.in_continent(continent):
            share = weights[country.iso] / weight_sum
            count = max(1, int(round(continent_total * share)))
            probes.extend(
                _deploy_in_country(
                    platform, country, count, registry, config, rng, counter
                )
            )
            counter += count
    return probes


def _deploy_in_country(
    platform: str,
    country: Country,
    count: int,
    registry: ASRegistry,
    config: SimulationConfig,
    rng: np.random.Generator,
    id_offset: int,
) -> List[Probe]:
    isps = registry.access_in_country(country.iso)
    if not isps:
        raise ValueError(f"no access ISPs registered in {country.iso}")
    platform_config = config.platforms
    probes: List[Probe] = []
    for index in range(count):
        isp = isps[int(rng.integers(0, len(isps)))]
        location = jitter_point(country.centroid, country.spread_radius_km, rng)
        probe_id = f"{platform[:2]}-{country.iso}-{id_offset + index}"
        # Public address from the ISP's first prefix, deterministic per probe.
        prefix = isp.prefixes[0]
        public_address = prefix.address_at(
            2 + ((id_offset + index) % (prefix.size - 4))
        )
        quality = float(np.exp(0.20 * rng.standard_normal()))
        if platform == "speedchecker":
            access = _speedchecker_access(platform_config, config, rng)
            # min/max instead of np.clip: bit-identical on scalars and
            # ~8x cheaper, and this runs once per deployed probe.
            availability = float(
                min(
                    0.95,
                    max(
                        0.02,
                        platform_config.speedchecker_availability
                        + 0.15 * rng.standard_normal(),
                    ),
                )
            )
            managed = False
        else:
            access = AccessKind.WIRED
            availability = float(
                min(1.0, max(0.5, 0.9 + 0.08 * rng.standard_normal()))
            )
            managed = rng.random() < platform_config.atlas_managed_share
        if access is AccessKind.HOME_WIFI:
            if rng.random() < _HOME_PUBLIC_ARTIFACT_SHARE:
                device_address = public_address  # VPN/CGN artifact
            else:
                device_address = _HOME_DEVICE_ADDRESS
        else:
            device_address = public_address
        probes.append(
            Probe(
                probe_id=probe_id,
                platform=platform,
                country=country.iso,
                continent=country.continent,
                location=location,
                isp_asn=isp.asn,
                access=access,
                device_address=device_address,
                public_address=public_address,
                quality=quality,
                availability=availability,
                managed=managed,
            )
        )
    return probes


def _speedchecker_access(
    platform_config, config: SimulationConfig, rng: np.random.Generator
) -> AccessKind:
    if not config.wireless_last_mile:
        return AccessKind.WIRED
    if rng.random() < platform_config.speedchecker_wifi_share:
        return AccessKind.HOME_WIFI
    return AccessKind.CELLULAR
