"""Probes: the vantage points of the study."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.continents import Continent
from repro.geo.coords import GeoPoint
from repro.lastmile.base import AccessKind
from repro.net.ip import format_ip

#: Cell size (degrees) for the <city, ASN> platform matching of Fig. 16.
CITY_CELL_DEGREES = 2.0


@dataclass
class Probe:
    """One vantage point.

    ``device_address`` is the address the probe itself reports:
    a private RFC 1918 address for home probes behind a NAT router, or a
    public/CGN address for cellular probes.  ``public_address`` is the
    address seen by the network (home router WAN side or cellular
    gateway); it belongs to the serving ISP's address space.
    """

    probe_id: str
    platform: str
    country: str
    continent: Continent
    location: GeoPoint
    isp_asn: int
    access: AccessKind
    device_address: int
    public_address: int
    #: Per-probe quality personality: multiplies last-mile medians so the
    #: fleet is heterogeneous (some homes have bad WiFi, some great).
    quality: float = 1.0
    #: Probability the probe is connected at any given snapshot.
    availability: float = 1.0
    #: True for probes hosted in managed (non-residential) networks --
    #: the RIPE Atlas deployment bias the paper highlights.
    managed: bool = False

    def __post_init__(self) -> None:
        if self.quality <= 0:
            raise ValueError(f"quality must be positive: {self.probe_id}")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(f"availability must be in (0, 1]: {self.probe_id}")

    @property
    def is_wireless(self) -> bool:
        return self.access.is_wireless

    @property
    def device_ip(self) -> str:
        return format_ip(self.device_address)

    @property
    def public_ip(self) -> str:
        return format_ip(self.public_address)

    def __repr__(self) -> str:
        return (
            f"Probe({self.probe_id}, {self.country}, {self.access}, "
            f"AS{self.isp_asn})"
        )


def city_key_for(probe: "Probe") -> Tuple[int, int]:
    """Quantize a probe location to a ~metro-sized grid cell."""
    return (
        int(round(probe.location.lat / CITY_CELL_DEGREES)),
        int(round(probe.location.lon / CITY_CELL_DEGREES)),
    )
