"""Deterministic random-number streams.

Every stochastic component of the simulation draws from its own named
stream derived from a single master seed.  This keeps experiments
reproducible (same seed => same dataset) while preventing accidental
coupling between components: adding draws to the topology generator does
not perturb the last-mile latency sequence, for example.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def name_digest(name: str) -> int:
    """A stable, platform-independent 63-bit digest of a stream name.

    Used as the ``spawn_key`` of derived seed sequences so the mapping
    from name to stream is identical across processes and Python
    versions (unlike :func:`hash`, which is salted).
    """
    digest = 0
    for ch in name:
        digest = (digest * 1_000_003 + ord(ch)) % (2**63)
    return digest


class RngStreams:
    """A factory of independent, named :class:`numpy.random.Generator`.

    Streams are derived with ``SeedSequence.spawn``-style child sequences
    keyed by a stable hash of the stream name, so the mapping from name to
    stream is independent of creation order.
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same underlying sequence for a
        given master seed, regardless of how many other streams exist.
        """
        if not name:
            raise ValueError("stream name must be a non-empty string")
        if name not in self._streams:
            digest = name_digest(name)
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(digest,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def fork(self, name: str, index: int) -> np.random.Generator:
        """A per-entity generator, e.g. one stream per probe.

        Unlike :meth:`stream` the result is not cached; callers own it.
        """
        digest = name_digest(name)
        seq = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(digest, int(index))
        )
        return np.random.default_rng(seq)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, open_streams={len(self._streams)})"
