"""World topology: ASes, relationships, IXPs, and scoped policy routing.

The builder assembles the complete synthetic Internet:

- the Tier-1 full mesh (settlement-free peering among global carriers);
- three regional transit providers per continent, multihomed to Tier-1s;
- access ISPs per country -- the paper's named ISPs where the paper names
  them, synthetic ones elsewhere -- buying transit from regional providers
  and, with a continent-dependent probability, directly from a Tier-1
  carrier (the "carrier peering" substrate of section 6.1);
- one cloud AS per provider network with the interconnects drawn by
  :func:`repro.cloud.peering.build_provider_peering`.

PNIs are geographically scoped: a DigitalOcean PNI at a European carrier
PoP does not shorten paths from Asian ISPs.  :class:`Topology` therefore
computes routing tables per (provider network, source continent) over a
graph containing only the interconnects valid for that continent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from repro.cloud.peering import ProviderPeering, build_provider_peering
from repro.cloud.providers import (
    NETWORK_CODE_BY_PROVIDER,
    PROVIDERS,
    network_operator,
)
from repro.core.config import SimulationConfig
from repro.core.rng import RngStreams
from repro.datasets.carriers import TIER1_CARRIERS
from repro.datasets.isps import named_isps_by_country
from repro.datasets.ixps import IXP_SITES
from repro.geo.continents import Continent
from repro.geo.coords import GeoPoint, jitter_point
from repro.geo.countries import CountryRegistry
from repro.net.asn import AS, ASKind, ASRegistry, next_free_asn
from repro.net.ip import IPv4Prefix, PrefixAllocator
from repro.net.ixp import IXP, IXPRegistry
from repro.net.relationships import RelationshipGraph
from repro.net.routing import RoutePolicy, RoutingTable, compute_routes

#: Probability that an access ISP buys transit directly from a Tier-1
#: carrier, per continent.  High in well-provisioned regions, which is
#: what makes "1 intermediate AS" (private/carrier peering) the dominant
#: class for mid-sized providers in EU/NA (paper Figs. 10, 12a).
_CARRIER_CUSTOMER_SHARE: Dict[Continent, float] = {
    Continent.EU: 0.70,
    Continent.NA: 0.70,
    Continent.AS: 0.45,
    Continent.OC: 0.50,
    Continent.AF: 0.25,
    Continent.SA: 0.35,
}

#: Hub city per continent for regional transit homes.
_CONTINENT_HUBS: Dict[Continent, GeoPoint] = {
    Continent.EU: GeoPoint(50.11, 8.68),
    Continent.NA: GeoPoint(41.88, -87.63),
    Continent.SA: GeoPoint(-23.55, -46.63),
    Continent.AS: GeoPoint(1.35, 103.82),
    Continent.AF: GeoPoint(-26.20, 28.05),
    Continent.OC: GeoPoint(-33.87, 151.21),
}

_REGIONALS_PER_CONTINENT = 3
#: First ASN for synthetically generated networks (real ASNs stay below).
_SYNTHETIC_ASN_BASE = 200_000


@dataclass
class Topology:
    """The assembled AS-level world with scoped routing."""

    registry: ASRegistry
    base_graph: RelationshipGraph
    ixps: IXPRegistry
    peerings: Dict[str, ProviderPeering]
    policy: RoutePolicy = RoutePolicy.VALLEY_FREE
    tier1_asns: Tuple[int, ...] = ()
    _graph_cache: Dict[Tuple[str, Continent], RelationshipGraph] = field(
        default_factory=dict, repr=False
    )
    _route_cache: Dict[Tuple[str, Continent], RoutingTable] = field(
        default_factory=dict, repr=False
    )

    def network_code(self, provider_code: str) -> str:
        """Resolve a provider code to its network operator's code."""
        code = NETWORK_CODE_BY_PROVIDER.get(provider_code)
        if code is None:
            return network_operator(provider_code).code
        return code

    def peering_for(self, provider_code: str) -> ProviderPeering:
        return self.peerings[self.network_code(provider_code)]

    def graph_for(
        self, provider_code: str, source_continent: Continent
    ) -> RelationshipGraph:
        """Base graph plus the provider's interconnects valid for sources
        in ``source_continent``."""
        network = self.network_code(provider_code)
        key = (network, Continent(source_continent))
        if key in self._graph_cache:
            return self._graph_cache[key]
        peering = self.peerings[network]
        graph = self.base_graph.clone()
        cloud_asn = peering.cloud_asn
        for tier1 in peering.transit_tier1s:
            graph.add_customer_provider(cloud_asn, tier1)
        for carrier in peering.pni_in(key[1]):
            if carrier not in peering.transit_tier1s:
                graph.add_peering(cloud_asn, carrier)
        for isp_asn, ixp_id in peering.direct_isps.items():
            graph.add_peering(isp_asn, cloud_asn, ixp_id=ixp_id)
        self._graph_cache[key] = graph
        return graph

    def routes_for(
        self, provider_code: str, source_continent: Continent
    ) -> RoutingTable:
        """Routing table towards the provider's cloud AS, scoped to
        sources in ``source_continent``."""
        network = self.network_code(provider_code)
        key = (network, Continent(source_continent))
        if key in self._route_cache:
            return self._route_cache[key]
        graph = self.graph_for(network, key[1])
        table = compute_routes(graph, self.peerings[network].cloud_asn, self.policy)
        self._route_cache[key] = table
        return table

    def as_path(
        self, isp_asn: int, provider_code: str, source_continent: Continent
    ) -> Optional[List[int]]:
        """AS-level path from a serving ISP to a provider's network."""
        return self.routes_for(provider_code, source_continent).as_path(isp_asn)


def build_topology(
    countries: CountryRegistry,
    config: SimulationConfig,
    rngs: RngStreams,
) -> Topology:
    """Assemble the full synthetic AS-level Internet."""
    rng = rngs.stream("topology")
    registry = ASRegistry()
    graph = RelationshipGraph()
    allocator = PrefixAllocator(IPv4Prefix.parse("11.0.0.0/8"))
    ixp_allocator = PrefixAllocator(IPv4Prefix.parse("12.0.0.0/12"))

    # --- IXPs ------------------------------------------------------------
    ixps = IXPRegistry()
    for index, site in enumerate(IXP_SITES, start=1):
        ixps.add(
            IXP(
                ixp_id=index,
                name=site.name,
                location=site.location,
                continent=site.continent,
                peering_lan=ixp_allocator.allocate(24),
            )
        )

    # --- Tier-1 mesh -------------------------------------------------------
    tier1_asns: List[int] = []
    for carrier in TIER1_CARRIERS:
        registry.add(
            AS(
                asn=carrier.asn,
                name=carrier.name,
                kind=ASKind.TIER1,
                country=carrier.country,
                continent=countries.get(carrier.country).continent,
                home=carrier.home,
                prefixes=[allocator.allocate(19)],
            )
        )
        tier1_asns.append(carrier.asn)
    for i, a in enumerate(tier1_asns):
        for b in tier1_asns[i + 1 :]:
            graph.add_peering(a, b)

    # --- Regional transit providers ---------------------------------------
    regionals_by_continent: Dict[Continent, List[int]] = {}
    next_asn = _SYNTHETIC_ASN_BASE
    for continent in Continent:
        hub = _CONTINENT_HUBS[continent]
        regionals: List[int] = []
        for index in range(_REGIONALS_PER_CONTINENT):
            asn = next_free_asn(registry, next_asn)
            next_asn = asn + 1
            registry.add(
                AS(
                    asn=asn,
                    name=f"{continent.value}-Transit-{index + 1}",
                    kind=ASKind.TRANSIT,
                    country=None,
                    continent=continent,
                    home=jitter_point(hub, 500.0, rng),
                    prefixes=[allocator.allocate(19)],
                )
            )
            regionals.append(asn)
            # Multihome each regional to 2-3 Tier-1s.
            upstream_count = int(rng.integers(2, 4))
            picks = rng.choice(len(tier1_asns), size=upstream_count, replace=False)
            for pick in sorted(int(p) for p in picks):
                graph.add_customer_provider(asn, tier1_asns[pick])
        regionals_by_continent[continent] = regionals

    # --- Access ISPs per country -------------------------------------------
    named = named_isps_by_country()
    low, high = config.access_isps_per_country
    for country in countries:
        specs = named.get(country.iso, [])
        target = max(len(specs), int(rng.integers(low, high + 1)))
        for index in range(target):
            if index < len(specs):
                spec = specs[index]
                asn, name = spec.asn, spec.name
                if asn in registry:
                    continue
            else:
                asn = next_free_asn(registry, next_asn)
                next_asn = asn + 1
                name = f"{country.name} ISP-{index + 1}"
            isp = registry.add(
                AS(
                    asn=asn,
                    name=name,
                    kind=ASKind.ACCESS,
                    country=country.iso,
                    continent=country.continent,
                    home=jitter_point(
                        country.centroid, country.spread_radius_km * 0.5, rng
                    ),
                    prefixes=[allocator.allocate(18)],
                )
            )
            # Transit from 1-2 regionals of the home continent.
            regionals = regionals_by_continent[country.continent]
            transit_count = 1 if rng.random() < 0.5 else 2
            picks = rng.choice(len(regionals), size=min(transit_count, len(regionals)), replace=False)
            for pick in sorted(int(p) for p in picks):
                graph.add_customer_provider(isp.asn, regionals[pick])
            # Optionally buy transit from a Tier-1 carrier directly.
            if rng.random() < _CARRIER_CUSTOMER_SHARE[country.continent]:
                carrier = tier1_asns[int(rng.integers(0, len(tier1_asns)))]
                graph.add_customer_provider(isp.asn, carrier)

    # --- Cloud provider networks --------------------------------------------
    ixps_by_continent = {
        continent: ixps.in_continent(continent) for continent in Continent
    }
    peerings: Dict[str, ProviderPeering] = {}
    for provider in PROVIDERS:
        if not provider.owns_network:
            continue
        registry.add(
            AS(
                asn=provider.asn,
                name=provider.name,
                kind=ASKind.CLOUD,
                country=None,
                continent=None,
                home=GeoPoint(39.04, -77.49),
                prefixes=[allocator.allocate(15)],
                provider_code=provider.code,
            )
        )
        peerings[provider.code] = build_provider_peering(
            provider,
            tier1_asns,
            registry.of_kind(ASKind.ACCESS),
            ixps_by_continent,
            rngs.stream(f"peering.{provider.code}"),
            regionals_by_continent=regionals_by_continent,
        )

    policy = (
        RoutePolicy.VALLEY_FREE
        if config.valley_free_routing
        else RoutePolicy.SHORTEST
    )
    return Topology(
        registry=registry,
        base_graph=graph,
        ixps=ixps,
        peerings=peerings,
        policy=policy,
        tier1_asns=tuple(tier1_asns),
    )
