"""Scenario builders: construct a complete :class:`~repro.core.world.World`."""

from __future__ import annotations

import gc
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.cloud.providers import PROVIDERS, network_operator
from repro.cloud.regions import REGIONS, RegionCatalog
from repro.cloud.wan import PrivateWAN
from repro.core.config import SimulationConfig
from repro.core.rng import RngStreams
from repro.core.topology import Topology, build_topology
from repro.core.world import World
from repro.geo.countries import CountryRegistry, default_registry
from repro.platforms.atlas import AtlasPlatform
from repro.platforms.deployment import deploy_probes
from repro.platforms.speedchecker import SpeedcheckerPlatform

#: Addresses reserved per region inside the cloud AS prefix; region
#: endpoints are spaced this far apart so VM addresses never collide.
_REGION_ADDRESS_STRIDE = 2048


def build_world(
    seed: int = 7,
    scale: float = 0.02,
    config: Optional[SimulationConfig] = None,
    countries: Optional[CountryRegistry] = None,
) -> World:
    """Build the default study world.

    ``scale`` multiplies fleet sizes and quotas; 1.0 reproduces the
    paper's 115k-probe deployment, the default keeps everything
    laptop-sized while preserving every distributional shape.
    """
    if config is None:
        config = SimulationConfig(seed=seed, scale=scale)
    elif seed != config.seed or scale != config.scale:
        config = replace(config, seed=seed, scale=scale)
    registry = countries or default_registry()
    rngs = RngStreams(config.seed)

    topology = build_topology(registry, config, rngs)
    catalog = RegionCatalog(REGIONS)
    wans: Dict[str, PrivateWAN] = {}
    for provider in PROVIDERS:
        if provider.owns_network:
            wans[provider.code] = PrivateWAN.for_provider(provider)

    region_addresses = _assign_region_addresses(topology, catalog)

    speedchecker_probes = deploy_probes(
        "speedchecker",
        config.scaled(config.platforms.speedchecker_total_probes, minimum=200),
        registry,
        topology.registry,
        config,
        rngs.stream("deploy.speedchecker"),
    )
    atlas_probes = deploy_probes(
        "atlas",
        config.scaled(config.platforms.atlas_total_probes, minimum=100),
        registry,
        topology.registry,
        config,
        rngs.stream("deploy.atlas"),
    )

    world = World(
        config=config,
        rngs=rngs,
        countries=registry,
        topology=topology,
        catalog=catalog,
        providers=PROVIDERS,
        wans=wans,
        speedchecker=SpeedcheckerPlatform(
            speedchecker_probes, config, rngs.stream("platform.speedchecker")
        ),
        atlas=AtlasPlatform(atlas_probes, rngs.stream("platform.atlas")),
        region_addresses=region_addresses,
    )
    # The world's object graph (topology, probe fleets, routing inputs)
    # is static for its whole lifetime but large enough that every gen-2
    # garbage collection afterwards spends milliseconds re-traversing
    # it.  Park it in the collector's permanent generation -- after a
    # full collect so no garbage is frozen along with it.
    gc.collect()
    gc.freeze()
    return world


def _assign_region_addresses(
    topology: Topology, catalog: RegionCatalog
) -> Dict[Tuple[str, str], int]:
    """One VM endpoint address per region, inside the operator's prefix.

    Regions of offerings that share a network (Amazon EC2 and Lightsail)
    draw from the same prefix with a shared index space.
    """
    addresses: Dict[Tuple[str, str], int] = {}
    next_index: Dict[str, int] = {}
    for region in catalog:
        network = network_operator(region.provider_code).code
        cloud_as = topology.registry.cloud_for_provider(network)
        prefix = cloud_as.prefixes[0]
        index = next_index.get(network, 0)
        next_index[network] = index + 1
        offset = (index + 1) * _REGION_ADDRESS_STRIDE + 10
        if offset >= prefix.size:
            raise RuntimeError(
                f"cloud prefix {prefix} too small for region index {index}"
            )
        addresses[(region.provider_code, region.region_id)] = prefix.address_at(
            offset
        )
    return addresses
