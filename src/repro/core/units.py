"""Physical constants and latency unit helpers.

All latencies in this package are expressed in **milliseconds** and all
distances in **kilometres**.  Signal propagation in optical fibre runs at
roughly two thirds of the speed of light in vacuum, which gives the
rule-of-thumb used throughout the measurement literature: ~1 ms of one-way
delay per 200 km of fibre, i.e. ~1 ms of RTT per 100 km of great-circle
distance (before path stretch).
"""

from __future__ import annotations

#: Speed of light in vacuum, km/s.
SPEED_OF_LIGHT_KM_S = 299_792.458

#: Effective propagation speed in optical fibre (refractive index ~1.5).
SPEED_IN_FIBER_KM_S = SPEED_OF_LIGHT_KM_S * 2.0 / 3.0

MS_PER_SECOND = 1_000.0

#: One-way fibre delay per km, in milliseconds.
FIBER_PATH_MS_PER_KM = MS_PER_SECOND / SPEED_IN_FIBER_KM_S


def one_way_fiber_ms(distance_km: float, stretch: float = 1.0) -> float:
    """One-way propagation delay over ``distance_km`` of great-circle
    distance, inflated by a ``stretch`` factor for the physical fibre path.

    ``stretch`` must be >= 1: fibre never takes a shorter path than the
    great circle.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    if stretch < 1.0:
        raise ValueError(f"path stretch must be >= 1, got {stretch}")
    return distance_km * stretch * FIBER_PATH_MS_PER_KM


def geo_rtt_ms(distance_km: float, stretch: float = 1.0) -> float:
    """Round-trip propagation delay for a great-circle distance."""
    return 2.0 * one_way_fiber_ms(distance_km, stretch)
