"""The :class:`World` facade: everything a campaign needs, wired together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cloud.providers import CloudProvider
from repro.cloud.regions import CloudRegion, RegionCatalog
from repro.cloud.wan import PrivateWAN
from repro.core.config import SimulationConfig
from repro.core.rng import RngStreams
from repro.core.topology import Topology
from repro.geo.countries import CountryRegistry
from repro.measure.engine import MeasurementEngine
from repro.measure.path import PathPlanner
from repro.measure.targets import RegionTargeter
from repro.platforms.atlas import AtlasPlatform
from repro.platforms.speedchecker import SpeedcheckerPlatform


@dataclass
class World:
    """A fully-built synthetic Internet plus its measurement platforms.

    Use :func:`repro.core.scenario.build_world` to construct one; the
    constructor only wires pre-built components together.
    """

    config: SimulationConfig
    rngs: RngStreams
    countries: CountryRegistry
    topology: Topology
    catalog: RegionCatalog
    providers: Tuple[CloudProvider, ...]
    wans: Dict[str, PrivateWAN]
    speedchecker: SpeedcheckerPlatform
    atlas: AtlasPlatform
    region_addresses: Dict[Tuple[str, str], int]
    planner: PathPlanner = field(init=False)
    engine: MeasurementEngine = field(init=False)
    targeter: RegionTargeter = field(init=False)

    def __post_init__(self) -> None:
        self.targeter = RegionTargeter(self.catalog)
        self.planner = PathPlanner(
            topology=self.topology,
            wans=self.wans,
            region_addresses=self.region_addresses,
            config=self.config,
            rng=self.rngs.stream("planner"),
            countries=self.countries,
        )
        self.engine = MeasurementEngine(
            planner=self.planner,
            config=self.config,
            rng=self.rngs.stream("engine"),
        )

    # -- convenience lookups ------------------------------------------------

    def provider(self, code: str) -> CloudProvider:
        for provider in self.providers:
            if provider.code == code:
                return provider
        raise KeyError(f"unknown provider code {code!r}")

    def region(self, provider_code: str, region_id: str) -> CloudRegion:
        for region in self.catalog.for_provider(provider_code):
            if region.region_id == region_id:
                return region
        raise KeyError(f"unknown region {provider_code}:{region_id}")

    def region_address(self, region: CloudRegion) -> int:
        return self.region_addresses[(region.provider_code, region.region_id)]

    def summary(self) -> str:
        """One-paragraph inventory, useful in example scripts."""
        return (
            f"World(seed={self.config.seed}, scale={self.config.scale}): "
            f"{len(self.countries)} countries, "
            f"{len(self.topology.registry)} ASes, "
            f"{len(self.catalog)} cloud regions over "
            f"{len(self.providers)} providers, "
            f"{len(self.speedchecker)} Speedchecker probes, "
            f"{len(self.atlas)} Atlas probes"
        )
