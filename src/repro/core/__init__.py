"""Core utilities: units, RNG streams, configuration and the World facade."""

from repro.core.config import SimulationConfig
from repro.core.rng import RngStreams
from repro.core.units import (
    FIBER_PATH_MS_PER_KM,
    MS_PER_SECOND,
    SPEED_OF_LIGHT_KM_S,
    SPEED_IN_FIBER_KM_S,
    geo_rtt_ms,
    one_way_fiber_ms,
)
from repro.core.world import World

__all__ = [
    "FIBER_PATH_MS_PER_KM",
    "MS_PER_SECOND",
    "SPEED_OF_LIGHT_KM_S",
    "SPEED_IN_FIBER_KM_S",
    "RngStreams",
    "SimulationConfig",
    "World",
    "geo_rtt_ms",
    "one_way_fiber_ms",
]
