"""Simulation configuration.

A single :class:`SimulationConfig` object parameterises every layer of the
synthetic Internet.  The defaults are calibrated so that the reproduced
experiments exhibit the *shapes* reported by the paper (orderings,
threshold crossings, variance contrasts) -- see ``DESIGN.md`` section 4
for the calibration targets.

All config classes are plain frozen dataclasses so a configuration can be
shared between threads, hashed into cache keys, and compared in tests.
Use :func:`dataclasses.replace` to derive variants for ablations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class PathModelConfig:
    """How AS-level paths translate into propagation delay.

    Path *stretch* inflates the great-circle distance between the two ends
    to approximate the real fibre path.  Private WANs are engineered close
    to the geodesic; public transit paths detour through carrier hotels
    and exchange points, and the detour grows with the number of
    intermediate ASes.
    """

    #: Stretch for paths that ride a cloud provider's private WAN
    #: end-to-end (direct peering at the ISP edge).
    private_wan_stretch: float = 1.22
    #: Stretch for paths entering the WAN via a private interconnect
    #: (one intermediate carrier AS).
    private_peering_stretch: float = 1.38
    #: Base stretch for public-Internet transit paths.
    public_stretch: float = 1.62
    #: Extra stretch added per intermediate AS beyond the first on public
    #: paths (detours accumulate with every handoff).
    public_stretch_per_extra_as: float = 0.14
    #: Per-router-hop processing/forwarding delay, ms (median).
    hop_processing_ms: float = 0.35
    #: Minimum propagation floor for same-metro paths, ms.
    min_path_rtt_ms: float = 2.0
    #: Fixed RTT spent inside the serving ISP's aggregation core before
    #: traffic reaches an inter-domain border, ms.
    isp_core_rtt_ms: float = 3.0
    #: Fixed RTT added per intermediate AS (border-router detours and
    #: peering-point queueing), ms.
    per_intermediate_as_rtt_ms: float = 1.4
    #: Intra-continental backhaul penalty: multiplies path stretch when
    #: the probe and the datacenter are in *different countries of the
    #: same continent*.  Models sparse terrestrial fibre in
    #: under-provisioned continents -- intra-African paths famously detour
    #: via Europe, which is what pushes large parts of Africa past the
    #: HRT threshold in the paper's Fig. 4.
    continent_backhaul_stretch: Dict[str, float] = field(
        default_factory=lambda: {"AF": 2.6, "SA": 1.5, "AS": 1.12}
    )
    #: Floor on private-WAN stretch for submarine-constrained paths
    #: (an island endpoint, or a cross-continent path): every operator
    #: shares the same cables, so private WANs cannot shortcut much --
    #: this is why direct peering barely moves the JP->IN *median* while
    #: land-connected BH->IN sees a clear gain (paper Figs. 13b/18b).
    submarine_private_stretch_floor: float = 1.42

    #: Lognormal sigma of multiplicative RTT jitter for paths that stay on
    #: a private WAN.  Private backbones are lightly loaded and
    #: traffic-engineered, so samples cluster tightly around the base RTT.
    private_jitter_sigma: float = 0.045
    #: Lognormal sigma for public transit paths; queueing at congested
    #: peering points widens the distribution.
    public_jitter_sigma: float = 0.16
    #: Additional jitter sigma per 1000 km of distance on public paths --
    #: long public paths cross more potentially-congested interconnects.
    #: This term is what makes direct peering shrink the latency *tails*
    #: over large distances (paper Fig. 13b) while barely moving the
    #: median in well-provisioned regions (paper Fig. 12b).
    public_jitter_sigma_per_1000km: float = 0.018
    #: Probability that a public-path sample hits a transient congestion
    #: event, and the multiplicative inflation applied when it does.
    congestion_probability: float = 0.035
    congestion_inflation: float = 1.9

    #: ICMP handling: cloud-side load balancers and deprioritised ICMP
    #: processing occasionally inflate ICMP RTTs relative to TCP.  The
    #: paper finds Speedchecker TCP within ~2% of ICMP, with the largest
    #: gap in Africa (Fig. 15); the expected inflation here is
    #: ``probability * (factor - 1)`` ~= 1.8%.
    icmp_penalty_probability: float = 0.10
    icmp_penalty_factor: float = 1.18
    #: Always-on multiplicative ICMP handling overhead (slow-path
    #: processing at routers and endpoint load balancers).
    icmp_base_inflation: float = 1.015
    #: Multiplier on the penalty probability for measurements sourced in
    #: Africa (longer public paths, more rate-limited ICMP responders).
    icmp_africa_multiplier: float = 2.5
    #: Probability a traceroute hop does not respond.
    hop_unresponsive_probability: float = 0.08
    #: Weekly congestion cycle: multiplier on the congestion probability
    #: for weekday (Mon-Fri) and weekend measurements.  Evening/weekday
    #: busy hours drive most transient congestion on eyeball paths.
    weekday_congestion_multiplier: float = 1.25
    weekend_congestion_multiplier: float = 0.6


@dataclass(frozen=True)
class LastMileConfig:
    """Last-mile latency model parameters.

    The paper (Fig. 7b) finds wireless last-mile medians of ~20-25 ms for
    both WiFi and cellular with a coefficient of variation around 0.5
    (Fig. 8), while RIPE Atlas' wired last-mile sits near 10 ms with much
    lower variation, closely resembling the home-router-to-ISP segment.
    """

    #: Median of the WiFi hop (user device -> home router), ms.
    wifi_air_median_ms: float = 11.0
    #: Lognormal sigma of the WiFi hop.  Drives last-mile Cv ~= 0.5.
    wifi_air_sigma: float = 0.70
    #: Median of the wired home access segment (router -> ISP edge), ms.
    home_wire_median_ms: float = 9.5
    home_wire_sigma: float = 0.30
    #: Median of the cellular radio leg (device -> base station + RAN), ms.
    cellular_median_ms: float = 21.0
    cellular_sigma: float = 0.52
    #: Median of a managed wired connection (Atlas-style probes), ms.
    wired_median_ms: float = 9.0
    wired_sigma: float = 0.22
    #: Heavy-tail mixture: probability of a bufferbloat episode and its
    #: multiplicative inflation (applies to wireless media only).
    bufferbloat_probability: float = 0.05
    bufferbloat_inflation: float = 3.2
    #: Probability that a Speedchecker device switches between WiFi and
    #: cellular within a measurement -- the section-5 caveat that makes
    #: the traceroute-based home/cell classification contain false
    #: positives.
    access_switch_probability: float = 0.03
    #: Per-country quality multipliers applied to wireless medians.  The
    #: paper observes China as the only country with median end-to-end RTT
    #: under the 20 ms MTP bound, implying an unusually tight last-mile.
    country_quality: Dict[str, float] = field(
        default_factory=lambda: {
            "CN": 0.33,
            "KR": 0.78,
            "JP": 0.80,
            "SG": 0.75,
        }
    )


@dataclass(frozen=True)
class PlatformConfig:
    """Probe platform parameters (Speedchecker-like and Atlas-like)."""

    #: Total probes deployed world-wide at scale=1.0.
    speedchecker_total_probes: int = 115_000
    atlas_total_probes: int = 8_500
    #: Fraction of Speedchecker Android probes on home WiFi; the rest are
    #: cellular.  The paper does not publish the split; both categories
    #: appear in similar volume in Figs. 7-9.
    speedchecker_wifi_share: float = 0.55
    #: Fraction of the Speedchecker fleet connected at any instant
    #: (~29k of 115k in the paper).
    speedchecker_availability: float = 0.25
    #: Daily measurement budget (API calls) at scale=1.0.
    speedchecker_daily_quota: int = 200_000
    #: Share of Atlas probes hosted in managed (non-residential)
    #: networks -- NRENs, ISP premises, enthusiast racks.
    atlas_managed_share: float = 0.7
    #: Minimum probes for a country to enter the measurement cycle
    #: (the paper used 100 at full fleet scale).
    min_probes_per_country: int = 100


@dataclass(frozen=True)
class CampaignConfig:
    """Six-month campaign scheduling parameters (paper section 3.3)."""

    #: Campaign length in days (paper: ~180; tests use fewer).
    days: int = 180
    #: Hours between connected-VP snapshots.
    vp_snapshot_interval_hours: int = 4
    #: Self-imposed rate limit, measurement requests per minute.
    requests_per_minute: float = 1.0
    #: Days to sweep every country once before restarting the cycle.
    cycle_days: int = 14
    #: Ping samples per (probe, region) measurement request.
    pings_per_request: int = 4
    #: Probability a given request also issues a traceroute.
    traceroute_share: float = 0.65


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration for building a :class:`~repro.core.world.World`."""

    #: Master seed for all RNG streams.
    seed: int = 7
    #: Global scale factor applied to probe counts and quotas.  1.0
    #: reproduces the paper's fleet sizes; tests and examples use 0.01-0.05.
    scale: float = 0.02
    path_model: PathModelConfig = field(default_factory=PathModelConfig)
    last_mile: LastMileConfig = field(default_factory=LastMileConfig)
    platforms: PlatformConfig = field(default_factory=PlatformConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    #: Number of access ISPs generated per country (min, max).
    access_isps_per_country: Tuple[int, int] = (3, 6)
    #: Use Gao-Rexford valley-free policy routing.  Switching this off
    #: falls back to undirected shortest-path routing (ablation).
    valley_free_routing: bool = True
    #: Model private-WAN stretch/jitter advantages.  Switching this off
    #: makes every path behave like public transit (ablation).
    private_wan_advantage: bool = True
    #: Model the wireless last-mile.  Switching this off gives every probe
    #: a wired last-mile (ablation).
    wireless_last_mile: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(
                f"scale must be in (0, 1], got {self.scale}; 1.0 is the "
                "paper's full 115k-probe deployment and the model is not "
                "calibrated beyond it"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an absolute fleet-size number by :attr:`scale`."""
        return max(minimum, int(round(value * self.scale)))

    def world_size(self) -> "WorldSizeEstimate":
        """Fleet-size and memory accounting for this configuration."""
        speedchecker = self.scaled(
            self.platforms.speedchecker_total_probes, minimum=200
        )
        atlas = self.scaled(self.platforms.atlas_total_probes, minimum=100)
        return WorldSizeEstimate(
            scale=self.scale,
            speedchecker_probes=speedchecker,
            atlas_probes=atlas,
            speedchecker_daily_quota=self.scaled(
                self.platforms.speedchecker_daily_quota
            ),
        )


@dataclass(frozen=True)
class WorldSizeEstimate:
    """Predicted size of the world a configuration builds.

    Computed from the configuration alone (no world construction), so
    callers -- the full-scale benchmark gate, capacity planning in CI --
    can budget wall-clock and memory *before* paying for the build.
    """

    scale: float
    speedchecker_probes: int
    atlas_probes: int
    speedchecker_daily_quota: int

    #: Resident-set model constants, calibrated against measured
    #: ``ru_maxrss`` of world builds at scale 0.02 / 0.2 / 1.0 (see
    #: ``benchmarks/bench_full_scale.py``; 39 / 51 / 106 MB).  The
    #: interpreter, numpy, and the scale-independent topology dominate
    #: the intercept; per-probe cost covers the Probe dataclass, its
    #: prefix bookkeeping, and the platform indexes.
    BASE_RSS_MB = 38.0
    PER_PROBE_KB = 0.6

    @property
    def total_probes(self) -> int:
        return self.speedchecker_probes + self.atlas_probes

    @property
    def estimated_build_rss_mb(self) -> float:
        """Predicted peak resident set of building the world, MB."""
        return self.BASE_RSS_MB + self.total_probes * self.PER_PROBE_KB / 1024.0


def dataclass_digest(value: Any) -> str:
    """A stable hex digest of any (possibly nested) dataclass instance.

    The digest covers every field (recursively, via
    :func:`dataclasses.asdict`) with sorted keys, so it is independent of
    field declaration order tweaks but changes whenever any value does.
    Used for :func:`config_digest` and for the fault-config digest the
    resilient campaign runner journals.
    """
    payload = json.dumps(
        dataclasses.asdict(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_digest(config: SimulationConfig) -> str:
    """A stable hex digest of a full configuration.

    Recorded by :mod:`repro.store` run journals and checked on resume, so
    a checkpointed campaign can only be continued under the exact
    configuration that started it.
    """
    return dataclass_digest(config)
