"""NDJSON result streaming: event shapes and encoding.

Clients subscribed to a job's event stream receive newline-delimited
JSON objects, one per event, in commit order:

- ``accepted`` -- the validated request echo: job id, canonical request,
  planned unit ids.
- ``unit`` -- one committed unit's journal entry verbatim (so a
  degraded unit surfaces its ``"status": "partial"`` marker and
  scheduled counts -- the coverage accounting -- exactly as the store
  records them).
- ``skip`` -- a unit the resilient executor gave up on (or a circuit
  breaker rejected), again the journal entry verbatim.
- ``done`` -- terminal success: the store's canonical digest
  (:func:`repro.exec.digest.store_digest`) and its coverage summary.
- ``error`` -- terminal failure: the error text.

No event carries a timestamp, hostname or pid: the sequence is a pure
function of (request spec, seed, commit order), which the determinism
tests assert byte-for-byte across service restarts.  Subscribers that
attach late replay the buffered prefix first, so every subscriber sees
the identical sequence regardless of when it connected.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.store.journal import SKIP_ENTRY, UNIT_ENTRY

Event = Dict[str, Any]


def accepted_event(
    job: str, request: Dict[str, Any], units: List[str]
) -> Event:
    return {
        "event": "accepted",
        "job": job,
        "request": request,
        "units": units,
    }


def commit_event(job: str, entry: Dict[str, Any]) -> Event:
    """Wrap one journal entry (unit or skip) as a stream event."""
    kind = entry.get("type")
    if kind not in (UNIT_ENTRY, SKIP_ENTRY):
        raise ValueError(f"not a streamable journal entry: {kind!r}")
    payload = {key: value for key, value in entry.items() if key != "type"}
    return {"event": kind, "job": job, **payload}


def done_event(job: str, store_digest: str, coverage: Dict[str, int]) -> Event:
    return {
        "event": "done",
        "job": job,
        "store_digest": store_digest,
        "coverage": coverage,
    }


def error_event(job: str, message: str) -> Event:
    return {"event": "error", "job": job, "error": message}


def encode_event(event: Event) -> bytes:
    """One canonical NDJSON line (sorted keys, compact separators)."""
    return (
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")
