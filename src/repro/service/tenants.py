"""Multi-tenant rate limiting and quota accounting.

Mirrors how commercial probe platforms (RIPE Atlas credits,
Speedchecker API quotas) meter consumers: each tenant gets

- a **token-bucket rate limit** on request admission (capacity = burst,
  rate = sustained requests/second).  An empty bucket yields HTTP 429
  with a ``Retry-After`` computed from the same bucket -- the client is
  told exactly when the next token exists.
- a **lifetime unit quota** charged at job acceptance with the
  campaign's planned unit count (:class:`repro.measure.quota.
  TenantLedger`, the same ledger class the exec commit phase runs per
  platform).  Charging happens atomically inside the accept path, so N
  concurrent clients can never over-issue a tenant's quota; a job that
  fails before executing refunds its units.

Both meters run on the service clock shim, so tests and load harnesses
drive them on a virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.measure.quota import QuotaError, TenantLedger, TokenBucket


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant limits; one policy may be shared by many tenants."""

    #: Sustained request admission rate (requests/second).
    rate: float = 50.0
    #: Burst capacity (requests admitted from a full bucket).
    burst: float = 100.0
    #: Lifetime campaign-unit quota (None = unmetered).
    unit_quota: Optional[int] = None


class RateLimited(Exception):
    """Request rejected by the rate limiter (HTTP 429)."""

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} rate-limited; retry after {retry_after:.3f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class TenantState:
    """One tenant's live meters."""

    def __init__(
        self, name: str, policy: TenantPolicy, now: Callable[[], float]
    ) -> None:
        self.name = name
        self.policy = policy
        self.bucket = TokenBucket(policy.burst, policy.rate, now)
        self.ledger = TenantLedger(policy.unit_quota)

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.name,
            "rate": self.policy.rate,
            "burst": self.policy.burst,
            "unit_quota": self.policy.unit_quota,
            "units_issued": self.ledger.issued,
            "units_remaining": self.ledger.remaining,
        }


class TenantRegistry:
    """All tenants the service has seen, created lazily on first request.

    Everything here runs on the event-loop thread (handlers call it
    directly, never through the executor bridge), so admission + quota
    charge is atomic with respect to other requests without any lock.
    """

    def __init__(
        self,
        now: Callable[[], float],
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
    ) -> None:
        self._now = now
        self._default_policy = default_policy or TenantPolicy()
        self._policies = dict(policies or {})
        self._tenants: Dict[str, TenantState] = {}

    def tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            policy = self._policies.get(name, self._default_policy)
            state = TenantState(name, policy, self._now)
            self._tenants[name] = state
        return state

    def admit(self, name: str) -> TenantState:
        """Charge one admission token, or raise :class:`RateLimited`."""
        state = self.tenant(name)
        if not state.bucket.try_acquire(1.0):
            raise RateLimited(name, state.bucket.retry_after(1.0))
        return state

    def charge_units(self, name: str, job: str, units: int) -> None:
        """Charge a job's planned units against the tenant quota.

        Raises :class:`repro.measure.quota.QuotaError` (HTTP 403) when
        the tenant's remaining quota cannot cover the campaign.
        """
        self.tenant(name).ledger.charge(job, units)

    def refund_units(self, name: str, job: str) -> int:
        return self.tenant(name).ledger.refund(job)

    def states(self) -> Dict[str, TenantState]:
        return dict(self._tenants)


__all__ = [
    "QuotaError",
    "RateLimited",
    "TenantPolicy",
    "TenantRegistry",
    "TenantState",
]
