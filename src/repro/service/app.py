"""The measurement-service application: routes, tenancy, streaming.

Endpoints (see ``docs/SERVICE.md`` for schemas):

- ``GET  /v1/health`` -- liveness; never rate-limited.
- ``POST /v1/campaigns`` -- submit a campaign request (idempotent on
  (tenant, canonical request)); 202 with the job summary, 200 for a
  resubmission, 429 + ``Retry-After`` when rate-limited, 403 when the
  tenant's unit quota cannot cover the campaign.
- ``GET  /v1/campaigns/{job}`` -- job summary (state, digest, coverage).
- ``GET  /v1/campaigns/{job}/events`` -- the NDJSON event stream:
  buffered prefix replayed, then live events until ``done``/``error``.
- ``POST /v1/query`` -- run a :class:`repro.query.spec.QuerySpec`
  against a finished (or still-running) job's store or an explicit
  store path; results stream as NDJSON rows.  Served from the
  ``.querycache``-backed warehouse, so repeated specs are cache hits.
- ``GET  /v1/tenants/{tenant}`` -- the tenant's quota accounting.

Identity comes from the ``X-Tenant`` header (default ``"public"``).
Handlers never block: campaign execution and query scans dispatch
through the executor bridge (lint rule ``SVC001`` enforces this).
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, AsyncIterator, Dict, Optional

from repro.measure.quota import QuotaError
from repro.query.builder import execute as execute_query
from repro.service.bridge import ExecutorBridge
from repro.service.clock import Clock, SystemClock
from repro.service.http import (
    HttpError,
    Request,
    Response,
    Router,
    StreamResponse,
    serve_connection,
)
from repro.service.requests import CampaignRequest, QueryRequest, RequestError
from repro.service.scheduler import DONE, Job, ServiceScheduler
from repro.service.streams import encode_event
from repro.service.tenants import RateLimited, TenantPolicy, TenantRegistry
from repro.store.warehouse import DatasetStore, StoreError

DEFAULT_TENANT = "public"


class ServiceApp:
    """One service instance: scheduler + tenants + router."""

    def __init__(
        self,
        store_root: Path,
        clock: Optional[Clock] = None,
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        concurrency: int = 1,
        bridge: Optional[ExecutorBridge] = None,
    ) -> None:
        self.clock = clock if clock is not None else SystemClock()
        self.bridge = bridge if bridge is not None else ExecutorBridge()
        self.scheduler = ServiceScheduler(
            Path(store_root), bridge=self.bridge, concurrency=concurrency
        )
        self.tenants = TenantRegistry(
            self.clock.now, default_policy, policies
        )
        self.router = Router()
        self.router.add("GET", "/v1/health", self.handle_health)
        self.router.add("POST", "/v1/campaigns", self.handle_submit)
        self.router.add("GET", "/v1/campaigns/{job}", self.handle_job)
        self.router.add(
            "GET", "/v1/campaigns/{job}/events", self.handle_events
        )
        self.router.add("POST", "/v1/query", self.handle_query)
        self.router.add("GET", "/v1/tenants/{tenant}", self.handle_tenant)
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start accepting connections; returns the bound port."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockets = self._server.sockets or []
        return int(sockets[0].getsockname()[1]) if sockets else port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()
        self.bridge.shutdown()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        await serve_connection(self.router, reader, writer)

    # -- helpers -------------------------------------------------------------

    def _tenant_of(self, request: Request) -> str:
        return request.header("x-tenant", DEFAULT_TENANT) or DEFAULT_TENANT

    def _admit(self, request: Request) -> str:
        """Rate-limit admission; 429 + Retry-After when the bucket is dry."""
        tenant = self._tenant_of(request)
        try:
            self.tenants.admit(tenant)
        except RateLimited as exc:
            raise HttpError(
                429,
                str(exc),
                headers={"Retry-After": f"{exc.retry_after:.3f}"},
            ) from exc
        return tenant

    # -- handlers ------------------------------------------------------------

    async def handle_health(self, request: Request) -> Response:
        return Response(
            200,
            {
                "status": "ok",
                "jobs": len(self.scheduler.jobs()),
                "tenants": len(self.tenants.states()),
            },
        )

    async def handle_submit(self, request: Request) -> Response:
        tenant = self._admit(request)
        try:
            campaign = CampaignRequest.from_dict(request.json())
        except RequestError as exc:
            return Response(400, {"error": str(exc)})
        from repro.service.scheduler import job_id_for

        job_id = job_id_for(tenant, campaign)
        existing = self.scheduler.job(job_id)
        if existing is not None:
            return Response(200, existing.as_dict())
        units = campaign.planned_units()
        try:
            # Charge before enqueueing: the whole admit->charge->submit
            # sequence runs on the event-loop thread, so concurrent
            # clients serialize here and quota can never over-issue.
            self.tenants.charge_units(tenant, job_id, len(units))
        except QuotaError as exc:
            return Response(403, {"error": str(exc)})
        job, _created = self.scheduler.submit(tenant, campaign)
        return Response(202, job.as_dict())

    async def handle_job(self, request: Request) -> Response:
        job = self.scheduler.job(request.params["job"])
        if job is None:
            return Response(404, {"error": f"no job {request.params['job']!r}"})
        return Response(200, job.as_dict())

    async def handle_events(self, request: Request) -> Any:
        job = self.scheduler.job(request.params["job"])
        if job is None:
            return Response(404, {"error": f"no job {request.params['job']!r}"})
        return StreamResponse(_event_chunks(job))

    async def handle_query(self, request: Request) -> Any:
        tenant = self._admit(request)
        del tenant
        try:
            query = QueryRequest.from_dict(request.json())
        except RequestError as exc:
            return Response(400, {"error": str(exc)})
        if query.job is not None:
            job = self.scheduler.job(query.job)
            if job is None:
                return Response(404, {"error": f"no job {query.job!r}"})
            run_dir = job.run_dir
            if job.state != DONE and not run_dir.exists():
                return Response(
                    409, {"error": f"job {query.job!r} has no store yet"}
                )
        else:
            assert query.store is not None
            run_dir = Path(query.store)
        try:
            payload = await self.bridge.run_blocking(
                _run_query, run_dir, query
            )
        except (FileNotFoundError, StoreError) as exc:
            return Response(404, {"error": str(exc)})
        except ValueError as exc:
            return Response(400, {"error": str(exc)})
        return StreamResponse(_result_chunks(payload))

    async def handle_tenant(self, request: Request) -> Response:
        state = self.tenants.tenant(request.params["tenant"])
        return Response(200, state.as_dict())


def _run_query(run_dir: Path, query: QueryRequest) -> Dict[str, Any]:
    """Execute one query off-loop (bridge thread).

    The store is pinned to one journal prefix first
    (:meth:`repro.store.warehouse.DatasetStore.snapshot`), so querying a
    *live* job's store -- a campaign mid-write -- scans a consistent
    set of committed units instead of racing the writer.
    """
    store = DatasetStore.open(run_dir).snapshot()
    result = execute_query(
        store, query.spec, workers=query.workers, cache=True
    )
    return result.payload()


async def _event_chunks(job: Job) -> AsyncIterator[bytes]:
    async for event in job.events():
        yield encode_event(event)


async def _result_chunks(payload: Dict[str, Any]) -> AsyncIterator[bytes]:
    rows = payload.get("rows", [])
    header = {key: value for key, value in payload.items() if key != "rows"}
    header["event"] = "result"
    header["row_count"] = len(rows)
    yield encode_event(header)
    for index, row in enumerate(rows):
        yield encode_event({"event": "row", "index": index, **row})
