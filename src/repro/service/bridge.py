"""The designated async/blocking executor bridge.

The service's handlers run on one asyncio event loop and must never
block it -- lint rule ``SVC001`` rejects any blocking call (campaign
execution, store reads, query scans, file I/O) reachable from an
``async def`` handler.  All such work is dispatched here instead:
:func:`run_blocking` hands the callable to a thread pool and awaits the
result, keeping the loop free to accept connections and stream events.

Campaign execution itself still fans out through the :mod:`repro.exec`
fork pool *inside* the dispatched call; the bridge threads are only the
seam between the event loop and that synchronous world.  Determinism is
unaffected: the bridged call runs the exact same code an offline
invocation would, and nothing on this path reads a clock.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, TypeVar

T = TypeVar("T")


class ExecutorBridge:
    """Dispatches blocking calls from async handlers onto worker threads."""

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._executor: Optional[ThreadPoolExecutor] = None
        self._max_workers = max_workers

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-service",
            )
        return self._executor

    async def run_blocking(
        self, fn: Callable[..., T], *args: Any, **kwargs: Any
    ) -> T:
        """Run ``fn(*args, **kwargs)`` off-loop and await its result.

        The one sanctioned way for service handlers to reach blocking
        code (``SVC001``): the callable is never invoked on the event
        loop thread.
        """
        loop = asyncio.get_running_loop()
        if kwargs:
            call = lambda: fn(*args, **kwargs)  # noqa: E731
            return await loop.run_in_executor(self._pool(), call)
        return await loop.run_in_executor(self._pool(), fn, *args)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
