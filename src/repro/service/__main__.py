"""``python -m repro.service`` -- run a measurement service instance."""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import List, Optional

from repro.service.app import ServiceApp
from repro.service.tenants import TenantPolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description=(
            "Run the live measurement service: HTTP/JSON campaign "
            "submission, NDJSON result streaming, and warehouse queries "
            "(see docs/SERVICE.md)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8137)
    parser.add_argument(
        "--store-root",
        default="service-data",
        help="directory for per-job store run directories",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="per-tenant sustained request rate (requests/second)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=100.0,
        help="per-tenant burst capacity (token-bucket size)",
    )
    parser.add_argument(
        "--unit-quota",
        type=int,
        default=None,
        help="per-tenant lifetime campaign-unit quota (default unmetered)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="campaigns executed concurrently (default 1)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    app = ServiceApp(
        Path(args.store_root),
        default_policy=TenantPolicy(
            rate=args.rate, burst=args.burst, unit_quota=args.unit_quota
        ),
        concurrency=args.concurrency,
    )
    port = await app.start(args.host, args.port)
    print(
        f"repro.service listening on http://{args.host}:{port} "
        f"(store root: {args.store_root})",
        file=sys.stderr,
    )
    try:
        while True:
            await asyncio.sleep(3600)
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        raise
    finally:
        await app.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
