"""The service's transport-edge clock shim.

Everything below the HTTP edge is deterministic: campaigns, journals and
streamed event payloads carry no timestamps, and the token-bucket rate
limiter (:class:`repro.measure.quota.TokenBucket`) takes an explicit
``now`` callable.  Wall-clock therefore enters the service in exactly
one place -- the :class:`Clock` instance the application is built with:

- :class:`SystemClock` (production): monotonic time, real sleeps.
- :class:`VirtualClock` (tests, load harnesses): time advances only via
  :meth:`VirtualClock.advance`; ``sleep`` never blocks the event loop,
  it just releases it once.  Rate-limit tests drive the bucket forward
  deterministically instead of waiting out real seconds.
"""

from __future__ import annotations

import asyncio
import time


class Clock:
    """The minimal clock interface the service consumes."""

    def now(self) -> float:
        """Seconds on this clock's timeline (monotonic)."""
        raise NotImplementedError

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling task for ``seconds`` of this timeline."""
        raise NotImplementedError


class SystemClock(Clock):
    """Real time: :func:`time.monotonic` + :func:`asyncio.sleep`."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)


class VirtualClock(Clock):
    """A clock that moves only when told to.

    ``sleep`` yields control once (so other tasks run) but consumes no
    wall time; tests call :meth:`advance` to refill rate limiters or
    expire Retry-After windows at exactly the instant under test.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance backwards ({seconds})")
        self._now += seconds

    async def sleep(self, seconds: float) -> None:
        self._now += max(0.0, seconds)
        await asyncio.sleep(0)
