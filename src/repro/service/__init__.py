"""repro.service: the live measurement-service layer.

A long-running asyncio service that turns the batch reproduction into a
measurement *platform* in the style of Globalping and RIPE Atlas:
clients submit measurement requests over an HTTP/JSON API, the service
validates them into the existing campaign/unit vocabulary, schedules
them onto the :mod:`repro.exec` fork pool behind per-tenant token-bucket
rate limits and unit quotas, and streams results back as NDJSON as
units commit.  A query endpoint serves :mod:`repro.query` specs from
the ``.querycache``-backed warehouse.

Determinism contract (tested end-to-end): a request run to completion
produces a store byte-identical (canonical digest) to the equivalent
offline :func:`repro.measure.campaign.run_campaign_checkpointed` call,
and the streamed event sequence is a pure function of (spec, seed,
commit order).  Wall-clock exists only at the transport edge, behind
:mod:`repro.service.clock`.

See ``docs/SERVICE.md`` for the API reference, and
``python -m repro service --help`` to run one.
"""

from repro.service.app import DEFAULT_TENANT, ServiceApp
from repro.service.bridge import ExecutorBridge
from repro.service.client import ServiceClient
from repro.service.clock import Clock, SystemClock, VirtualClock
from repro.service.requests import CampaignRequest, QueryRequest, RequestError
from repro.service.scheduler import Job, ServiceScheduler, job_id_for
from repro.service.tenants import (
    RateLimited,
    TenantPolicy,
    TenantRegistry,
    TenantState,
)

__all__ = [
    "CampaignRequest",
    "Clock",
    "DEFAULT_TENANT",
    "ExecutorBridge",
    "Job",
    "QueryRequest",
    "RateLimited",
    "RequestError",
    "ServiceApp",
    "ServiceClient",
    "ServiceScheduler",
    "SystemClock",
    "TenantPolicy",
    "TenantRegistry",
    "TenantState",
    "VirtualClock",
    "job_id_for",
]
