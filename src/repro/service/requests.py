"""Request vocabulary: JSON bodies -> validated campaign/query specs.

A campaign request is the service-side mirror of an offline
:func:`repro.measure.campaign.run_campaign_checkpointed` call: the same
(seed, scale, days, platforms) coordinates, the same optional fault and
netfault configs (validated through their own ``from_dict`` parsers),
the same retry and worker knobs.  :meth:`CampaignRequest.digest` is the
request's canonical identity -- two clients submitting the same spec
address the same deterministic job, and the determinism contract
(``docs/SERVICE.md``) is stated in terms of it.

Query requests reuse :class:`repro.query.spec.QuerySpec` verbatim: the
``spec`` object in a query body is exactly what ``QuerySpec.from_dict``
accepts, so every probe-selection predicate the offline query engine
knows (platform, countries, providers, regions, continents, day ranges,
RTT windows, outage ids) is a service-side selection filter too.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults.config import FaultConfig, RetryPolicy
from repro.measure.campaign import CHECKPOINT_PLATFORMS, plan_units
from repro.netfaults.config import NetworkFaultConfig
from repro.query.spec import QuerySpec


class RequestError(ValueError):
    """A request body failed validation (HTTP 400)."""


_CAMPAIGN_FIELDS = {
    "seed",
    "scale",
    "days",
    "platforms",
    "workers",
    "max_attempts",
    "faults",
    "netfaults",
}


@dataclass(frozen=True)
class CampaignRequest:
    """One validated measurement-campaign submission."""

    seed: int = 7
    scale: float = 0.02
    days: int = 2
    platforms: Tuple[str, ...] = CHECKPOINT_PLATFORMS
    workers: int = 1
    max_attempts: Optional[int] = None
    faults: Optional[Dict[str, Any]] = field(default=None)
    netfaults: Optional[Dict[str, Any]] = field(default=None)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignRequest":
        """Validate a JSON body into a request, or raise :class:`RequestError`."""
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        unknown = sorted(set(payload) - _CAMPAIGN_FIELDS)
        if unknown:
            raise RequestError(f"unknown campaign request fields: {unknown}")
        try:
            request = cls(
                seed=int(payload.get("seed", 7)),
                scale=float(payload.get("scale", 0.02)),
                days=int(payload.get("days", 2)),
                platforms=tuple(payload.get("platforms", CHECKPOINT_PLATFORMS)),
                workers=int(payload.get("workers", 1)),
                max_attempts=(
                    int(payload["max_attempts"])
                    if payload.get("max_attempts") is not None
                    else None
                ),
                faults=(
                    dict(payload["faults"])
                    if payload.get("faults") is not None
                    else None
                ),
                netfaults=(
                    dict(payload["netfaults"])
                    if payload.get("netfaults") is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise RequestError(f"malformed campaign request: {exc}") from exc
        request.validate()
        return request

    def validate(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise RequestError(f"scale must be in (0, 1], got {self.scale}")
        if self.days < 1:
            raise RequestError(f"days must be >= 1, got {self.days}")
        if self.workers < 1:
            raise RequestError(f"workers must be >= 1, got {self.workers}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise RequestError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not self.platforms:
            raise RequestError("platforms must not be empty")
        for platform in self.platforms:
            if platform not in CHECKPOINT_PLATFORMS:
                raise RequestError(
                    f"unknown platform {platform!r}; "
                    f"choose from {sorted(CHECKPOINT_PLATFORMS)}"
                )
        if len(set(self.platforms)) != len(self.platforms):
            raise RequestError("platforms must not repeat")
        # Fault configs validate through the same parsers the offline
        # CLI uses, so a request can never smuggle in rates the batch
        # path would reject.
        try:
            self.fault_config()
            self.netfault_config()
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid fault config: {exc}") from exc

    def fault_config(self) -> Optional[FaultConfig]:
        if self.faults is None:
            return None
        return FaultConfig.from_dict(self.faults)

    def netfault_config(self) -> Optional[NetworkFaultConfig]:
        if self.netfaults is None:
            return None
        return NetworkFaultConfig.from_dict(self.netfaults)

    def retry_policy(self) -> Optional[RetryPolicy]:
        if self.max_attempts is None:
            return None
        return RetryPolicy(max_attempts=self.max_attempts)

    def planned_units(self) -> List[str]:
        """The campaign's unit ids -- what tenant quota is charged for."""
        return plan_units(self.days, list(self.platforms))

    def canonical(self) -> Dict[str, Any]:
        """The sorted, JSON-safe form that defines request identity.

        ``workers`` is deliberately included even though the store it
        produces is byte-identical at any worker count: it is an
        execution knob of *this* job, and resubmitting with a different
        worker count is still the same measurement (clients comparing
        digests should compare :meth:`spec_digest`).
        """
        return {
            "seed": self.seed,
            "scale": self.scale,
            "days": self.days,
            "platforms": list(self.platforms),
            "workers": self.workers,
            "max_attempts": self.max_attempts,
            "faults": self.faults,
            "netfaults": self.netfaults,
        }

    def _digest_of(self, payload: Dict[str, Any]) -> str:
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        ).hexdigest()

    def digest(self) -> str:
        """sha256 over the canonical request (execution identity)."""
        return self._digest_of(self.canonical())

    def spec_digest(self) -> str:
        """Identity of the *measurement* alone: excludes ``workers``.

        Two requests with equal spec digests are guaranteed (and tested)
        to produce byte-identical stores.
        """
        payload = self.canonical()
        del payload["workers"]
        return self._digest_of(payload)


_QUERY_FIELDS = {"job", "store", "spec", "workers"}


@dataclass(frozen=True)
class QueryRequest:
    """One validated query submission against a store or finished job."""

    spec: QuerySpec
    job: Optional[str] = None
    store: Optional[str] = None
    workers: int = 1

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        unknown = sorted(set(payload) - _QUERY_FIELDS)
        if unknown:
            raise RequestError(f"unknown query request fields: {unknown}")
        if "spec" not in payload or not isinstance(payload["spec"], Mapping):
            raise RequestError("query request needs a 'spec' object")
        job = payload.get("job")
        store = payload.get("store")
        if (job is None) == (store is None):
            raise RequestError(
                "query request needs exactly one of 'job' or 'store'"
            )
        try:
            spec = QuerySpec.from_dict(dict(payload["spec"]))
            spec.validate()
            workers = int(payload.get("workers", 1))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"malformed query request: {exc}") from exc
        if workers < 1:
            raise RequestError(f"workers must be >= 1, got {workers}")
        return cls(
            spec=spec,
            job=str(job) if job is not None else None,
            store=str(store) if store is not None else None,
            workers=workers,
        )
