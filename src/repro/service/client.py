"""A minimal asyncio HTTP client for the measurement service.

Used by the integration tests and the load benchmark -- stdlib only,
speaking exactly the subset of HTTP/1.1 the service emits: JSON bodies
with ``Content-Length``, NDJSON streams with chunked transfer encoding,
keep-alive connections.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple


class ClientError(RuntimeError):
    """The server's response could not be parsed."""


class ServiceClient:
    """One keep-alive connection to a service instance.

    Not safe for concurrent use -- run one client per task (the load
    benchmark runs 64 of them).
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._reader is None or self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        return self._reader, self._writer

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def _send(
        self,
        method: str,
        path: str,
        body: Optional[Any],
        headers: Optional[Dict[str, str]],
    ) -> None:
        reader, writer = await self._connect()
        del reader
        payload = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None
            else b""
        )
        lines = [f"{method} {path} HTTP/1.1", f"Host: {self._host}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(payload)}")
        if payload:
            lines.append("Content-Type: application/json")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    async def _read_head(self) -> Tuple[int, Dict[str, str]]:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ClientError(f"malformed status line: {lines[0]!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        """One buffered exchange; returns (status, headers, parsed body)."""
        await self._send(method, path, body, headers)
        status, response_headers = await self._read_head()
        assert self._reader is not None
        if response_headers.get("transfer-encoding") == "chunked":
            raw = b"".join([chunk async for chunk in self._chunks()])
        else:
            length = int(response_headers.get("content-length", "0"))
            raw = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection") == "close":
            await self.close()
        parsed = json.loads(raw) if raw else None
        return status, response_headers, parsed

    async def stream(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], AsyncIterator[Dict[str, Any]]]:
        """One streaming exchange; the iterator yields NDJSON objects.

        The iterator must be consumed to completion (or the client
        closed) before the connection can carry another request.
        """
        await self._send(method, path, body, headers)
        status, response_headers = await self._read_head()
        if response_headers.get("transfer-encoding") != "chunked":
            # Error responses are buffered JSON; surface them as a
            # one-item stream so callers can branch on status alone.
            assert self._reader is not None
            length = int(response_headers.get("content-length", "0"))
            raw = await self._reader.readexactly(length) if length else b""
            if response_headers.get("connection") == "close":
                await self.close()

            async def _single() -> AsyncIterator[Dict[str, Any]]:
                if raw:
                    yield json.loads(raw)

            return status, response_headers, _single()
        return status, response_headers, self._ndjson_lines()

    async def _chunks(self) -> AsyncIterator[bytes]:
        assert self._reader is not None
        while True:
            size_line = await self._reader.readline()
            size = int(size_line.strip(), 16)
            if size == 0:
                await self._reader.readexactly(2)
                return
            chunk = await self._reader.readexactly(size)
            await self._reader.readexactly(2)
            yield chunk

    async def _ndjson_lines(self) -> AsyncIterator[Dict[str, Any]]:
        buffer = b""
        async for chunk in self._chunks():
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                if line.strip():
                    yield json.loads(line)
        if buffer.strip():
            yield json.loads(buffer)

    async def collect(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], List[Dict[str, Any]]]:
        """Stream an endpoint and gather every NDJSON object."""
        status, response_headers, lines = await self.stream(
            method, path, body, headers
        )
        events = [event async for event in lines]
        return status, response_headers, events
