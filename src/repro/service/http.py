"""A minimal HTTP/1.1 layer on asyncio streams (stdlib only).

Just enough protocol for the service's API: request-line + header
parsing, ``Content-Length`` bodies, JSON responses, and chunked
transfer encoding for NDJSON streams.  Connections are keep-alive by
default; a ``Connection: close`` header (either side) closes after the
in-flight exchange.

This module is transport only -- no application logic, no clocks, no
blocking calls.  Routing lives in :mod:`repro.service.app`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Awaitable, Callable, Dict, List, Optional, Tuple

#: Sane bounds for a measurement API; requests beyond them are rejected
#: rather than buffered.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request that maps directly to an error response.

    ``headers`` lets raisers attach response headers -- the rate
    limiter uses it for ``Retry-After``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        #: Filled by the router with ``{param}`` segment captures.
        self.params: Dict[str, str] = {}

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> Any:
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc

    @property
    def wants_close(self) -> bool:
        return self.header("connection").lower() == "close"


class Response:
    """A buffered response with a JSON (or empty) body."""

    def __init__(
        self,
        status: int,
        payload: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.payload = payload
        self.headers = dict(headers or {})

    def body_bytes(self) -> bytes:
        if self.payload is None:
            return b""
        return (
            json.dumps(self.payload, sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")


class StreamResponse:
    """A chunked response whose body is an async iterator of bytes."""

    def __init__(
        self,
        chunks: AsyncIterator[bytes],
        status: int = 200,
        content_type: str = "application/x-ndjson",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.chunks = chunks
        self.content_type = content_type
        self.headers = dict(headers or {})


Handler = Callable[[Request], Awaitable[Any]]


class Router:
    """Exact-segment routing with ``{param}`` captures."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(segment for segment in pattern.split("/") if segment)
        self._routes.append((method.upper(), segments, handler))

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Dict[str, str], bool]:
        """Returns (handler, params, path_known)."""
        segments = tuple(segment for segment in path.split("/") if segment)
        path_known = False
        for route_method, pattern, handler in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            path_known = True
            if route_method == method.upper():
                return handler, params, True
        return None, {}, path_known


def _match(
    pattern: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; ``None`` on a cleanly closed socket."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path = parts[0], parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, f"malformed header line: {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes rejected")
    body = await reader.readexactly(length) if length else b""
    return Request(method, path, headers, body)


def _head(
    status: int, headers: Dict[str, str], extra: Dict[str, str]
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    merged = {**headers, **extra}
    for name, value in merged.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    response: Any,
    close: bool,
) -> None:
    """Serialize a :class:`Response` or :class:`StreamResponse`."""
    connection = {"Connection": "close" if close else "keep-alive"}
    if isinstance(response, StreamResponse):
        writer.write(
            _head(
                response.status,
                response.headers,
                {
                    "Content-Type": response.content_type,
                    "Transfer-Encoding": "chunked",
                    **connection,
                },
            )
        )
        await writer.drain()
        async for chunk in response.chunks:
            if not chunk:
                continue
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
            writer.write(chunk)
            writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return
    body = response.body_bytes()
    writer.write(
        _head(
            response.status,
            response.headers,
            {
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
                **connection,
            },
        )
    )
    if body:
        writer.write(body)
    await writer.drain()


async def serve_connection(
    router: Router,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Drive one client connection: parse, route, respond, repeat."""
    try:
        while True:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await write_response(
                    writer,
                    Response(
                        exc.status, {"error": exc.message}, headers=exc.headers
                    ),
                    close=True,
                )
                return
            if request is None:
                return
            handler, params, path_known = router.resolve(
                request.method, request.path
            )
            close = request.wants_close
            if handler is None:
                status = 405 if path_known else 404
                response: Any = Response(
                    status, {"error": f"{request.method} {request.path}"}
                )
            else:
                request.params = params
                try:
                    response = await handler(request)
                except HttpError as exc:
                    response = Response(
                        exc.status, {"error": exc.message}, headers=exc.headers
                    )
                except asyncio.CancelledError:
                    raise
                except Exception:  # pragma: no cover - defensive
                    import traceback

                    response = Response(
                        500, {"error": traceback.format_exc(limit=4)}
                    )
            await write_response(writer, response, close=close)
            if close:
                return
    except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
        return
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
