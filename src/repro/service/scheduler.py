"""The async campaign scheduler: job queue, event buffers, determinism.

Jobs are campaigns.  A submitted :class:`~repro.service.requests.
CampaignRequest` becomes a :class:`Job` whose id is derived from
(tenant, canonical request) -- resubmitting the same spec addresses the
same job (idempotent submit: the existing event buffer replays instead
of re-running the campaign), and two service instances given the same
submissions produce byte-identical job ids and event streams.

Execution happens off-loop through the
:class:`~repro.service.bridge.ExecutorBridge`: the dispatched call is a
plain :func:`repro.measure.campaign.run_campaign_checkpointed` -- the
same function, arguments and store layout as an offline run, which is
what makes the service's store byte-identical (canonical digest) to the
offline equivalent.  The campaign's ``on_commit`` hook forwards each
journaled entry to the event loop via ``call_soon_threadsafe``, so
subscribers stream units in canonical commit order while the campaign
is still running.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import traceback
from pathlib import Path
from typing import TYPE_CHECKING, Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.exec.digest import store_digest
from repro.measure.campaign import run_campaign_checkpointed
from repro.service.bridge import ExecutorBridge
from repro.service.requests import CampaignRequest
from repro.service.streams import (
    Event,
    accepted_event,
    commit_event,
    done_event,
    error_event,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.world import World

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
ERROR = "error"

_TERMINAL_EVENTS = ("done", "error")


def job_id_for(tenant: str, request: CampaignRequest) -> str:
    """The deterministic job id of (tenant, request).

    Derived from the canonical request digest plus the tenant name, so
    identical submissions address the same job while two tenants
    running the same spec get separate jobs (and separate quota
    charges).
    """
    seed = f"{tenant}\n{request.digest()}".encode("utf-8")
    return hashlib.sha256(seed).hexdigest()[:12]


class Job:
    """One scheduled campaign: request, run directory, event buffer."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        request: CampaignRequest,
        run_dir: Path,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.request = request
        self.run_dir = run_dir
        self.state = PENDING
        self.store_digest: Optional[str] = None
        self.coverage: Optional[Dict[str, int]] = None
        self.error: Optional[str] = None
        self._loop = loop
        self._events: List[Event] = []
        self._changed: "asyncio.Future[None]" = loop.create_future()

    # -- event buffer (loop thread only) ------------------------------------

    def push_event(self, event: Event) -> None:
        """Append one event and wake every subscriber.

        Must run on the event-loop thread; off-loop producers (the
        campaign's commit hook) get here via ``call_soon_threadsafe``.
        """
        self._events.append(event)
        changed, self._changed = self._changed, self._loop.create_future()
        changed.set_result(None)

    @property
    def events_so_far(self) -> List[Event]:
        return list(self._events)

    @property
    def finished(self) -> bool:
        return self.state in (DONE, ERROR)

    async def events(self) -> AsyncIterator[Event]:
        """Replay buffered events, then follow live ones until terminal.

        Every subscriber -- no matter how late it attaches -- sees the
        identical sequence: the buffer is append-only and the terminal
        event is always last.
        """
        index = 0
        while True:
            while index < len(self._events):
                event = self._events[index]
                index += 1
                yield event
                if event["event"] in _TERMINAL_EVENTS:
                    return
            changed = self._changed
            await changed

    def as_dict(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "job": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "request": self.request.canonical(),
            "events": len(self._events),
        }
        if self.store_digest is not None:
            summary["store_digest"] = self.store_digest
        if self.coverage is not None:
            summary["coverage"] = self.coverage
        if self.error is not None:
            summary["error"] = self.error
        return summary


class ServiceScheduler:
    """Owns the job table, the async queue, and the campaign workers."""

    def __init__(
        self,
        store_root: Path,
        bridge: Optional[ExecutorBridge] = None,
        concurrency: int = 1,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.store_root = Path(store_root)
        self.bridge = bridge if bridge is not None else ExecutorBridge()
        self._concurrency = concurrency
        self._jobs: Dict[str, Job] = {}
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue()
        self._workers: List["asyncio.Task[None]"] = []
        self._worlds: Dict[Tuple[int, float], "World"] = {}
        self._world_lock = threading.Lock()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for _ in range(self._concurrency):
            self._workers.append(asyncio.create_task(self._worker_loop()))

    async def close(self) -> None:
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        self._started = False
        self.bridge.shutdown()

    # -- submission (loop thread) --------------------------------------------

    def submit(self, tenant: str, request: CampaignRequest) -> Tuple[Job, bool]:
        """Register (or find) the job for (tenant, request).

        Returns ``(job, created)``; a resubmission of an identical
        request returns the existing job with ``created=False`` --
        callers charge quota only for created jobs.
        """
        job_id = job_id_for(tenant, request)
        existing = self._jobs.get(job_id)
        if existing is not None:
            return existing, False
        job = Job(
            job_id,
            tenant,
            request,
            self.store_root / "jobs" / job_id,
            asyncio.get_running_loop(),
        )
        self._jobs[job_id] = job
        job.push_event(
            accepted_event(job.id, request.canonical(), request.planned_units())
        )
        self._queue.put_nowait(job)
        return job, True

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    # -- execution -----------------------------------------------------------

    def _world(self, seed: int, scale: float) -> "World":
        """Build (or reuse) the world for (seed, scale).

        Called from bridge threads; the lock makes concurrent jobs on
        the same coordinates share one world build.  Worlds are
        deterministic in (seed, scale), so sharing is safe.
        """
        from repro import build_world

        key = (seed, scale)
        with self._world_lock:
            world = self._worlds.get(key)
            if world is None:
                world = build_world(seed=seed, scale=scale)
                self._worlds[key] = world
            return world

    def _execute(self, job: Job) -> Tuple[str, Dict[str, int]]:
        """Run one campaign to completion (bridge thread).

        Exactly the offline call: same world construction, same
        checkpointed runner, same store layout.  The only addition is
        the commit hook relaying journal entries to the event loop.
        """
        request = job.request
        world = self._world(request.seed, request.scale)
        loop = job._loop

        def on_commit(entry: Dict[str, Any]) -> None:
            event = commit_event(job.id, dict(entry))
            loop.call_soon_threadsafe(job.push_event, event)

        store = run_campaign_checkpointed(
            world,
            job.run_dir,
            days=request.days,
            platforms=request.platforms,
            faults=request.fault_config(),
            netfaults=request.netfault_config(),
            retry=request.retry_policy(),
            workers=request.workers,
            on_commit=on_commit,
        )
        return store_digest(job.run_dir), store.coverage().as_dict()

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            job.state = RUNNING
            try:
                digest, coverage = await self.bridge.run_blocking(
                    self._execute, job
                )
            except Exception:
                job.state = ERROR
                job.error = traceback.format_exc(limit=8)
                job.push_event(error_event(job.id, job.error))
            else:
                job.state = DONE
                job.store_digest = digest
                job.coverage = coverage
                job.push_event(done_event(job.id, digest, coverage))
            finally:
                self._queue.task_done()
