"""The ``python -m repro.lint`` command line.

Exit status contract (pinned by ``tests/unit/test_lint_cli_contract.py``):

- **0** -- every checked file is clean;
- **1** -- violations were found (including parse failures and, under
  ``--strict-suppressions``, stale suppression directives);
- **2** -- usage errors *and* analyzer crashes: a bug in the analyzer
  must never masquerade as either a clean run or a finding.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import List, Optional, Sequence

from repro.lint.engine import all_rules, lint_paths, select_rules
from repro.lint.reporting import (
    render_catalog,
    render_json,
    render_sarif,
    render_text,
)

# Register the built-in ruleset.
import repro.lint.rules  # noqa: F401

#: Default lint scope: everything CI checks.
DEFAULT_PATHS = ["src", "benchmarks", "examples"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static determinism & invariant analysis for the repro tree "
            "(RNG discipline and cross-function RNG flow, determinism "
            "hazards, frozen-world safety, batch-scalar parity, "
            "journal write-ahead ordering, worker purity)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=(
            "files or directories to lint "
            f"(default: {' '.join(DEFAULT_PATHS)})"
        ),
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--strict-suppressions",
        action="store_true",
        help=(
            "error (SUP001) on '# repro-lint: disable' comments that no "
            "longer suppress anything"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help=(
            "print the rule catalog as a markdown table (the table "
            "embedded in docs/LINTING.md) and exit"
        ),
    )
    return parser


def _split(tokens: Optional[str]) -> Optional[List[str]]:
    if tokens is None:
        return None
    return [token.strip() for token in tokens.split(",") if token.strip()]


def _emit(report: str, output: Optional[str]) -> None:
    if output is None:
        print(report)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")


def run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            scope = (
                ", ".join(rule.path_patterns) if rule.path_patterns else "all files"
            )
            print(f"{rule.rule_id}  {rule.name}  [{scope}]")
            print(f"    {rule.summary}")
        return 0

    if args.catalog:
        _emit(render_catalog(), args.output)
        return 0

    rules = select_rules(select=_split(args.select), ignore=_split(args.ignore))
    if not rules:
        parser.error("no rules left after --select/--ignore filtering")

    result = lint_paths(
        args.paths, rules, strict_suppressions=args.strict_suppressions
    )
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result)
    _emit(report, args.output)
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(parser, args)
    except SystemExit:
        raise
    except OSError as exc:
        # Unreadable path / unwritable --output: a usage-level problem.
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    except Exception:
        # An analyzer crash must be loud and distinguishable from both
        # "clean" and "findings" -- CI treats 2 as infrastructure red.
        print("repro.lint: internal error:", file=sys.stderr)
        traceback.print_exc()
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
