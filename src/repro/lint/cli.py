"""The ``python -m repro.lint`` command line.

Exit status: 0 when every checked file is clean, 1 when violations were
found (or a file failed to parse), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import all_rules, lint_paths, select_rules
from repro.lint.reporting import render_json, render_text

# Register the built-in ruleset.
import repro.lint.rules  # noqa: F401


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static determinism & invariant analysis for the repro tree "
            "(RNG discipline, determinism hazards, frozen-world safety, "
            "batch-scalar parity)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split(tokens: Optional[str]) -> Optional[List[str]]:
    if tokens is None:
        return None
    return [token.strip() for token in tokens.split(",") if token.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = (
                ", ".join(rule.path_patterns) if rule.path_patterns else "all files"
            )
            print(f"{rule.rule_id}  {rule.name}  [{scope}]")
            print(f"    {rule.summary}")
        return 0

    rules = select_rules(select=_split(args.select), ignore=_split(args.ignore))
    if not rules:
        parser.error("no rules left after --select/--ignore filtering")

    result = lint_paths(args.paths, rules)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
