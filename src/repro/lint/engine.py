"""The analyzer core: rule registry, AST walker, and file driver.

A :class:`Rule` subscribes to AST node types (``node_types``) and/or a
whole-module pass (:meth:`Rule.check_module`).  The engine parses each
file once, resolves import aliases so rules can match fully-qualified
call targets (``np.random.seed`` -> ``numpy.random.seed``), walks the
tree once while maintaining the lexical scope stack, and filters the
collected violations through ``# repro-lint: disable=...`` suppression
comments before reporting.

On top of the per-file pass sits the *project phase*: after every file
has been parsed, the engine builds a project-wide symbol table and call
graph (:mod:`repro.lint.callgraph`) and hands it to rules that override
:meth:`Rule.check_project`.  Those rules see every module at once and
can follow values across function and file boundaries with the
dataflow machinery in :mod:`repro.lint.dataflow` -- the flow-aware
families (``RNG101``, ``WAL001``, ``EXE101``) are built this way.
Project findings go through the same per-file suppression filter as
node findings, so one mechanism governs both.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.callgraph import ModuleInfo, Project, _collect_imports
from repro.lint.suppressions import Suppressions, scan_suppressions

#: Rule id used for files the engine cannot parse.
PARSE_ERROR_ID = "PARSE"

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class LintResult:
    """The outcome of linting a set of files."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def path_matches(posix_path: str, patterns: Sequence[str]) -> bool:
    """Whether a path matches any fnmatch pattern.

    Patterns are matched against the trailing components of the path,
    so ``repro/measure/*`` matches both ``src/repro/measure/latency.py``
    and an inline test fixture named ``repro/measure/latency.py``.
    """
    for pattern in patterns:
        if fnmatch.fnmatch(posix_path, pattern) or fnmatch.fnmatch(
            posix_path, "*/" + pattern
        ):
            return True
    return False


def is_test_path(posix_path: str) -> bool:
    """Whether a path belongs to the test suite."""
    parts = posix_path.split("/")
    name = parts[-1]
    return "tests" in parts or name.startswith("test_") or name == "conftest.py"


class LintContext:
    """Per-file state shared by every rule during one walk.

    Exposes the source path, the import alias table, the lexical scope
    stack (maintained by the walker), and :meth:`report` for emitting
    violations.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        #: Forward-slash form used for rule path scoping.
        self.posix_path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        #: Local name -> fully qualified dotted import path
        #: (``np`` -> ``numpy``, ``default_rng`` -> ``numpy.random.default_rng``).
        self.imports: Dict[str, str] = _collect_imports(tree)
        #: Lexical scope stack, innermost last (ClassDef / FunctionDef).
        self.scope: List[ast.AST] = []
        self.violations: List[Violation] = []

    # -- path classification -------------------------------------------------

    @property
    def is_test_file(self) -> bool:
        """Whether the file belongs to the test suite."""
        return is_test_path(self.posix_path)

    def path_matches(self, patterns: Sequence[str]) -> bool:
        """Whether the file path matches any fnmatch pattern."""
        return path_matches(self.posix_path, patterns)

    # -- scope helpers -------------------------------------------------------

    @property
    def current_function(self) -> Optional[ast.AST]:
        for node in reversed(self.scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    @property
    def current_class(self) -> Optional[ast.ClassDef]:
        for node in reversed(self.scope):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def enclosing_function_names(self) -> List[str]:
        return [
            node.name
            for node in self.scope
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    # -- name resolution -----------------------------------------------------

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """The fully qualified dotted name of a Name/Attribute chain.

        Resolves the chain's root through the module's import aliases:
        with ``import numpy as np``, ``np.random.seed`` resolves to
        ``"numpy.random.seed"``.  Returns ``None`` for expressions that
        are not a plain dotted chain (calls, subscripts, ...).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- reporting -----------------------------------------------------------

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule_id=rule.rule_id,
                rule_name=rule.name,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )


class ProjectReporter:
    """Routes project-phase findings back to their source files."""

    def __init__(self) -> None:
        self.by_path: Dict[str, List[Violation]] = {}

    def report(
        self, rule: "Rule", module: ModuleInfo, node: ast.AST, message: str
    ) -> None:
        self.by_path.setdefault(module.path, []).append(
            Violation(
                rule_id=rule.rule_id,
                rule_name=rule.name,
                path=module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (stable, used in reports and suppression
    comments), ``name`` (human slug), ``summary`` (one line for
    ``--list-rules``), and optionally ``path_patterns`` to scope the
    rule to parts of the tree.  Node-level checks subscribe via
    ``node_types`` and implement :meth:`visit`; whole-module checks
    implement :meth:`check_module`; whole-project (flow-aware) checks
    implement :meth:`check_project`.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    #: When set, the rule only runs on files matching one of these
    #: fnmatch patterns (see :meth:`LintContext.path_matches`).
    path_patterns: Optional[Tuple[str, ...]] = None
    #: AST node classes :meth:`visit` subscribes to.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: LintContext) -> bool:
        if self.path_patterns is None:
            return True
        return ctx.path_matches(self.path_patterns)

    def applies_to_module(self, module: ModuleInfo) -> bool:
        """Project-phase scoping twin of :meth:`applies_to`."""
        if self.path_patterns is None:
            return True
        return path_matches(module.posix_path, self.path_patterns)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        """Called for every node whose type is in ``node_types``."""

    def check_module(self, tree: ast.Module, ctx: LintContext) -> None:
        """Called once per module, before the node walk."""

    def check_project(self, project: Project, reporter: ProjectReporter) -> None:
        """Called once with the whole linted tree's call graph."""

    @property
    def is_project_rule(self) -> bool:
        return type(self).check_project is not Rule.check_project


#: The global rule registry, keyed by rule id.
_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (one shared instance) to the registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The registered rules filtered by id/name include and exclude lists."""
    chosen = all_rules()
    if select is not None:
        wanted = {token.upper() for token in select}
        chosen = [
            rule
            for rule in chosen
            if rule.rule_id.upper() in wanted or rule.name.upper() in wanted
        ]
    if ignore is not None:
        dropped = {token.upper() for token in ignore}
        chosen = [
            rule
            for rule in chosen
            if rule.rule_id.upper() not in dropped
            and rule.name.upper() not in dropped
        ]
    return chosen


def rule_tokens(rules: Iterable[Rule]) -> Set[str]:
    """Upper-cased id and name tokens for a rule collection."""
    tokens: Set[str] = set()
    for rule in rules:
        tokens.add(rule.rule_id.upper())
        if rule.name:
            tokens.add(rule.name.upper())
    return tokens


@register_rule
class StaleSuppressionRule(Rule):
    """A suppression that silences nothing is a lie waiting to rot.

    Emitted by the engine itself under ``--strict-suppressions``: a
    ``# repro-lint: disable[-file]=...`` directive that suppressed no
    violation this run either outlived the code it excused or carries a
    typo'd rule id.  Either way it must be removed (or fixed), so the
    suppression inventory stays an honest list of known, reasoned
    exceptions.
    """

    rule_id = "SUP001"
    name = "stale-suppression"
    summary = (
        "with --strict-suppressions, disable comments that no longer "
        "suppress anything are errors; remove or fix them"
    )


class _Walker:
    """Single-pass AST walker dispatching nodes to subscribed rules."""

    def __init__(self, rules: Sequence[Rule], ctx: LintContext) -> None:
        self._ctx = ctx
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def walk(self, node: ast.AST) -> None:
        ctx = self._ctx
        for rule in self._dispatch.get(type(node), ()):
            rule.visit(node, ctx)
        is_scope = isinstance(node, _SCOPE_NODES)
        if is_scope:
            ctx.scope.append(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        if is_scope:
            ctx.scope.pop()


def lint_sources(
    files: Sequence[Tuple[str, str]],
    rules: Optional[Sequence[Rule]] = None,
    strict_suppressions: bool = False,
) -> LintResult:
    """Lint ``(filename, source)`` pairs as one project.

    The filenames participate in rule path scoping and in the project
    call graph's module naming, so multi-file fixtures can probe
    cross-module flows without touching the real tree.
    """
    if rules is None:
        rules = all_rules()
    result = LintResult(files_checked=len(files))
    parsed: List[Tuple[str, str, ast.Module]] = []
    raw_by_path: Dict[str, List[Violation]] = {}
    for filename, source in files:
        try:
            tree = ast.parse(source, filename=filename)
        except (SyntaxError, ValueError, RecursionError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            offset = getattr(exc, "offset", 1) or 1
            message = getattr(exc, "msg", None) or str(exc)
            result.violations.append(
                Violation(
                    rule_id=PARSE_ERROR_ID,
                    rule_name="syntax-error",
                    path=filename,
                    line=lineno,
                    col=offset - 1,
                    message=f"cannot parse file: {message}",
                )
            )
            continue
        parsed.append((filename, source, tree))

    # Per-file phase.
    for filename, source, tree in parsed:
        ctx = LintContext(filename, source, tree)
        active = [rule for rule in rules if rule.applies_to(ctx)]
        for rule in active:
            rule.check_module(tree, ctx)
        _Walker(active, ctx).walk(tree)
        raw_by_path[filename] = ctx.violations

    # Project phase: flow-aware rules over the whole tree at once.
    project_rules = [rule for rule in rules if rule.is_project_rule]
    if project_rules and parsed:
        project = Project.build([(name, tree) for name, _, tree in parsed])
        reporter = ProjectReporter()
        for rule in project_rules:
            rule.check_project(project, reporter)
        for path, found in reporter.by_path.items():
            raw_by_path.setdefault(path, []).extend(found)

    # Suppression filtering (and, in strict mode, the stale audit).
    active_tokens = rule_tokens(rules)
    known_tokens = rule_tokens(all_rules())
    stale_rule = _REGISTRY.get(StaleSuppressionRule.rule_id)
    for filename, source, _tree in parsed:
        suppressions = scan_suppressions(source)
        kept = [
            violation
            for violation in raw_by_path.get(filename, [])
            if not _suppressed(violation, suppressions)
        ]
        result.violations.extend(kept)
        if strict_suppressions and stale_rule is not None:
            for directive in suppressions.stale_directives(
                active_tokens, known_tokens
            ):
                tokens = ",".join(sorted(directive.tokens))
                result.violations.append(
                    Violation(
                        rule_id=stale_rule.rule_id,
                        rule_name=stale_rule.name,
                        path=filename,
                        line=directive.line,
                        col=0,
                        message=(
                            f"stale suppression '{directive.kind}={tokens}': "
                            "it no longer suppresses anything; remove it (or "
                            "fix the rule id)"
                        ),
                    )
                )
    result.violations.sort(key=Violation.sort_key)
    return result


def lint_source(
    source: str,
    filename: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; thin wrapper over :func:`lint_sources`.

    ``filename`` participates in rule path scoping, so tests can probe
    path-scoped rules with names like ``src/repro/measure/x.py``.
    """
    return lint_sources([(filename, source)], rules=rules).violations


def _suppressed(violation: Violation, suppressions: Suppressions) -> bool:
    return suppressions.is_disabled(
        violation.line, violation.rule_id, violation.rule_name
    )


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Python files under ``paths`` (files listed directly, dirs walked)."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") and part != "." for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    strict_suppressions: bool = False,
) -> LintResult:
    """Lint every Python file under ``paths`` as one project."""
    files: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        files.append((str(path), path.read_text(encoding="utf-8")))
    return lint_sources(
        files, rules=rules, strict_suppressions=strict_suppressions
    )
