"""Intraprocedural dataflow with bounded interprocedural summaries.

The abstract domain is a *tag set* per variable -- the classic
taint-lattice where join is set union and bottom is the empty set.
:class:`AbstractInterpreter` evaluates one function body in statement
order, so the flow rules can ask order-sensitive questions ("was the
shard written before this journal append?") without building a CFG:

- assignments (plain, annotated, augmented, tuple-unpacking, walrus)
  propagate the right-hand side's tags to the targets;
- ``if``/``try`` branches are interpreted on copies of the environment
  and joined afterwards, so a tag acquired in either branch survives;
- loop bodies are interpreted twice so loop-carried tags reach the
  first statements of the body, and the interpreter tracks loop depth
  (a call made inside a loop is how a parent RNG stream leaks into
  more than one unit);
- every expression evaluation funnels calls through
  :meth:`AbstractInterpreter.eval_call`, the single override point
  rule families use to model creation sites, sinks, and summaries.

Interprocedural analysis is summary-based and bounded:
:func:`fixpoint_summaries` repeatedly re-summarises every function
(each pass may consult the previous pass's summaries of its callees)
until nothing changes or ``max_rounds`` is hit.  Non-recursive call
chains of depth <= ``max_rounds`` are therefore fully propagated, and
recursion simply stops refining -- never diverges.  That bound is ample
for this codebase and keeps the analyzer total: no input module may
crash or hang it (the hypothesis fuzz suite holds it to that).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.callgraph import FunctionInfo, Project

#: An abstract value: the set of tags the expression may carry.
Tags = FrozenSet[str]

EMPTY: Tags = frozenset()

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def tags(*names: str) -> Tags:
    return frozenset(names)


class Env:
    """Variable name -> tags, with copy/join for branch merging."""

    def __init__(self, initial: Optional[Dict[str, Tags]] = None) -> None:
        self._vars: Dict[str, Tags] = dict(initial or {})

    def get(self, name: str) -> Tags:
        return self._vars.get(name, EMPTY)

    def set(self, name: str, value: Tags) -> None:
        if value:
            self._vars[name] = value
        else:
            self._vars.pop(name, None)

    def join_var(self, name: str, value: Tags) -> None:
        self.set(name, self.get(name) | value)

    def copy(self) -> "Env":
        return Env(self._vars)

    def join(self, other: "Env") -> None:
        for name, value in other._vars.items():
            self.join_var(name, value)

    def items(self) -> Iterable[Tuple[str, Tags]]:
        return self._vars.items()

    def tagged(self, tag: str) -> List[str]:
        return sorted(
            name for name, value in self._vars.items() if tag in value
        )

    def add_tag_where(self, have: str, add: str) -> None:
        """Add ``add`` to every variable already carrying ``have``."""
        for name, value in list(self._vars.items()):
            if have in value:
                self._vars[name] = value | {add}


class AbstractInterpreter:
    """Order-sensitive abstract interpretation of one function body.

    Subclass (or pass hooks to) this to model a rule family: override
    :meth:`eval_call` to tag call results and observe sinks.  The
    interpreter itself only moves tags around; it never reports.
    """

    #: Hard cap on interpreted statements, pathological-input guard.
    MAX_STEPS = 20_000

    def __init__(self, fn: FunctionInfo, project: Optional[Project] = None) -> None:
        self.fn = fn
        self.project = project
        self.env = Env()
        self.return_tags: Tags = EMPTY
        self.loop_depth = 0
        self._steps = 0

    # -- override points -----------------------------------------------------

    def eval_call(self, node: ast.Call, arg_tags: List[Tags]) -> Tags:
        """Tags of a call's result; also the sink-observation hook.

        ``arg_tags`` has one entry per positional argument followed by
        one per keyword argument (in source order).  The default
        propagates nothing.
        """
        return EMPTY

    # -- driving -------------------------------------------------------------

    def run(self, param_tags: Optional[Dict[str, Tags]] = None) -> Tags:
        """Interpret the whole body; returns the joined return tags."""
        for index, param in enumerate(self.fn.params):
            given = (param_tags or {}).get(param, EMPTY)
            self.env.set(param, given | {f"param:{index}"})
        body = getattr(self.fn.node, "body", [])
        self._exec_block(body)
        return self.return_tags

    # -- statements ----------------------------------------------------------

    def _exec_block(self, statements: Iterable[ast.stmt]) -> None:
        for statement in statements:
            self._steps += 1
            if self._steps > self.MAX_STEPS:
                return
            self._exec(statement)

    def _exec(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self._eval(node.value)
            for target in node.targets:
                self._assign(target, value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            value = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env.join_var(node.target.id, value)
            else:
                self._eval(node.target)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.return_tags |= self._eval(node.value)
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, ast.If):
            self._branch([node.body, node.orelse], condition=node.test)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_tags = self._eval(node.iter)
            self.loop_depth += 1
            try:
                # Two passes let loop-carried tags reach the whole body.
                for _ in range(2):
                    self._assign(node.target, iter_tags)
                    self._exec_block(node.body)
            finally:
                self.loop_depth -= 1
            self._exec_block(node.orelse)
        elif isinstance(node, ast.While):
            self._eval(node.test)
            self.loop_depth += 1
            try:
                for _ in range(2):
                    self._exec_block(node.body)
            finally:
                self.loop_depth -= 1
            self._exec_block(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value)
            self._exec_block(node.body)
        elif isinstance(node, ast.Try):
            blocks: List[List[ast.stmt]] = [node.body]
            for handler in node.handlers:
                blocks.append(list(handler.body))
            self._branch(blocks)
            self._exec_block(node.orelse)
            self._exec_block(node.finalbody)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._eval(node.exc)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.set(target.id, EMPTY)
        elif isinstance(node, _FUNCTION_NODES + (ast.ClassDef,)):
            # Nested definitions are not interpreted; the rule families
            # inspect them separately (closure checks).
            pass
        else:
            # Match statements, assert, import, global, pass, ...: walk
            # embedded expressions so calls inside them are still seen.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
                elif isinstance(child, ast.stmt):
                    self._exec(child)
                else:
                    for sub in ast.walk(child):
                        if isinstance(sub, ast.expr):
                            self._eval(sub)
                            break

    def _branch(
        self,
        blocks: List[List[ast.stmt]],
        condition: Optional[ast.expr] = None,
    ) -> None:
        if condition is not None:
            self._eval(condition)
        merged: Optional[Env] = None
        base = self.env
        for block in blocks:
            self.env = base.copy()
            self._exec_block(block)
            if merged is None:
                merged = self.env
            else:
                merged.join(self.env)
        self.env = merged if merged is not None else base
        # A branch may be skipped entirely at runtime; keep the
        # pre-branch bindings alive too (union semantics).
        self.env.join(base)

    def _assign(self, target: ast.expr, value: Tags) -> None:
        if isinstance(target, ast.Name):
            self.env.set(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Storing through an attribute/subscript taints the base
            # object: ``entry["shards"].append`` style flows survive.
            base = target.value
            if isinstance(base, ast.Name):
                self.env.join_var(base.id, value)

    # -- expressions ---------------------------------------------------------

    def _eval(self, node: ast.expr) -> Tags:
        self._steps += 1
        if self._steps > self.MAX_STEPS:
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value)
            self._eval(node.slice)
            return value
        if isinstance(node, ast.Call):
            arg_tags = [self._eval(arg) for arg in node.args]
            arg_tags.extend(self._eval(kw.value) for kw in node.keywords)
            return self.eval_call(node, arg_tags)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._assign(node.target, value)
            return value
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            combined = EMPTY
            for element in node.elts:
                combined |= self._eval(element)
            return combined
        if isinstance(node, ast.Dict):
            combined = EMPTY
            for key in node.keys:
                if key is not None:
                    combined |= self._eval(key)
            for value_node in node.values:
                combined |= self._eval(value_node)
            return combined
        if isinstance(node, ast.BoolOp):
            combined = EMPTY
            for operand in node.values:
                combined |= self._eval(operand)
            return combined
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                source = self._eval(generator.iter)
                self._assign(generator.target, source)
                for condition in generator.ifs:
                    self._eval(condition)
            # The element expression runs once per item: loop context.
            self.loop_depth += 1
            try:
                return self._eval(node.elt)
            finally:
                self.loop_depth -= 1
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                source = self._eval(generator.iter)
                self._assign(generator.target, source)
                for condition in generator.ifs:
                    self._eval(condition)
            self.loop_depth += 1
            try:
                self._eval(node.key)
                return self._eval(node.value)
            finally:
                self.loop_depth -= 1
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                return self._eval(node.value)
            return EMPTY
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return EMPTY
        return EMPTY


#: A summary computation: (function, previous summaries) -> summary.
Summarizer = Callable[[FunctionInfo, Dict[str, object]], object]


def fixpoint_summaries(
    project: Project,
    summarize: Summarizer,
    max_rounds: int = 6,
) -> Dict[str, object]:
    """Bounded interprocedural fixpoint over per-function summaries.

    Each round recomputes every function's summary with the previous
    round's summaries of its callees visible; iteration stops when a
    round changes nothing or ``max_rounds`` is reached.  Summaries must
    define ``__eq__`` (dataclasses do) for convergence detection.
    """
    summaries: Dict[str, object] = {}
    order = sorted(project.functions)
    for _ in range(max_rounds):
        changed = False
        for qualname in order:
            fn = project.functions[qualname]
            new = summarize(fn, summaries)
            if summaries.get(qualname) != new:
                summaries[qualname] = new
                changed = True
        if not changed:
            break
    return summaries


def keyword_argument_names(call: ast.Call) -> List[Optional[str]]:
    """Positional slots (``None``) followed by keyword names, matching
    the ``arg_tags`` layout :meth:`AbstractInterpreter.eval_call` sees."""
    names: List[Optional[str]] = [None] * len(call.args)
    names.extend(kw.arg for kw in call.keywords)
    return names


def argument_index_for_param(
    call: ast.Call, callee: FunctionInfo, flat_index: int
) -> Optional[int]:
    """Map a flat argument position at ``call`` to the callee's
    parameter index (positional by position, keyword by name).

    Returns ``None`` when the mapping cannot be established (``*args``
    forwarding, unknown keyword, method binding offsets are handled by
    trying both alignments at the caller)."""
    if flat_index < len(call.args):
        return flat_index
    keyword = call.keywords[flat_index - len(call.args)]
    if keyword.arg is None:
        return None
    return callee.param_index(keyword.arg)
