"""``repro.lint``: static analysis for the reproduction's own contracts.

The test suite can only spot-check the invariants the reproduction's
scientific validity rests on -- seed-threaded randomness, batch/scalar
distributional parity, frozen world objects.  This package enforces them
*statically*, on every commit:

- **RNG discipline** (``RNG001``-``RNG004``): all randomness flows
  through explicitly threaded :class:`numpy.random.Generator` objects;
  no legacy ``np.random.*`` global state, no stdlib :mod:`random`, no
  unseeded ``default_rng()`` outside tests, no draws from module-global
  generators.
- **Determinism hazards** (``DET001``-``DET002``): no wall-clock or
  OS-entropy reads and no unordered ``set`` iteration inside the
  measurement core (``repro.measure``, ``repro.core``).
- **Frozen-world safety** (``FRZ001``): no attribute assignment on
  :class:`~repro.core.world.World` / ``PlannedPath`` objects outside
  their constructors and builders.
- **Batch-scalar parity** (``PAR001``): every noise-process function in
  ``measure/latency.py`` and ``lastmile/`` exposes both the scalar and
  the vectorized (``_block``/``_batch``/``_many``/``_array``) form.

Run it as ``python -m repro.lint [paths...]``; see ``docs/LINTING.md``
for the rule catalogue, suppression syntax, and how to add a rule.
"""

from __future__ import annotations

from repro.lint.engine import (
    LintContext,
    LintResult,
    ProjectReporter,
    Rule,
    Violation,
    all_rules,
    lint_paths,
    lint_source,
    lint_sources,
    register_rule,
    select_rules,
)
from repro.lint.reporting import (
    render_catalog,
    render_json,
    render_sarif,
    render_text,
)

# Importing the rules package registers the built-in ruleset.
import repro.lint.rules  # noqa: F401  # repro-lint: keep - registration side effect

__all__ = [
    "LintContext",
    "LintResult",
    "ProjectReporter",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "register_rule",
    "render_catalog",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
]
