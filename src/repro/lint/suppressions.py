"""Suppression comments.

Two directive forms, matching the usual linter conventions:

- ``# repro-lint: disable=RNG001`` silences the named rule(s) for
  violations reported *on that line* (comma-separate several ids;
  rule names work too; ``all`` silences every rule on the line).
- ``# repro-lint: disable-file=DET002`` anywhere in the file silences
  the rule(s) for the whole file.

Comments are found with :mod:`tokenize` so directives inside string
literals never count; files that fail to tokenize fall back to a
line-oriented scan.

Every directive is tracked individually so the engine's
``--strict-suppressions`` audit can flag *stale* ones: a directive that
silenced no violation in the run is dead weight -- either the code it
excused was fixed, or the rule id is a typo -- and strict mode reports
it as a ``SUP001`` finding.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)

#: Token silencing every rule.
ALL = "ALL"


@dataclass
class Directive:
    """One parsed ``disable``/``disable-file`` comment."""

    line: int
    kind: str  # "disable" | "disable-file"
    tokens: Set[str]
    #: Whether this directive silenced at least one violation.
    used: bool = False


@dataclass
class Suppressions:
    """Parsed suppression directives for one file."""

    #: Line number -> upper-cased rule tokens disabled on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: Upper-cased rule tokens disabled for the whole file.
    file_level: Set[str] = field(default_factory=set)
    #: Every directive found, in source order (for the stale audit).
    directives: List[Directive] = field(default_factory=list)

    def is_disabled(self, line: int, rule_id: str, rule_name: str = "") -> bool:
        tokens = {rule_id.upper(), rule_name.upper()} - {""}
        disabled = False
        if self.file_level & tokens or ALL in self.file_level:
            disabled = True
        line_tokens = self.by_line.get(line)
        if line_tokens and (line_tokens & tokens or ALL in line_tokens):
            disabled = True
        if disabled:
            self._mark_used(line, tokens)
        return disabled

    def _mark_used(self, line: int, tokens: Set[str]) -> None:
        for directive in self.directives:
            if directive.used:
                continue
            matches = bool(directive.tokens & tokens) or ALL in directive.tokens
            if not matches:
                continue
            if directive.kind == "disable-file" or directive.line == line:
                directive.used = True

    def stale_directives(
        self, active_tokens: Set[str], known_tokens: Set[str]
    ) -> List[Directive]:
        """Directives that silenced nothing and are auditable now.

        ``active_tokens`` is the upper-cased id/name set of the rules
        that actually ran; ``known_tokens`` covers every registered
        rule.  A directive is auditable when each of its tokens either
        ran this invocation, is ``all``, or names no registered rule at
        all (a typo that will never suppress anything).  Directives
        naming only deselected-but-real rules cannot be judged and are
        skipped, so ``--select`` subsets never produce false staleness.
        """
        stale: List[Directive] = []
        for directive in self.directives:
            if directive.used:
                continue
            judgeable = all(
                token == ALL
                or token in active_tokens
                or token not in known_tokens
                for token in directive.tokens
            )
            if judgeable:
                stale.append(directive)
        return stale


def _parse_directive(comment: str, line: int, out: Suppressions) -> None:
    for match in _DIRECTIVE_RE.finditer(comment):
        tokens = {
            token.strip().upper()
            for token in match.group("rules").split(",")
            if token.strip()
        }
        if not tokens:
            continue
        kind = match.group("kind")
        out.directives.append(Directive(line=line, kind=kind, tokens=tokens))
        if kind == "disable-file":
            out.file_level |= tokens
        else:
            out.by_line.setdefault(line, set()).update(tokens)


def scan_suppressions(source: str) -> Suppressions:
    """Collect every suppression directive in ``source``."""
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                _parse_directive(token.string, token.start[0], result)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unfinished brackets etc.: degrade to a plain line scan.
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                _parse_directive(text, lineno, result)
    return result
