"""Suppression comments.

Two directive forms, matching the usual linter conventions:

- ``# repro-lint: disable=RNG001`` silences the named rule(s) for
  violations reported *on that line* (comma-separate several ids;
  rule names work too; ``all`` silences every rule on the line).
- ``# repro-lint: disable-file=DET002`` anywhere in the file silences
  the rule(s) for the whole file.

Comments are found with :mod:`tokenize` so directives inside string
literals never count; files that fail to tokenize fall back to a
line-oriented scan.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)

#: Token silencing every rule.
ALL = "ALL"


@dataclass
class Suppressions:
    """Parsed suppression directives for one file."""

    #: Line number -> upper-cased rule tokens disabled on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: Upper-cased rule tokens disabled for the whole file.
    file_level: Set[str] = field(default_factory=set)

    def is_disabled(self, line: int, rule_id: str, rule_name: str = "") -> bool:
        tokens = {rule_id.upper(), rule_name.upper()} - {""}
        if self.file_level & tokens or ALL in self.file_level:
            return True
        line_tokens = self.by_line.get(line)
        if not line_tokens:
            return False
        return bool(line_tokens & tokens) or ALL in line_tokens


def _parse_directive(comment: str, line: int, out: Suppressions) -> None:
    for match in _DIRECTIVE_RE.finditer(comment):
        tokens = {
            token.strip().upper()
            for token in match.group("rules").split(",")
            if token.strip()
        }
        if match.group("kind") == "disable-file":
            out.file_level |= tokens
        else:
            out.by_line.setdefault(line, set()).update(tokens)


def scan_suppressions(source: str) -> Suppressions:
    """Collect every suppression directive in ``source``."""
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                _parse_directive(token.string, token.start[0], result)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unfinished brackets etc.: degrade to a plain line scan.
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                _parse_directive(text, lineno, result)
    return result
