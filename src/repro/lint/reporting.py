"""Human-readable and JSON reporters for lint results."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult


def render_text(result: LintResult) -> str:
    """A pycodestyle-style report: one ``path:line:col: ID message`` per hit."""
    lines = []
    for violation in result.violations:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col + 1}: "
            f"{violation.rule_id} [{violation.rule_name}] {violation.message}"
        )
    if result.violations:
        lines.append("")
        counts = ", ".join(
            f"{rule_id}: {count}"
            for rule_id, count in result.counts_by_rule().items()
        )
        lines.append(
            f"Found {len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} "
            f"in {result.files_checked} file"
            f"{'s' if result.files_checked != 1 else ''} ({counts})."
        )
    else:
        lines.append(
            f"Checked {result.files_checked} file"
            f"{'s' if result.files_checked != 1 else ''}: no violations."
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-readable report (stable key order, one JSON object)."""
    payload = {
        "files_checked": result.files_checked,
        "violation_count": len(result.violations),
        "counts_by_rule": result.counts_by_rule(),
        "violations": [
            {
                "rule_id": violation.rule_id,
                "rule_name": violation.rule_name,
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "message": violation.message,
            }
            for violation in result.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
