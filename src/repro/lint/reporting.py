"""Human-readable, JSON, and SARIF reporters, plus the rule catalog."""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import LintResult, all_rules


def render_text(result: LintResult) -> str:
    """A pycodestyle-style report: one ``path:line:col: ID message`` per hit."""
    lines = []
    for violation in result.violations:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col + 1}: "
            f"{violation.rule_id} [{violation.rule_name}] {violation.message}"
        )
    if result.violations:
        lines.append("")
        counts = ", ".join(
            f"{rule_id}: {count}"
            for rule_id, count in result.counts_by_rule().items()
        )
        lines.append(
            f"Found {len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} "
            f"in {result.files_checked} file"
            f"{'s' if result.files_checked != 1 else ''} ({counts})."
        )
    else:
        lines.append(
            f"Checked {result.files_checked} file"
            f"{'s' if result.files_checked != 1 else ''}: no violations."
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-readable report (stable key order, one JSON object)."""
    payload = {
        "files_checked": result.files_checked,
        "violation_count": len(result.violations),
        "counts_by_rule": result.counts_by_rule(),
        "violations": [
            {
                "rule_id": violation.rule_id,
                "rule_name": violation.rule_name,
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "message": violation.message,
            }
            for violation in result.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


#: SARIF schema/version pinned to what GitHub code scanning ingests.
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_VERSION = "2.1.0"


def render_sarif(result: LintResult) -> str:
    """The report as SARIF 2.1.0, for GitHub code-scanning upload.

    One run, one driver (``repro-lint``), every registered rule listed
    in the driver's rule metadata (so code scanning can show the
    summary even for rules with no findings this run), and one result
    per violation with a 1-based line/column region.
    """
    rules = all_rules()
    rule_index = {rule.rule_id: index for index, rule in enumerate(rules)}
    results = []
    for violation in result.violations:
        entry = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.rule_id in rule_index:
            entry["ruleIndex"] = rule_index[violation.rule_id]
        results.append(entry)
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule in rules
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_catalog() -> str:
    """The rule catalog as a markdown table, generated from the registry.

    ``docs/LINTING.md`` embeds this table between markers and a test
    regenerates it, so the documentation cannot drift from the code.
    """
    lines: List[str] = [
        "| ID | Name | Scope | Summary |",
        "| --- | --- | --- | --- |",
    ]
    for rule in all_rules():
        scope = (
            ", ".join(f"`{p}`" for p in rule.path_patterns)
            if rule.path_patterns
            else "all files"
        )
        summary = " ".join(rule.summary.split())
        lines.append(
            f"| {rule.rule_id} | {rule.name} | {scope} | {summary} |"
        )
    return "\n".join(lines)
