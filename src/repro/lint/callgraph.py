"""Project-wide symbol table and call graph.

The per-file rules see one module at a time; the flow-aware rule
families (RNG101, WAL001, EXE101) need to follow a value across
function -- and file -- boundaries.  This module builds the shared
substrate for that from the ASTs the engine has already parsed:

- a :class:`ModuleInfo` per file: dotted module name (derived from the
  path the same way the import system would), the import-alias table
  (reusing the engine's resolution so ``np.random`` and
  ``numpy.random`` unify), and every function/method defined in it;
- a :class:`FunctionInfo` per def: qualified name, parameter list, the
  raw AST, and the call sites found in its body;
- a :class:`Project` tying them together with call resolution
  (:meth:`Project.resolve_call`) and bounded reachability
  (:meth:`Project.reachable_from`).

Resolution is deliberately *sound-for-silence*: when a call target
cannot be identified statically the edge is simply absent, so the flow
rules err toward missing a finding rather than inventing one.  Three
resolution strategies are layered, strongest first: plain names through
the module's own defs and import aliases, ``self.method`` through the
lexically enclosing class, and -- for attribute calls on unknown
receivers -- a unique-method-name match (the attribute resolves only if
exactly one class in the whole project defines a method of that name).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Path components that start a dotted module name.
_ROOT_COMPONENTS = ("src", "tests", "benchmarks", "examples")

#: Method names too generic for unique-method resolution: they collide
#: with builtin container/str methods, so an attribute call on an
#: unknown receiver must not be assumed to target a project class.
_GENERIC_METHOD_NAMES = frozenset(
    {
        "append",
        "add",
        "clear",
        "close",
        "copy",
        "count",
        "extend",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "put",
        "read",
        "remove",
        "replace",
        "run",
        "sort",
        "split",
        "start",
        "update",
        "values",
        "write",
    }
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for_path(path: str) -> str:
    """The dotted module name a file path corresponds to.

    ``src/repro/measure/campaign.py`` -> ``repro.measure.campaign``;
    paths outside a recognised root fall back to their stem, so inline
    test fixtures still get a usable (if flat) name.
    """
    posix = path.replace("\\", "/")
    parts = [part for part in posix.split("/") if part and part != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    for root in _ROOT_COMPONENTS:
        if root in parts:
            start = parts.index(root)
            tail = parts[start + 1 :] if root == "src" else parts[start:]
            if tail:
                parts = tail
                break
    else:
        parts = parts[-1:] if parts else ["<module>"]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["<module>"]
    return ".".join(parts)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Qualified name of the resolved project function, or ``None``.
    target: Optional[str]
    #: Trailing attribute name for method-style calls (``x.fork(...)``
    #: -> ``"fork"``); ``None`` for plain-name calls.
    attr: Optional[str]
    #: Dotted name resolved through import aliases (may name something
    #: outside the project, e.g. ``numpy.random.default_rng``).
    dotted: Optional[str]


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: "ModuleInfo"
    class_name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ModuleInfo:
    """One parsed source file and its top-level symbol table."""

    path: str
    name: str
    tree: ast.Module
    #: Local name -> fully qualified dotted import path.
    imports: Dict[str, str] = field(default_factory=dict)
    #: Qualified name -> function/method info defined in this module.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Names of classes defined at module top level.
    classes: Set[str] = field(default_factory=set)

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a Name/Attribute chain via import aliases."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                imports[local] = alias.name if alias.asname else local
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _parameter_names(node: ast.AST) -> List[str]:
    args = node.args  # type: ignore[attr-defined]
    params = [
        arg.arg
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


class Project:
    """The whole linted tree: modules, functions, and the call graph."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Module path (as given to the engine) -> ModuleInfo.
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: Method name -> qualified names of every class method using it.
        self._methods_by_name: Dict[str, List[str]] = {}
        #: Caller qualname -> resolved callee qualnames.
        self._edges: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Tuple[str, ast.Module]]) -> "Project":
        """Build the project from ``(path, parsed tree)`` pairs.

        Building never raises on odd-but-parsable code: anything the
        symbol pass cannot classify is simply left out of the graph.
        """
        project = cls()
        for path, tree in files:
            project._add_module(path, tree)
        for module in project.modules.values():
            for fn in module.functions.values():
                project._collect_calls(fn)
        for fn in project.functions.values():
            project._edges[fn.qualname] = {
                site.target for site in fn.calls if site.target is not None
            }
        return project

    def _add_module(self, path: str, tree: ast.Module) -> None:
        name = module_name_for_path(path)
        if name in self.modules:
            # Two fixture files mapping to one module name: keep both
            # reachable by uniquifying with the path.
            name = f"{name}#{len(self.modules)}"
        module = ModuleInfo(
            path=path, name=name, tree=tree, imports=_collect_imports(tree)
        )
        self.modules[name] = module
        self.by_path[path] = module
        self._collect_definitions(module)

    def _collect_definitions(self, module: ModuleInfo) -> None:
        def add_function(node: ast.AST, class_name: Optional[str]) -> None:
            simple = node.name  # type: ignore[attr-defined]
            qual = (
                f"{module.name}.{class_name}.{simple}"
                if class_name
                else f"{module.name}.{simple}"
            )
            info = FunctionInfo(
                qualname=qual,
                name=simple,
                node=node,
                module=module,
                class_name=class_name,
                params=_parameter_names(node),
            )
            module.functions[qual] = info
            self.functions[qual] = info
            if class_name:
                self._methods_by_name.setdefault(simple, []).append(qual)

        for statement in module.tree.body:
            if isinstance(statement, _FUNCTION_NODES):
                add_function(statement, None)
            elif isinstance(statement, ast.ClassDef):
                module.classes.add(statement.name)
                for member in statement.body:
                    if isinstance(member, _FUNCTION_NODES):
                        add_function(member, statement.name)

    def _collect_calls(self, fn: FunctionInfo) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            fn.calls.append(
                CallSite(
                    node=node,
                    target=self.resolve_call(node, fn),
                    attr=(
                        node.func.attr
                        if isinstance(node.func, ast.Attribute)
                        else None
                    ),
                    dotted=fn.module.qualified_name(node.func),
                )
            )

    # -- resolution ----------------------------------------------------------

    def resolve_name(
        self, name: str, module: ModuleInfo
    ) -> Optional[FunctionInfo]:
        """Resolve a bare identifier to a project function, if possible.

        Looks through the module's own top-level functions first, then
        the import-alias table (``from repro.exec.pool import
        parallel_map`` makes the local ``parallel_map`` resolve to
        ``repro.exec.pool.parallel_map`` when that file is in the
        linted set).
        """
        local = f"{module.name}.{name}"
        if local in self.functions:
            return self.functions[local]
        imported = module.imports.get(name)
        if imported is not None and imported in self.functions:
            return self.functions[imported]
        return None

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[str]:
        """The qualified name of the project function a call targets."""
        func = call.func
        module = caller.module
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(func.id, module)
            return resolved.qualname if resolved else None
        if not isinstance(func, ast.Attribute):
            return None
        # self.method() / cls.method() inside a class body.
        receiver = func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and caller.class_name is not None
        ):
            qual = f"{module.name}.{caller.class_name}.{func.attr}"
            if qual in self.functions:
                return qual
        # Module-qualified call through an import alias:
        # ``staging.merge_staged_unit(...)`` or ``Class.method``.
        dotted = module.qualified_name(func)
        if dotted is not None and dotted in self.functions:
            return dotted
        # Unique-method-name fallback for unknown receivers.
        if func.attr not in _GENERIC_METHOD_NAMES:
            candidates = self._methods_by_name.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    # -- graph queries -------------------------------------------------------

    def callees(self, qualname: str) -> Set[str]:
        return set(self._edges.get(qualname, ()))

    def cha_callees(self, qualname: str) -> Set[str]:
        """Callees under class-hierarchy-style dispatch approximation.

        Unique-name resolution (:meth:`resolve_call`) gives up on
        duck-typed method calls the moment two classes share the name
        (``engine.ping_batch`` with both a real and a fault-injecting
        engine in scope).  For *reachability* questions that precision
        is the wrong trade -- a worker really will execute one of the
        candidates -- so this variant adds an edge to every same-named,
        non-generic method when a call site could not be pinned down.
        Dataflow rules keep using the precise edges.
        """
        edges = set(self._edges.get(qualname, ()))
        fn = self.functions.get(qualname)
        if fn is not None:
            for site in fn.calls:
                if (
                    site.target is None
                    and site.attr is not None
                    and site.attr not in _GENERIC_METHOD_NAMES
                ):
                    edges.update(self._methods_by_name.get(site.attr, ()))
        return edges

    def reachable_from(
        self, roots: Iterable[str], max_depth: int = 32, cha: bool = False
    ) -> Set[str]:
        """Functions reachable from ``roots`` over resolved call edges.

        Bounded breadth-first walk; cycles are harmless (visited set)
        and ``max_depth`` keeps pathological graphs cheap.  With
        ``cha=True`` the walk uses :meth:`cha_callees`, over-
        approximating duck-typed dispatch.
        """
        frontier = [root for root in roots if root in self.functions]
        seen: Set[str] = set(frontier)
        for _ in range(max_depth):
            if not frontier:
                break
            next_frontier: List[str] = []
            for qualname in frontier:
                callees = (
                    self.cha_callees(qualname)
                    if cha
                    else self._edges.get(qualname, ())
                )
                for callee in callees:
                    if callee not in seen:
                        seen.add(callee)
                        next_frontier.append(callee)
            frontier = next_frontier
        return seen

    def function_at(self, module: ModuleInfo, node: ast.AST) -> Optional[
        FunctionInfo
    ]:
        """The FunctionInfo wrapping an AST def node, if registered."""
        for fn in module.functions.values():
            if fn.node is node:
                return fn
        return None
