"""Escape analysis for worker-executed code (``EXE101``).

``EXE001`` flags shared-mutable-state mutation *inside* the modules
that host worker entry points (``repro/exec``, ``repro/measure``).
But a forked worker executes whatever its entry point reaches --
routing, store, geo, last-mile code included -- and a module-global
mutated three calls below ``parallel_map``'s target diverges between
serial and parallel runs just as silently as one mutated at the top.

This rule finds every worker entry point in the project (functions
handed to ``multiprocessing`` ``Process(target=...)`` or
:func:`repro.exec.parallel_map`), computes the set of functions
reachable from them over the call graph, and inside that set flags:

- ``global`` declarations (rebinding is invisible to the parent);
- in-place mutation of the defining module's mutable globals --
  mutator method calls, subscript stores/deletes, augmented
  assignments -- including from closures nested in a reachable
  function;
- *reads* of a module-global mutable that function-scope code in the
  same module mutates: the reader observes parent state at fork time,
  which is execution-order dependent.

Mutation findings are suppressed inside ``EXE001``'s own scope
(``repro/exec``, ``repro/measure``) where that rule already reports
them; reads and everything outside that scope are this rule's.
Names rebound locally shadow the module global and are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.callgraph import FunctionInfo, ModuleInfo, Project
from repro.lint.engine import (
    ProjectReporter,
    Rule,
    is_test_path,
    path_matches,
    register_rule,
)
from repro.lint.rules.exec_safety import (
    MUTABLE_FACTORIES,
    MUTATOR_METHODS,
    _MUTABLE_DISPLAYS,
    _POOL_SINKS,
)

#: Scope where EXE001 already reports function-scope mutations.
_EXE001_SCOPE = ("repro/exec/*", "repro/measure/*")


def _module_mutables(module: ModuleInfo) -> Set[str]:
    """Names bound at module top level to mutable containers.

    Unlike EXE001's per-file survey this resolves factory calls through
    the module's import aliases, so ``from collections import
    OrderedDict`` + ``CACHE = OrderedDict()`` is recognised.
    """
    mutables: Set[str] = set()
    for statement in module.tree.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            targets, value = [statement.target], statement.value
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_DISPLAYS)
        if not mutable and isinstance(value, ast.Call):
            name = module.qualified_name(value.func)
            mutable = name in MUTABLE_FACTORIES
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


def _spawn_entries(fn: FunctionInfo) -> List[ast.expr]:
    """Callable expressions handed to a spawn sink inside ``fn``."""
    entries: List[ast.expr] = []
    for site in fn.calls:
        node = site.node
        dotted = site.dotted or ""
        name = dotted.rsplit(".", 1)[-1] if dotted else ""
        if dotted.endswith("Process") or name == "Process":
            entries.extend(
                keyword.value
                for keyword in node.keywords
                if keyword.arg == "target"
            )
        if dotted in _POOL_SINKS or name in _POOL_SINKS:
            if node.args:
                entries.append(node.args[0])
    return entries


def _callable_target(
    expr: ast.expr, fn: FunctionInfo, project: Project
) -> Optional[str]:
    """The function a callable expression stands for, if resolvable.

    Handles plain function names, ``ClassName(...)`` instantiations of
    a project class with ``__call__``, and local names bound to such an
    instantiation earlier in the function body (the
    ``executor = CheckpointExecutor(...); dispatch(executor)`` idiom).
    """
    module = fn.module
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        call_qual = f"{module.name}.{expr.func.id}.__call__"
        if call_qual in project.functions:
            return call_qual
        return None
    if not isinstance(expr, ast.Name):
        return None
    resolved = project.resolve_name(expr.id, module)
    if resolved is not None:
        return resolved.qualname
    # A local bound to a callable-class instance.
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == expr.id
            for target in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            call_qual = f"{module.name}.{value.func.id}.__call__"
            if call_qual in project.functions:
                return call_qual
            imported = module.imports.get(value.func.id)
            if imported is not None:
                call_qual = f"{imported}.__call__"
                if call_qual in project.functions:
                    return call_qual
    return None


def _worker_roots(project: Project) -> Set[str]:
    """Qualified names of every statically-resolvable worker entry.

    Two layers: callables handed *directly* to a spawn sink
    (``Process(target=...)`` / ``parallel_map``), plus callables that
    *escape into a dispatcher* -- passed as an argument at a call whose
    resolved callee can itself reach a spawn sink.  The second layer is
    how campaign unit executors travel: built in the parent, handed to
    ``execute_plan_parallel``, invoked inside the forked worker.
    """
    roots: Set[str] = set()
    spawners: Set[str] = set()
    for fn in project.functions.values():
        entries = _spawn_entries(fn)
        if entries:
            spawners.add(fn.qualname)
        for entry in entries:
            target = _callable_target(entry, fn, project)
            if target is not None:
                roots.add(target)
    # Dispatchers: every function from which a spawner is reachable
    # (reverse BFS over the call graph).
    reverse: Dict[str, Set[str]] = {}
    for fn in project.functions.values():
        for callee in project.callees(fn.qualname):
            reverse.setdefault(callee, set()).add(fn.qualname)
    dispatchers: Set[str] = set(spawners)
    frontier = list(spawners)
    while frontier:
        current = frontier.pop()
        for caller in reverse.get(current, ()):
            if caller not in dispatchers:
                dispatchers.add(caller)
                frontier.append(caller)
    # Callables escaping into a dispatcher call are worker entries too.
    for fn in project.functions.values():
        for site in fn.calls:
            if site.target not in dispatchers:
                continue
            arguments = list(site.node.args) + [
                keyword.value for keyword in site.node.keywords
            ]
            for argument in arguments:
                target = _callable_target(argument, fn, project)
                if target is not None:
                    roots.add(target)
    return roots


def _locally_bound_names(fn_node: ast.AST) -> Set[str]:
    """Names bound inside the function (params, assignments, loops...)."""
    bound: Set[str] = set()
    args = getattr(fn_node, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(arg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn_node:
                bound.add(node.name)
        elif isinstance(node, ast.Global):
            # ``global X`` makes X refer to the module binding again.
            bound.difference_update(node.names)
    return bound


def _module_mutations(
    module: ModuleInfo, mutables: Set[str]
) -> Set[str]:
    """Mutable globals mutated from function scope anywhere in module."""
    mutated: Set[str] = set()

    def scan(node: ast.AST, in_function: bool) -> None:
        if in_function:
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in mutables
                ):
                    mutated.add(func.value.id)
            for target in _store_targets(node):
                base = target.value
                if isinstance(base, ast.Name) and base.id in mutables:
                    mutated.add(base.id)
            if isinstance(node, ast.Global):
                mutated.update(set(node.names) & mutables)
        for child in ast.iter_child_nodes(node):
            scan(
                child,
                in_function
                or isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ),
            )

    scan(module.tree, in_function=False)
    return mutated


def _store_targets(node: ast.AST) -> List[ast.Subscript]:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = node.targets
    return [t for t in targets if isinstance(t, ast.Subscript)]


@register_rule
class WorkerPurityRule(Rule):
    """Everything a worker reaches must leave shared state alone."""

    rule_id = "EXE101"
    name = "worker-purity"
    summary = (
        "escape analysis over the call graph: any function reachable "
        "from a worker entry point (Process target=, parallel_map fn) "
        "must not mutate -- or read mutated -- module-global mutable "
        "state; after a fork each worker sees a private, "
        "execution-order-dependent copy"
    )

    def check_project(self, project: Project, reporter: ProjectReporter) -> None:
        roots = _worker_roots(project)
        if not roots:
            return
        reachable = project.reachable_from(roots, cha=True)
        mutables_by_module: Dict[str, Set[str]] = {}
        mutated_by_module: Dict[str, Set[str]] = {}
        for fn in self._reachable_functions(project, reachable):
            module = fn.module
            if module.path not in mutables_by_module:
                mutables = _module_mutables(module)
                mutables_by_module[module.path] = mutables
                mutated_by_module[module.path] = _module_mutations(
                    module, mutables
                )
            self._check_function(
                reporter,
                fn,
                mutables_by_module[module.path],
                mutated_by_module[module.path],
                in_exe001_scope=path_matches(module.posix_path, _EXE001_SCOPE),
            )

    def _reachable_functions(
        self, project: Project, reachable: Set[str]
    ) -> List[FunctionInfo]:
        chosen = []
        for qualname in sorted(reachable):
            fn = project.functions[qualname]
            if is_test_path(fn.module.posix_path):
                continue
            chosen.append(fn)
        return chosen

    def _check_function(
        self,
        reporter: ProjectReporter,
        fn: FunctionInfo,
        mutables: Set[str],
        mutated: Set[str],
        in_exe001_scope: bool,
    ) -> None:
        module = fn.module
        bound = _locally_bound_names(fn.node)
        shadowed = bound & mutables
        mutation_receivers: Set[int] = set()
        mutation_nodes: List[Tuple[ast.AST, str]] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                mutation_nodes.append(
                    (
                        node,
                        f"{fn.name} declares 'global {names}' while "
                        "reachable from a worker entry point; rebinding "
                        "is invisible to the parent after fork -- pass "
                        "state explicitly",
                    )
                )
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in mutables
                    and func.value.id not in shadowed
                ):
                    mutation_receivers.add(id(func.value))
                    mutation_nodes.append(
                        (
                            node,
                            f"{fn.name} is reachable from a worker entry "
                            f"point and mutates module global "
                            f"{func.value.id!r} in place "
                            f"({func.value.id}.{func.attr}(...)); each "
                            "forked worker mutates a private copy -- "
                            "thread the container through arguments",
                        )
                    )
                continue
            for target in _store_targets(node):
                base = target.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in mutables
                    and base.id not in shadowed
                ):
                    mutation_receivers.add(id(base))
                    mutation_nodes.append(
                        (
                            node,
                            f"{fn.name} is reachable from a worker entry "
                            f"point and stores into module global "
                            f"{base.id!r}; each forked worker mutates a "
                            "private copy -- thread the container "
                            "through arguments",
                        )
                    )
        if not in_exe001_scope:
            for node, message in mutation_nodes:
                reporter.report(self, module, node, message)
        # Reads of mutated shared state (EXE001 never reports these).
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutated
                and node.id not in shadowed
                and id(node) not in mutation_receivers
            ):
                reporter.report(
                    self,
                    module,
                    node,
                    f"{fn.name} is reachable from a worker entry point "
                    f"and reads module global {node.id!r}, which "
                    "function-scope code mutates; the worker sees "
                    "whatever state the parent had at fork time -- pass "
                    "the value in explicitly",
                )
