"""Event-loop purity for the measurement service (``SVC001``).

The service's HTTP handlers all run on one asyncio event loop; a single
blocking call anywhere under a handler stalls every connection -- new
accepts, in-flight NDJSON streams, keep-alive responses -- for as long
as it runs.  Campaign execution takes seconds and query scans touch the
shard files on disk, so the failure mode is not a micro-stutter but a
frozen service that still passes every functional test.

This rule finds every ``async def`` defined in the service package
(``repro/service/*``), walks the resolved call edges *within* the
package, and flags call sites of known blocking sinks on any reached
path: blocking stdlib primitives (``time.sleep``, ``subprocess.*``,
``socket`` constructors, builtin ``open``, ``os.fsync``, ...) and the
project's synchronous subsystems (world building, campaign execution,
store opens, query scans).

The sanctioned escape is :meth:`repro.service.bridge.ExecutorBridge.
run_blocking`: the blocking callable is passed *as an argument* and
invoked on a pool thread.  The exemption needs no allow-list -- the
call graph only records edges for calls that appear syntactically
(``fn(...)``), so a callable handed to the bridge contributes no edge
and everything behind it is out of the handler's reachable set.  The
flip side is deliberate: inlining the blocking call back into a handler
re-creates the edge and the finding.

Sink matching is curated, not blanket: spec parsing, request
validation, ``Path`` arithmetic, and ``json`` encoding are all loop-
safe and stay silent.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.callgraph import FunctionInfo, Project
from repro.lint.engine import (
    ProjectReporter,
    Rule,
    is_test_path,
    path_matches,
    register_rule,
)
from repro.lint.rules.exe_pure import _locally_bound_names

#: The package whose async defs are event-loop entry points.
_SERVICE_SCOPE = ("repro/service/*",)

#: Blocking stdlib calls, matched by import-resolved dotted name.
_STDLIB_SINKS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.wait",
        "os.waitpid",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "shutil.rmtree",
        "shutil.copytree",
        "shutil.copyfile",
    }
)

#: Synchronous project subsystems, matched by import-resolved dotted
#: name: each of these does real work (seconds of CPU, or shard-file
#: I/O) and must only run on a bridge thread or a fork worker.
_PROJECT_SINKS = frozenset(
    {
        "repro.build_world",
        "repro.world.build_world",
        "repro.measure.campaign.run_campaign_checkpointed",
        "repro.measure.campaign.resume_campaign",
        "repro.measure.collect.run_campaign",
        "repro.run_campaign",
        "repro.measure.resilience.execute_plan",
        "repro.exec.runner.execute_plan_parallel",
        "repro.query.builder.execute",
        "repro.store.warehouse.DatasetStore.open",
        "repro.store.warehouse.DatasetStore.snapshot",
    }
)

#: Human-readable reason per sink family, keyed by dotted prefix.
_SINK_KIND = (
    ("repro.", "synchronous subsystem call"),
    ("", "blocking stdlib call"),
)


def _service_module(fn: FunctionInfo) -> bool:
    return path_matches(fn.module.posix_path, _SERVICE_SCOPE)


def _async_roots(project: Project) -> List[FunctionInfo]:
    """Every ``async def`` in the service package (the loop entries)."""
    roots = []
    for fn in project.functions.values():
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        if not _service_module(fn) or is_test_path(fn.module.posix_path):
            continue
        roots.append(fn)
    return sorted(roots, key=lambda fn: fn.qualname)


def _reach_within_service(
    project: Project, roots: List[FunctionInfo]
) -> Dict[str, Optional[str]]:
    """BFS over call edges, traversing only service-package functions.

    Returns ``qualname -> caller qualname`` (roots map to ``None``) so
    findings can show the handler path that reaches the sink.  Edges
    leaving the package are not followed: code outside the service is
    reached only through the curated sinks, which are flagged at the
    call site inside the package.
    """
    parent: Dict[str, Optional[str]] = {fn.qualname: None for fn in roots}
    frontier = [fn.qualname for fn in roots]
    while frontier:
        next_frontier: List[str] = []
        for qualname in frontier:
            for callee in sorted(project.callees(qualname)):
                if callee in parent:
                    continue
                fn = project.functions.get(callee)
                if fn is None or not _service_module(fn):
                    continue
                parent[callee] = qualname
                next_frontier.append(callee)
        frontier = next_frontier
    return parent


def _handler_chain(parent: Dict[str, Optional[str]], qualname: str) -> str:
    chain: List[str] = []
    current: Optional[str] = qualname
    while current is not None:
        chain.append(current.rsplit(".", 1)[-1])
        current = parent.get(current)
    return " <- ".join(chain)


def _sink_for(dotted: Optional[str], bound: Set[str]) -> Optional[str]:
    """The sink a call's dotted name hits, or ``None``."""
    if dotted is None:
        return None
    if dotted in _STDLIB_SINKS or dotted in _PROJECT_SINKS:
        return dotted
    # Builtin open(): the bare name, unshadowed by imports or locals.
    if dotted == "open" and "open" not in bound:
        return "open"
    return None


@register_rule
class ServiceAsyncPurityRule(Rule):
    """Nothing reachable from an async handler may block the loop."""

    rule_id = "SVC001"
    name = "service-async-purity"
    summary = (
        "no blocking call -- campaign execution, store/query I/O, "
        "time.sleep, subprocess, builtin open -- may be reachable from "
        "an async def in repro/service/*; dispatch blocking work "
        "through ExecutorBridge.run_blocking instead"
    )

    def check_project(self, project: Project, reporter: ProjectReporter) -> None:
        roots = _async_roots(project)
        if not roots:
            return
        parent = _reach_within_service(project, roots)
        for qualname in sorted(parent):
            fn = project.functions[qualname]
            self._check_function(reporter, fn, parent)

    def _check_function(
        self,
        reporter: ProjectReporter,
        fn: FunctionInfo,
        parent: Dict[str, Optional[str]],
    ) -> None:
        bound = _locally_bound_names(fn.node)
        for site in fn.calls:
            sink = _sink_for(site.dotted, bound)
            if sink is None:
                continue
            kind = next(
                label
                for prefix, label in _SINK_KIND
                if sink.startswith(prefix)
            )
            if sink == "open":
                kind = "blocking builtin call"
            chain = _handler_chain(parent, fn.qualname)
            reporter.report(
                self,
                fn.module,
                site.node,
                f"{fn.name} is reachable from an async service handler "
                f"({chain}) and makes a {kind} ({sink}); the event loop "
                "stalls for every connection while it runs -- dispatch "
                "it through ExecutorBridge.run_blocking",
            )
