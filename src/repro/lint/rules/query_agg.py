"""Query-engine usage in analyses (``QRY001``).

The query engine (:mod:`repro.query`) answers filtered aggregations
over store-backed datasets straight off memmapped columns; walking
scalar records to recompute count/sum/min/max/mean/median-style
aggregates in analysis or experiment code re-serializes exactly the
path the engine vectorizes.  This rule flags calls to the scalar
record iterators (``iter_scalar_pings()`` / ``iter_scalar_traceroutes()``)
inside :mod:`repro.analysis` and :mod:`repro.experiments` so every
scalar walk is a conscious decision -- legitimate record-level passes
(anything that genuinely needs per-record structure the engine does
not expose) carry a ``# repro-lint: disable=QRY001`` comment with the
reason.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, register_rule

#: The scalar record iterators the query engine supersedes for
#: aggregate computation.
SCALAR_ITERATORS = frozenset(
    {"iter_scalar_pings", "iter_scalar_traceroutes"}
)

QUERY_PATHS = ("repro/analysis/*", "repro/experiments/*")


@register_rule
class ScalarAggregateRule(Rule):
    """No scalar record walks for engine-provided aggregates."""

    rule_id = "QRY001"
    name = "scalar-aggregate-walk"
    summary = (
        "analysis/experiment code iterating scalar records "
        "(iter_scalar_pings/iter_scalar_traceroutes) to compute "
        "aggregates the query engine provides must use repro.query "
        "or be explicitly suppressed"
    )
    path_patterns = QUERY_PATHS
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        target = node.func
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in SCALAR_ITERATORS:
            return
        ctx.report(
            self,
            node,
            f"scalar record walk via {target.attr}(); filtered "
            "aggregates over store-backed datasets belong on the "
            "columnar query engine (repro.query) -- or mark it "
            "'# repro-lint: disable=QRY001' with a reason if this "
            "pass genuinely needs per-record structure",
        )
