"""Determinism-hazard rules (``DET001``-``DET002``).

Scoped to the measurement core (``repro/measure``, ``repro/core``), the
dataset warehouse (``repro/store``) and the fault-injection layer
(``repro/faults``): these are the modules whose outputs feed the paper's
figures -- and, for the store and the fault schedules, whose bytes the
crash-resume equivalence guarantee covers -- so any wall-clock read,
OS-entropy read, or unordered-container iteration there silently breaks
the same-seed-same-dataset guarantee the longitudinal comparisons
(paper section 4.2) rely on.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, register_rule

#: Call targets whose results depend on the wall clock or OS entropy.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: Where the determinism rules apply.
CORE_PATHS = (
    "repro/measure/*",
    "repro/core/*",
    "repro/store/*",
    "repro/faults/*",
)


@register_rule
class WallClockRule(Rule):
    """No wall-clock or OS-entropy reads inside the measurement core."""

    rule_id = "DET001"
    name = "wall-clock"
    summary = (
        "no time.time()/datetime.now()/os.urandom in repro.measure "
        "and repro.core; simulated time is the `day` parameter"
    )
    path_patterns = CORE_PATHS
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.Call)
        qualified = ctx.qualified_name(node.func)
        if qualified in WALL_CLOCK_CALLS:
            ctx.report(
                self,
                node,
                f"{qualified}() is nondeterministic; measurement-core "
                "results must depend only on the seed and the simulated "
                "day",
            )


@register_rule
class SetIterationRule(Rule):
    """Iteration order over a ``set`` is an implementation detail.

    With string keys it additionally varies with ``PYTHONHASHSEED``, so
    any result that flows out of a bare set iteration can differ between
    runs with identical seeds.  Wrap the set in ``sorted(...)``.
    """

    rule_id = "DET002"
    name = "set-iteration"
    summary = (
        "no bare set iteration feeding results in repro.measure / "
        "repro.core; wrap in sorted(...)"
    )
    path_patterns = CORE_PATHS
    node_types = (ast.For, ast.comprehension, ast.Call)

    #: Functions that materialize their argument in iteration order.
    _ORDER_SENSITIVE_WRAPPERS = frozenset(
        {"list", "tuple", "enumerate", "iter", "next"}
    )

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.For):
            self._check_iterable(node.iter, ctx)
        elif isinstance(node, ast.comprehension):
            self._check_iterable(node.iter, ctx)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in self._ORDER_SENSITIVE_WRAPPERS
                and node.args
            ):
                if self._is_set_expression(node.args[0]):
                    ctx.report(
                        self,
                        node,
                        f"{func.id}() over a set materializes "
                        "implementation-defined order; use sorted(...)",
                    )

    def _check_iterable(self, iterable: ast.AST, ctx: LintContext) -> None:
        if self._is_set_expression(iterable):
            ctx.report(
                self,
                iterable,
                "iterating a set feeds implementation-defined order into "
                "results; iterate sorted(...) instead",
            )

    def _is_set_expression(self, node: ast.AST) -> bool:
        """Whether an expression syntactically produces a ``set``."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            return isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            # set(a) & set(b) and friends: set-typed if either side is.
            return self._is_set_expression(node.left) or self._is_set_expression(
                node.right
            )
        return False
