"""Flow-aware RNG-stream discipline (``RNG101``).

The campaign layer's determinism contract (PR 3/5): every random draw
made while executing a *unit* must come from a generator forked for
that specific (unit, attempt) via the blessed per-entity helpers --
``RngStreams.fork(name, index)``, ``fork_*`` wrappers, or
``Generator.spawn``.  ``RngStreams.stream(name)`` is different: it
returns the *cached, shared* stream, so a drawn-from stream couples
every unit that touches it to global draw order, and execution order
(serial vs parallel, resumed vs fresh) changes the results.

The syntactic rules (RNG001-004) cannot see this: a shared stream is a
perfectly ordinary ``Generator`` by the time it reaches a sampling
call, often two or three functions away from its ``.stream(...)``
creation site.  This rule taint-tracks generators from creation
(``stream`` / ``fork`` / ``spawn`` / ``default_rng``) through
assignments, containers, and call boundaries (bounded interprocedural
summaries record which parameters each function transitively draws
from), and reports when a *shared-stream* generator reaches a draw in
unit scope -- directly, or by being passed into a parameter some callee
draws from.  A shared stream handed to a unit executor from inside a
loop is called out specifically: that is one parent stream leaking
into many units.

Scoped to the sampling code the contract protects: ``repro/measure``,
``repro/exec``, ``repro/faults``, ``repro/core``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.lint.callgraph import FunctionInfo, ModuleInfo, Project
from repro.lint.dataflow import (
    EMPTY,
    AbstractInterpreter,
    Tags,
    argument_index_for_param,
    fixpoint_summaries,
)
from repro.lint.engine import ProjectReporter, Rule, is_test_path, register_rule
from repro.lint.rules.rng import GENERATOR_DRAW_METHODS

#: Tag carried by any generator value.
RNG = "rng"
#: Tag for generators out of ``RngStreams.stream(...)`` -- shared.
STREAM = "stream"
#: Tag for per-entity generators (``fork``/``spawn``/``fork_*``).
FORKED = "forked"

#: Attribute names that create a *blessed* per-entity generator.
_FORK_ATTRS = frozenset({"fork", "spawn"})


def _is_unit_executor(fn: FunctionInfo) -> bool:
    """Whether a function is a unit executor by naming convention.

    The campaign layer's executors are ``*_unit`` functions taking the
    unit id (``_speedchecker_unit``, ``run_unit``); anything with a
    parameter literally named ``unit`` is treated the same way.
    """
    return fn.name.endswith("_unit") or fn.name == "run_unit" or "unit" in fn.params


def _callee_param_index(
    call: ast.Call, callee: FunctionInfo, flat_index: int
) -> Optional[int]:
    """Flat argument position -> callee parameter index, with the
    ``self`` offset applied for attribute-style method calls."""
    index = argument_index_for_param(call, callee, flat_index)
    if index is None:
        return None
    if flat_index < len(call.args) and callee.is_method:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            bound = not (
                isinstance(receiver, ast.Name)
                and receiver.id == callee.class_name
            )
            if bound:
                index += 1
    return index


@dataclass(frozen=True)
class _RngSummary:
    """What one function does with generators, seen from its callers."""

    #: Parameter indices the function (transitively) draws from.
    draws_from: FrozenSet[int]
    #: Non-parameter tags of returned values (e.g. a helper returning
    #: ``rngs.stream(...)`` has ``{"rng", "stream"}`` here).
    returns: Tags


_EMPTY_SUMMARY = _RngSummary(draws_from=frozenset(), returns=EMPTY)


class _RngInterpreter(AbstractInterpreter):
    """Tags generator creations and observes draws and call-throughs."""

    def __init__(
        self,
        fn: FunctionInfo,
        project: Project,
        summaries: Dict[str, object],
    ) -> None:
        super().__init__(fn, project)
        self._summaries = summaries
        self._sites = {site.node: site for site in fn.calls}
        #: Param indices observed flowing into a draw.
        self.drawn_params: Set[int] = set()
        #: ``(call node, kind, in_loop)`` events for the report pass.
        self.events: List[tuple] = []

    def eval_call(self, node: ast.Call, arg_tags: List[Tags]) -> Tags:
        func = node.func
        site = self._sites.get(node)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _FORK_ATTRS or attr.startswith("fork_"):
                return frozenset({RNG, FORKED})
            if attr == "stream":
                return frozenset({RNG, STREAM})
            if attr in GENERATOR_DRAW_METHODS:
                # Record even for bare param receivers: a parameter is
                # only "drawn from" in a way that matters when a caller
                # actually passes a generator into it, at which point
                # the draw here is genuine.
                receiver = self._eval(func.value)
                if receiver:
                    self._record_draw(node, receiver)
                return EMPTY
        dotted = site.dotted if site is not None else None
        if dotted is not None and dotted.endswith("default_rng"):
            return frozenset({RNG, "fresh"})
        if site is not None and site.target is not None:
            return self._through_callee(node, site.target, arg_tags)
        return EMPTY

    def _record_draw(self, node: ast.Call, value: Tags) -> None:
        self._propagate_drawn(value)
        if STREAM in value:
            self.events.append((node, "draw", self.loop_depth > 0))

    def _propagate_drawn(self, value: Tags) -> None:
        for tag in value:
            if tag.startswith("param:"):
                self.drawn_params.add(int(tag.split(":", 1)[1]))

    def _through_callee(
        self, node: ast.Call, target: str, arg_tags: List[Tags]
    ) -> Tags:
        assert self.project is not None
        callee = self.project.functions[target]
        summary = self._summaries.get(target, _EMPTY_SUMMARY)
        if not isinstance(summary, _RngSummary):
            summary = _EMPTY_SUMMARY
        executor = _is_unit_executor(callee)
        for flat_index, value in enumerate(arg_tags):
            if RNG not in value:
                continue
            param = _callee_param_index(node, callee, flat_index)
            drawn = param is not None and param in summary.draws_from
            if drawn:
                # Propagate "this param is drawn from" into the caller's
                # own summary; the event itself is the kind-specific one
                # appended below, not a second "draw".
                self._propagate_drawn(value)
            if STREAM in value and (drawn or executor):
                kind = "into-executor" if executor else "into-drawing-callee"
                self.events.append((node, kind, self.loop_depth > 0))
        return summary.returns


@register_rule
class RngFlowRule(Rule):
    """Shared RNG streams must not reach draws in unit scope."""

    rule_id = "RNG101"
    name = "rng-flow"
    summary = (
        "taint-tracks numpy Generators across functions: a shared "
        "RngStreams.stream(...) generator reaching a sampling call in "
        "unit scope (or handed to a unit executor) breaks per-unit "
        "determinism -- derive per-(unit, attempt) generators via "
        "fork/spawn instead"
    )
    path_patterns = (
        "repro/measure/*",
        "repro/exec/*",
        "repro/faults/*",
        "repro/core/*",
    )

    def check_project(self, project: Project, reporter: ProjectReporter) -> None:
        def summarize(
            fn: FunctionInfo, summaries: Dict[str, object]
        ) -> _RngSummary:
            interp = _RngInterpreter(fn, project, summaries)
            returned = interp.run()
            return _RngSummary(
                draws_from=frozenset(interp.drawn_params),
                returns=frozenset(
                    tag for tag in returned if not tag.startswith("param:")
                ),
            )

        summaries = fixpoint_summaries(project, summarize)
        executors = [
            fn.qualname
            for fn in project.functions.values()
            if _is_unit_executor(fn)
        ]
        unit_scope = project.reachable_from(executors)
        for qualname, fn in sorted(project.functions.items()):
            module = fn.module
            if is_test_path(module.posix_path):
                continue
            if not self.applies_to_module(module):
                continue
            in_unit_scope = qualname in unit_scope
            interp = _RngInterpreter(fn, project, summaries)
            interp.run()
            for node, kind, in_loop in interp.events:
                self._report_event(
                    reporter, module, fn, node, kind, in_loop, in_unit_scope
                )

    def _report_event(
        self,
        reporter: ProjectReporter,
        module: ModuleInfo,
        fn: FunctionInfo,
        node: ast.Call,
        kind: str,
        in_loop: bool,
        in_unit_scope: bool,
    ) -> None:
        if kind == "into-executor":
            suffix = (
                " from inside a loop -- one parent stream leaks into "
                "every unit of the loop"
                if in_loop
                else ""
            )
            reporter.report(
                self,
                module,
                node,
                f"{fn.name} passes a shared RngStreams.stream(...) "
                f"generator to a unit executor{suffix}; fork a "
                "per-(unit, attempt) generator with .fork(name, index) "
                "instead",
            )
            return
        if not in_unit_scope:
            return
        if kind == "draw":
            message = (
                f"{fn.name} draws from a shared RngStreams.stream(...) "
                "generator while reachable from a unit executor; unit "
                "results now depend on global draw order -- use a "
                "per-(unit, attempt) .fork(name, index) stream"
            )
        else:
            message = (
                f"{fn.name} passes a shared RngStreams.stream(...) "
                "generator into a callee that draws from it, while "
                "reachable from a unit executor -- fork a per-unit "
                "generator instead"
            )
        reporter.report(self, module, node, message)
