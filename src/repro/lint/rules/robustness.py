"""Robustness rules (``ROB001``).

A resilient runner is only trustworthy if failures stay *visible*: the
retry machinery catches the narrow, typed exceptions it knows how to
handle and everything else propagates.  A bare ``except:`` or a broad
``except Exception:`` whose body swallows the error (``pass``, or a
docstring-only body) hides genuine bugs as if they were transient
faults, so production code in ``repro`` must not contain one.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, register_rule

#: Exception names considered too broad to silently swallow.
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register_rule
class ExceptionSwallowRule(Rule):
    """No bare ``except:`` and no silently-swallowed broad excepts."""

    rule_id = "ROB001"
    name = "exception-swallow"
    summary = (
        "no bare except: anywhere in repro, benchmarks, or examples, "
        "and no except Exception: whose body only passes; catch the "
        "specific exceptions a handler can actually recover from"
    )
    path_patterns = ("repro/*", "benchmarks/*", "examples/*")
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if ctx.is_test_file:
            return
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare except: catches everything including KeyboardInterrupt; "
                "name the exceptions this handler can recover from",
            )
            return
        if self._catches_broad(node.type) and self._swallows(node.body):
            ctx.report(
                self,
                node,
                "except Exception with a body that only passes swallows "
                "genuine bugs; catch specific exceptions or handle the "
                "error",
            )

    def _catches_broad(self, node: ast.AST) -> bool:
        """Whether the except clause names ``Exception``/``BaseException``."""
        if isinstance(node, ast.Name):
            return node.id in BROAD_EXCEPTIONS
        if isinstance(node, ast.Attribute):
            return node.attr in BROAD_EXCEPTIONS
        if isinstance(node, ast.Tuple):
            return any(self._catches_broad(item) for item in node.elts)
        return False

    def _swallows(self, body: "list[ast.stmt]") -> bool:
        """Whether a handler body does nothing with the error."""
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue
            return False
        return True
